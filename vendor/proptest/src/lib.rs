//! Offline shim for `proptest`: the `proptest!` macro, `prop_assert!` /
//! `prop_assert_eq!`, and the strategy combinators this workspace uses
//! (ranges, tuples, `prop::collection::vec`, `any::<bool>()`). See
//! `vendor/README.md`.
//!
//! Differences from upstream: no shrinking (a failing case reports the
//! values via the assertion message), and the case stream is derived
//! deterministically from the test name, so failures reproduce exactly on
//! every run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{any, prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Runner configuration (the shim honours only the case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D));

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy producing uniformly random booleans.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// The canonical strategy for `A`, mirroring `proptest::prelude::any`.
#[must_use]
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        /// Anything usable as a vector-length specification.
        pub trait SizeRange {
            /// Draws a concrete length.
            fn sample_len(&self, rng: &mut StdRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut StdRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut StdRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy producing vectors of values drawn from an element
        /// strategy.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S, L> {
            element: S,
            len: L,
        }

        impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = self.len.sample_len(rng);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, len)`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }
    }
}

/// Derives a per-test RNG from the test's name (FNV-1a), so every run
/// generates the same case stream.
#[must_use]
pub fn __seed_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($config:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::__seed_rng(stringify!($name));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut rng); )*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "property '{}' failed on case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            message
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, mirroring
/// `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, mirroring
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}
