//! Offline shim for `serde`: marker traits plus no-op derive macros, enough
//! for `#[derive(Serialize, Deserialize)]` annotations to compile. No actual
//! serialization framework is provided — the workspace renders JSON by hand
//! (see `vendor/README.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`. The shim derive does not
/// implement it; nothing in the workspace requires the bound.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}
