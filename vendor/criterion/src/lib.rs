//! Offline shim for `criterion`: the macro / method surface the workspace's
//! benches use, backed by a simple wall-clock timer (see `vendor/README.md`).
//! No statistics, no HTML reports — each benchmark runs a short timed loop
//! and prints one line: `bench <id> ... <time>/iter (<n> iters)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

/// Default number of timed iterations per benchmark.
const DEFAULT_ITERS: u64 = 5;

/// Formats a per-iteration duration with a sensible unit.
fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    iters: u64,
}

impl Bencher {
    /// Runs `f` once for warm-up and then for a fixed number of timed
    /// iterations, printing the mean time per iteration.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        let per_iter = start.elapsed() / self.iters.max(1) as u32;
        println!("    {}/iter ({} iters)", fmt_duration(per_iter), self.iters);
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("bench {id}");
        f(&mut Bencher {
            iters: DEFAULT_ITERS,
        });
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup {
            _parent: self,
            iters: DEFAULT_ITERS,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count for subsequent benchmarks (criterion's
    /// sample-size knob; capped to keep the shim fast).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u64).clamp(1, 10);
        self
    }

    /// Runs one benchmark of the group with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("  bench {}", id.0);
        f(&mut Bencher { iters: self.iters }, input);
        self
    }

    /// Runs one benchmark of the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        println!("  bench {id}");
        f(&mut Bencher { iters: self.iters });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
