//! Offline shim for the `rand` crate: a minimal, API-compatible subset
//! implemented on `std` only (see `vendor/README.md`).
//!
//! Provided surface:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator,
//! * [`SeedableRng::seed_from_u64`] — SplitMix64-based seeding,
//! * [`Rng::gen_range`] over half-open and inclusive integer / float ranges,
//! * [`Rng::gen_bool`].
//!
//! The generator is of good statistical quality (xoshiro256++), but it is
//! **not** the upstream `StdRng` (ChaCha12): streams produced with the same
//! seed differ from upstream. All uses in this workspace treat the RNG as an
//! opaque reproducible stream, so only in-workspace determinism matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be deterministically constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// A uniform double in `[0, 1)` using the top 53 bits of one output word.
fn f64_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, span)` via rejection sampling.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0, "empty range");
    // Number of values that must be rejected so that 2^64 % span == 0 over
    // the accepted prefix.
    let reject = (u64::MAX % span + 1) % span;
    let max_ok = u64::MAX - reject;
    loop {
        let x = rng.next_u64();
        if x <= max_ok {
            return x % span;
        }
    }
}

/// A range of values that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64(rng, span) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                match ((end - start) as u64).checked_add(1) {
                    Some(span) => start + uniform_u64(rng, span) as $t,
                    // Full-width range: every word is a valid sample.
                    None => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f64_unit(rng) * (self.end - self.start);
        // Guard against the end point becoming reachable through rounding.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        start + f64_unit(rng) * (end - start)
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64_unit(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: used to expand a 64-bit seed into generator state.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut n = [s0, s1, s2, s3];
            n[2] ^= n[0];
            n[3] ^= n[1];
            n[1] ^= n[2];
            n[0] ^= n[3];
            n[2] ^= t;
            n[3] = n[3].rotate_left(45);
            self.s = n;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let differs = (0..100).any(|_| a.gen_range(0u64..u64::MAX) != c.gen_range(0u64..u64::MAX));
        assert!(differs, "different seeds must give different streams");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let v = rng.gen_range(0usize..10);
            counts[v] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - 10_000.0).abs() < 600.0,
                "bucket {i} has {c} hits, expected ≈10000"
            );
        }
        for _ in 0..1000 {
            let v = rng.gen_range(5u32..=7);
            assert!((5..=7).contains(&v));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }
}
