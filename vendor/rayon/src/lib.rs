//! Offline shim for `rayon`: the `par_iter().map().collect()` pipeline on
//! slices and `Vec`s, implemented with `std::thread::scope` (see
//! `vendor/README.md`).
//!
//! Semantics guaranteed by this shim (and relied on by `pnoc-sim`'s sweep
//! engine):
//!
//! * **order preservation** — `collect` returns results in the input order,
//!   regardless of which worker finished first;
//! * **exactly-once execution** — every item is mapped exactly once;
//! * **thread-count control** — `RAYON_NUM_THREADS` overrides the default of
//!   [`std::thread::available_parallelism`], exactly like upstream rayon.
//!
//! With one worker the pipeline degenerates to a plain sequential map, so
//! results are identical whatever the thread count — parallelism here can
//! change wall-clock time only, never values.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The commonly imported traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Process-wide thread-count override (0 = none). Lets tests force real
/// worker threads without mutating the environment, which would race with
/// concurrent `getenv` calls in a multi-threaded test harness.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Forces the worker-thread count for subsequent parallel pipelines,
/// overriding `RAYON_NUM_THREADS` and the detected parallelism. Pass 0 to
/// restore the default behaviour.
pub fn set_thread_count(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Number of worker threads a parallel pipeline over `jobs` items would use
/// right now, resolving the same precedence as the pipelines themselves:
/// [`set_thread_count`] override, then `RAYON_NUM_THREADS`, then the detected
/// parallelism — capped at the job count. Lets callers report the actual
/// worker count instead of guessing.
#[must_use]
pub fn current_thread_count(jobs: usize) -> usize {
    thread_count(jobs)
}

/// Number of worker threads to use for `jobs` items.
fn thread_count(jobs: usize) -> usize {
    let overridden = THREAD_OVERRIDE.load(Ordering::Relaxed);
    let configured = if overridden > 0 {
        overridden
    } else {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            })
    };
    configured.min(jobs.max(1))
}

/// Maps `f` over `items` on a scoped thread pool, returning results in input
/// order. Falls back to a sequential map when only one worker is available.
pub fn par_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = thread_count(n);
    if workers <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let gathered: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                gathered
                    .lock()
                    .expect("result collector poisoned")
                    .push((i, r));
            });
        }
    });
    let mut pairs = gathered.into_inner().expect("result collector poisoned");
    pairs.sort_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Borrowing conversion into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by reference.
    type Item: 'data;

    /// Returns a parallel iterator over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter {
            items: self.as_slice(),
        }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Attaches a map stage executed on the worker threads.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator; terminate it with [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    /// Runs the pipeline and gathers the results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map_slice(self.items, self.f))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order_and_maps_every_item() {
        let items: Vec<u64> = (0..257).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), items.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
