//! Offline shim for `rayon`: the `par_iter().map().collect()` pipeline on
//! slices and `Vec`s (see `vendor/README.md`), now backed by the persistent
//! work-stealing pool in `pnoc-exec` instead of spawning a fresh
//! `std::thread::scope` pool per call.
//!
//! Semantics guaranteed by this shim (and relied on by `pnoc-sim`'s sweep
//! engine):
//!
//! * **order preservation** — `collect` returns results in the input order,
//!   regardless of which worker finished first (each job writes a dedicated
//!   per-index slot; there is no shared collector and no post-hoc sort);
//! * **exactly-once execution** — every item is mapped exactly once;
//! * **thread-count control** — [`set_thread_count`] overrides
//!   `RAYON_NUM_THREADS`, which overrides the default of
//!   [`std::thread::available_parallelism`], exactly like upstream rayon.
//!
//! With one worker the pipeline degenerates to a plain sequential map that
//! never touches the pool, so results are identical whatever the thread
//! count — parallelism here can change wall-clock time only, never values.
//!
//! [`par_map_slice_spawn_per_call`] preserves the previous spawn-per-call
//! implementation as the reference baseline for the `executor_reuse_speedup`
//! benchmark; production callers always get the persistent pool.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

pub use pnoc_exec::{scope, Scope};

/// The commonly imported traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// Forces the worker count for subsequent parallel pipelines, overriding
/// `RAYON_NUM_THREADS` and the detected parallelism. Pass 0 to restore the
/// default behaviour. The persistent pool grows lazily to the largest count
/// observed; a smaller count bounds per-batch parallelism without tearing
/// workers down.
pub fn set_thread_count(threads: usize) {
    pnoc_exec::set_worker_override(threads);
}

/// Number of worker threads a parallel pipeline over `jobs` items would use
/// right now, resolving the same precedence as the pipelines themselves:
/// [`set_thread_count`] override, then `RAYON_NUM_THREADS`, then the detected
/// parallelism — capped at the job count. Lets callers report the actual
/// worker count instead of guessing.
#[must_use]
pub fn current_thread_count(jobs: usize) -> usize {
    pnoc_exec::resolve_worker_limit(jobs)
}

/// Ensure the persistent pool has spawned its workers and return the
/// cumulative spawn time in seconds (`pool_startup_seconds` in
/// `BENCH_sweep.json`). Calling this before timing-sensitive work moves
/// worker startup out of the measured region.
pub fn warm_up() -> f64 {
    pnoc_exec::warm_up()
}

/// Maps `f` over `items` on the persistent pool, returning results in input
/// order. Falls back to a sequential map when only one worker is available.
pub fn par_map_slice<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    pnoc_exec::run_batch(items, |_, item| f(item))
}

/// The previous shim implementation: spawn a fresh `std::thread::scope` pool
/// for this one call and funnel results through a `Mutex<Vec<_>>` collector.
///
/// Kept only as the measured baseline for the `executor_reuse_speedup`
/// comparison in `--bench-sweep`; everything else routes through
/// [`par_map_slice`].
pub fn par_map_slice_spawn_per_call<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = items.len();
    let workers = pnoc_exec::resolve_worker_limit(n);
    if workers <= 1 || n <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let gathered: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                gathered
                    .lock()
                    .expect("result collector poisoned")
                    .push((i, r));
            });
        }
    });
    let mut pairs = gathered.into_inner().expect("result collector poisoned");
    pairs.sort_by_key(|&(i, _)| i);
    pairs.into_iter().map(|(_, r)| r).collect()
}

/// Borrowing conversion into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by reference.
    type Item: 'data;

    /// Returns a parallel iterator over `&self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter {
            items: self.as_slice(),
        }
    }
}

/// A parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Attaches a map stage executed on the worker threads.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel iterator; terminate it with [`ParMap::collect`].
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    /// Runs the pipeline and gathers the results in input order.
    pub fn collect<C: From<Vec<R>>>(self) -> C {
        C::from(par_map_slice(self.items, self.f))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn collect_preserves_order_and_maps_every_item() {
        let items: Vec<u64> = (0..257).collect();
        let doubled: Vec<u64> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled.len(), items.len());
        for (i, v) in doubled.iter().enumerate() {
            assert_eq!(*v, 2 * i as u64);
        }
    }

    #[test]
    fn empty_and_single_inputs_work() {
        let empty: Vec<u32> = Vec::new();
        let out: Vec<u32> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41u32];
        let out: Vec<u32> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn persistent_and_spawn_per_call_paths_agree() {
        let items: Vec<u64> = (0..123).collect();
        let f = |&x: &u64| x.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (x << 7);
        let persistent = super::par_map_slice(&items, f);
        let reference = super::par_map_slice_spawn_per_call(&items, f);
        assert_eq!(persistent, reference);
    }
}
