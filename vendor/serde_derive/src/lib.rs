//! Offline shim for `serde_derive`: the derive macros parse nothing and emit
//! nothing. The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! documentation of intent; JSON output is rendered by hand in `pnoc-bench`
//! (see `vendor/README.md`).

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
