//! In-process smoke test of the `--serve` HTTP server: a scenario document
//! POSTed to `/run` streams back a summary line plus JSONL metric rows that
//! are byte-identical to a batch run of the same specs, a second identical
//! request is answered entirely from the cache (zero points simulated,
//! asserted via the hit counters), and the small endpoints behave.

use pnoc_bench::scenario_io::render_scenarios;
use pnoc_bench::server::{serve, ServerOptions, ServerReport};
use pnoc_sim::metrics::JsonlSink;
use pnoc_sim::scenario::{run_specs_with_cache, Effort, ScenarioSpec};
use pnoc_store::ResultStore;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

fn specs() -> Vec<ScenarioSpec> {
    vec![ScenarioSpec::new("uniform-fabric", "uniform-random").with_effort(Effort::Smoke)]
}

/// Starts a server on an ephemeral port that exits after `requests`
/// connections; returns the address and the join handle yielding the
/// final counters.
fn start_server(
    store: ResultStore,
    requests: u64,
) -> (String, std::thread::JoinHandle<ServerReport>) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let address = listener.local_addr().expect("bound").to_string();
    let handle = std::thread::spawn(move || {
        serve(
            &listener,
            &ServerOptions {
                cache: Some(&store),
                max_requests: Some(requests),
                quiet: true,
                ..Default::default()
            },
        )
        .expect("server runs to completion")
    });
    (address, handle)
}

/// Sends one HTTP/1.1 request and returns `(status line, body)`.
fn request(address: &str, method: &str, path: &str, body: &str) -> (String, String) {
    let mut stream = TcpStream::connect(address).expect("server accepts");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {address}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("request writes");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("response reads");
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body separator");
    let status = head.lines().next().expect("status line").to_string();
    (status, payload.to_string())
}

/// Splits an ndjson `/run` response into the summary line and the rows.
fn split_run_response(body: &str) -> (&str, &str) {
    body.split_once('\n').expect("summary line is terminated")
}

/// Like [`request`] but with one extra header line, returning the full head
/// (status line + headers) alongside the body.
fn request_with_header(
    address: &str,
    method: &str,
    path: &str,
    header: &str,
    body: &str,
) -> (String, String) {
    let mut stream = TcpStream::connect(address).expect("server accepts");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {address}\r\n{header}Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("request writes");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("response reads");
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body separator");
    (head.to_string(), payload.to_string())
}

/// The `ETag` header value of a response head, if present.
fn etag_of(head: &str) -> Option<String> {
    head.lines()
        .find_map(|line| {
            line.split_once(':')
                .filter(|(n, _)| n.eq_ignore_ascii_case("etag"))
        })
        .map(|(_, value)| value.trim().to_string())
}

/// `POST /run` carries a deterministic `ETag`; replaying the document with
/// `If-None-Match` gets `304 Not Modified` with an empty body and without
/// the engine running at all, while a stale tag runs normally.
#[test]
fn run_responses_revalidate_via_etag() {
    let dir = std::env::temp_dir().join(format!("pnoc-server-etag-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let document = render_scenarios(&specs());
    let (address, handle) = start_server(ResultStore::open(&dir).expect("store opens"), 3);

    let (head, body) = request_with_header(&address, "POST", "/run", "", &document);
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    let etag = etag_of(&head).expect("200 /run response carries an ETag");
    assert!(
        etag.starts_with('"') && etag.ends_with('"'),
        "ETag must be quoted, got {etag}"
    );
    assert!(!body.is_empty());

    // Same document + matching tag: 304, empty body, same tag echoed.
    let revalidate = format!("If-None-Match: {etag}\r\n");
    let (head, body) = request_with_header(&address, "POST", "/run", &revalidate, &document);
    assert!(head.starts_with("HTTP/1.1 304 Not Modified"), "{head}");
    assert_eq!(body, "", "304 must carry no body");
    assert_eq!(etag_of(&head).as_deref(), Some(etag.as_str()));

    // A stale tag does not match: the batch runs and returns 200 + rows.
    let stale = "If-None-Match: \"0000000000000000\"\r\n";
    let (head, body) = request_with_header(&address, "POST", "/run", stale, &document);
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(!body.is_empty());

    let report = handle.join().expect("server thread joins");
    assert_eq!(report.requests, 3);
    assert_eq!(
        report.runs, 2,
        "the revalidated request must not reach the engine"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn posted_scenarios_stream_rows_identical_to_a_batch_run() {
    let dir = std::env::temp_dir().join(format!("pnoc-server-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let document = render_scenarios(&specs());

    let (address, handle) = start_server(ResultStore::open(&dir).expect("store opens"), 4);

    let (status, body) = request(&address, "GET", "/health", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"status\": \"ok\""), "{body}");

    // First run: everything simulates (the cache is empty).
    let (status, body) = request(&address, "POST", "/run", &document);
    assert_eq!(status, "HTTP/1.1 200 OK");
    let (summary, rows) = split_run_response(&body);
    assert!(summary.contains("\"cache_hits\":0"), "{summary}");

    // Second identical run: answered entirely from the cache — zero points
    // simulated — and byte-identical to the first response.
    let (status, second_body) = request(&address, "POST", "/run", &document);
    assert_eq!(status, "HTTP/1.1 200 OK");
    let (second_summary, second_rows) = split_run_response(&second_body);
    assert!(
        second_summary.contains("\"cache_misses\":0"),
        "{second_summary}"
    );
    assert!(
        second_summary.contains("\"simulated\":0"),
        "{second_summary}"
    );
    assert_eq!(rows, second_rows, "cached response must be byte-identical");

    let (status, body) = request(&address, "GET", "/stats", "");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.contains("\"runs\": 2"), "{body}");

    let report = handle.join().expect("server thread joins");
    assert_eq!(report.requests, 4);
    assert_eq!(report.runs, 2);
    assert!(report.cache_hits > 0, "the second run must hit the cache");
    assert_eq!(
        report.cache_hits, report.cache_misses,
        "every point the first run simulated is a hit in the second"
    );

    // The streamed rows equal a batch run of the same document, byte for
    // byte — the server is the batch engine behind a socket, not a variant.
    let batch = run_specs_with_cache(&specs(), None).expect("batch run");
    let mut sink = JsonlSink::new(Vec::new());
    batch.write_metrics(&mut sink).expect("rows render");
    assert_eq!(rows.as_bytes(), &sink.into_inner()[..]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A client that connects and never finishes its request gets `408` once the
/// per-connection read timeout fires, instead of pinning a worker forever.
#[test]
fn stalled_request_times_out_with_408() {
    let dir = std::env::temp_dir().join(format!("pnoc-server-timeout-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).expect("store opens");
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let address = listener.local_addr().expect("bound").to_string();
    let handle = std::thread::spawn(move || {
        serve(
            &listener,
            &ServerOptions {
                cache: Some(&store),
                max_requests: Some(1),
                quiet: true,
                io_timeout: Some(std::time::Duration::from_millis(250)),
                ..Default::default()
            },
        )
        .expect("server runs to completion")
    });

    // Connect and send nothing: the server's read must give up.
    let mut stream = TcpStream::connect(&address).expect("server accepts");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("response reads");
    assert!(
        response.starts_with("HTTP/1.1 408 Request Timeout"),
        "stalled request must get 408, got: {response}"
    );
    handle.join().expect("server thread joins");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Connections beyond `max_in_flight` are rejected immediately with `503`
/// and a JSON body — a bounded backlog instead of unbounded queueing.
#[test]
fn over_capacity_connections_get_503() {
    let dir = std::env::temp_dir().join(format!("pnoc-server-backlog-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).expect("store opens");
    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let address = listener.local_addr().expect("bound").to_string();
    let handle = std::thread::spawn(move || {
        serve(
            &listener,
            &ServerOptions {
                cache: Some(&store),
                max_requests: Some(3),
                quiet: true,
                max_in_flight: 1,
                ..Default::default()
            },
        )
        .expect("server runs to completion")
    });

    // Occupy the single slot: send headers announcing a body, then stall.
    // The server blocks reading the body, keeping this connection in
    // flight. TCP handshake order matches accept order, so the *next*
    // connection is guaranteed to see the slot taken.
    let mut holder = TcpStream::connect(&address).expect("server accepts");
    write!(
        holder,
        "POST /run HTTP/1.1\r\nHost: {address}\r\nContent-Length: 10\r\n\r\n"
    )
    .expect("headers write");

    let (status, body) = request(&address, "GET", "/health", "");
    assert_eq!(status, "HTTP/1.1 503 Service Unavailable", "{body}");
    assert!(body.contains("\"max_in_flight\": 1"), "{body}");

    // Release the held slot: complete the body (invalid JSON → 400) and the
    // third connection is admitted normally.
    holder.write_all(b"not json!!").expect("body writes");
    let mut response = String::new();
    holder
        .read_to_string(&mut response)
        .expect("holder answered");
    assert!(response.starts_with("HTTP/1.1 400"), "{response}");

    let (status, _) = request(&address, "GET", "/health", "");
    assert_eq!(status, "HTTP/1.1 200 OK");

    let report = handle.join().expect("server thread joins");
    assert_eq!(report.requests, 3);
    assert_eq!(report.rejected, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_requests_get_errors_not_crashes() {
    let dir = std::env::temp_dir().join(format!("pnoc-server-errors-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (address, handle) = start_server(ResultStore::open(&dir).expect("store opens"), 3);

    let (status, body) = request(&address, "POST", "/run", "this is not json");
    assert_eq!(status, "HTTP/1.1 400 Bad Request", "{body}");

    let (status, _) = request(&address, "GET", "/nope", "");
    assert_eq!(status, "HTTP/1.1 404 Not Found");

    let (status, _) = request(&address, "DELETE", "/run", "");
    assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");

    let report = handle.join().expect("server thread joins");
    assert_eq!(report.requests, 3);
    assert_eq!(report.runs, 0, "no malformed request may reach the engine");
    let _ = std::fs::remove_dir_all(&dir);
}
