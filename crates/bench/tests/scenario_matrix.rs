//! Integration tests of the scenario-matrix batch engine over the real
//! architectures: the flattened, deduplicated parallel work queue must be
//! bitwise-identical to running the same scenarios one by one sequentially,
//! and the `repro --matrix` JSON artifact must be deterministic.

use pnoc_bench::runner::{ensure_registered, EffortLevel};
use pnoc_bench::scenario_io::matrix_json;
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::scenario::ScenarioMatrix;

fn smoke_matrix() -> ScenarioMatrix {
    ensure_registered();
    ScenarioMatrix::new()
        .architectures(["firefly", "d-hetpnoc"])
        .traffics(["tornado", "bursty-uniform"])
        .bandwidth_sets([BandwidthSet::Set1])
        .effort(EffortLevel::Smoke)
}

#[test]
fn matrix_run_is_bitwise_identical_to_sequential_per_scenario_runs() {
    rayon::set_thread_count(4);
    let matrix = smoke_matrix();
    let batched = matrix.run().expect("all names registered");
    let sequential = matrix.run_sequential().expect("all names registered");
    assert_eq!(batched.scenarios.len(), 4);
    assert!(
        batched
            .scenarios
            .iter()
            .flat_map(|s| &s.result.points)
            .any(|p| p.stats.delivered_packets > 0),
        "the matrix delivered nothing, the comparison would be vacuous"
    );
    assert!(
        batched.bitwise_eq(&sequential),
        "flattened matrix run must be bitwise-identical to per-scenario sequential runs"
    );
}

#[test]
fn param_axis_matrix_is_bitwise_deterministic_on_real_architectures() {
    rayon::set_thread_count(4);
    ensure_registered();
    // A 2-value radix sweep over the Firefly baseline: same flattened queue,
    // same bitwise-determinism contract as every other axis.
    let matrix = ScenarioMatrix::new()
        .architectures(["firefly"])
        .arch_params("radix", ["8", "32"])
        .traffics(["tornado"])
        .bandwidth_sets([BandwidthSet::Set1])
        .effort(EffortLevel::Smoke);
    let batched = matrix.run().expect("radix is declared by firefly");
    let sequential = matrix.run_sequential().expect("radix is declared");
    assert_eq!(batched.scenarios.len(), 2);
    assert!(
        batched.bitwise_eq(&sequential),
        "param-swept matrix must be bitwise-identical to sequential runs"
    );
    assert_eq!(
        batched.unique_points, batched.total_points,
        "distinct radix values must not share simulations"
    );
    // The two design points genuinely differ, and the JSON artifact is
    // reproducible.
    assert_ne!(batched.scenarios[0].result, batched.scenarios[1].result);
    let again = matrix_json(&matrix.run().expect("registered")).render();
    assert_eq!(matrix_json(&batched).render(), again);
}

#[test]
fn matrix_json_artifact_is_deterministic_across_runs() {
    let matrix = smoke_matrix();
    let first = matrix_json(&matrix.run().expect("registered")).render();
    let second = matrix_json(&matrix.run().expect("registered")).render();
    assert_eq!(
        first, second,
        "two runs of the same matrix must produce byte-identical JSON"
    );
}

#[test]
fn default_effort_grid_expands_all_bandwidth_sets() {
    // The repro --matrix default shape: every architecture × 2 traffics ×
    // 3 sets. Only expansion is checked here (running it is CI's job).
    ensure_registered();
    let specs = ScenarioMatrix::new()
        .all_architectures()
        .traffics(["tornado", "bursty-uniform"])
        .all_bandwidth_sets()
        .effort(EffortLevel::Quick)
        .specs();
    let architectures = pnoc_sim::registry::registered_architectures().len();
    assert_eq!(specs.len(), architectures * 2 * 3);
}
