//! Integration tests of the scenario-matrix batch engine over the real
//! architectures: the flattened, deduplicated parallel work queue must be
//! bitwise-identical to running the same scenarios one by one sequentially,
//! and the `repro --matrix` JSON artifact must be deterministic.

use pnoc_bench::runner::{ensure_registered, EffortLevel};
use pnoc_bench::scenario_io::matrix_json;
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::scenario::ScenarioMatrix;

fn smoke_matrix() -> ScenarioMatrix {
    ensure_registered();
    ScenarioMatrix::new()
        .architectures(["firefly", "d-hetpnoc"])
        .traffics(["tornado", "bursty-uniform"])
        .bandwidth_sets([BandwidthSet::Set1])
        .effort(EffortLevel::Smoke)
}

#[test]
fn matrix_run_is_bitwise_identical_to_sequential_per_scenario_runs() {
    rayon::set_thread_count(4);
    let matrix = smoke_matrix();
    let batched = matrix.run().expect("all names registered");
    let sequential = matrix.run_sequential().expect("all names registered");
    assert_eq!(batched.scenarios.len(), 4);
    assert!(
        batched
            .scenarios
            .iter()
            .flat_map(|s| &s.result.points)
            .any(|p| p.stats.delivered_packets > 0),
        "the matrix delivered nothing, the comparison would be vacuous"
    );
    assert!(
        batched.bitwise_eq(&sequential),
        "flattened matrix run must be bitwise-identical to per-scenario sequential runs"
    );
}

#[test]
fn matrix_json_artifact_is_deterministic_across_runs() {
    let matrix = smoke_matrix();
    let first = matrix_json(&matrix.run().expect("registered")).render();
    let second = matrix_json(&matrix.run().expect("registered")).render();
    assert_eq!(
        first, second,
        "two runs of the same matrix must produce byte-identical JSON"
    );
}

#[test]
fn default_effort_grid_expands_all_bandwidth_sets() {
    // The repro --matrix default shape: every architecture × 2 traffics ×
    // 3 sets. Only expansion is checked here (running it is CI's job).
    ensure_registered();
    let specs = ScenarioMatrix::new()
        .all_architectures()
        .traffics(["tornado", "bursty-uniform"])
        .all_bandwidth_sets()
        .effort(EffortLevel::Quick)
        .specs();
    let architectures = pnoc_sim::registry::registered_architectures().len();
    assert_eq!(specs.len(), architectures * 2 * 3);
}
