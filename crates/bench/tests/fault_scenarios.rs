//! End-to-end tests of the fault-injection subsystem under the batch
//! engine: fault-free runs are bitwise-identical to pre-fault behaviour
//! (absent plan, `"none"` and the empty string all collapse onto the same
//! simulation), faulted sweeps stay bitwise-deterministic across both real
//! architectures in parallel and sequential mode, injected faults measurably
//! degrade closed-loop completion times on the same seed, and the result
//! cache never serves a healthy point for a faulted scenario (or vice
//! versa).

use pnoc_bench::runner::ensure_registered;
use pnoc_sim::scenario::{run_specs, run_specs_with_cache, Effort, ScenarioMatrix, ScenarioSpec};
use pnoc_store::ResultStore;
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pnoc-faults-it-{}-{tag}", std::process::id()))
}

#[test]
fn healthy_spellings_are_identical_to_a_fault_free_run_and_share_points() {
    ensure_registered();
    let base = ScenarioSpec::new("firefly", "tornado").with_effort(Effort::Smoke);
    let specs = vec![
        base.clone(),
        base.clone().with_faults("none"),
        base.clone().with_faults(""),
    ];
    let outcome = run_specs(&specs).expect("all spellings resolve");
    // `with_faults("")` normalises to the absent plan and `"none"` resolves
    // to the empty plan, so all three spellings dedup onto one set of
    // simulated points...
    assert_eq!(outcome.scenarios.len(), 3);
    assert_eq!(outcome.total_points, 3 * outcome.unique_points);
    // ...and produce the same results as running the fault-free spec alone
    // (the pre-fault behaviour).
    let alone = run_specs(&[base]).expect("resolves");
    assert!(
        outcome.scenarios[0].bitwise_eq(&alone.scenarios[0]),
        "a fault-free run must be bitwise-identical to pre-fault behaviour"
    );
    // The 'none' spec echoes its spelling, but its simulated points and
    // seeds are the healthy ones.
    assert_eq!(outcome.scenarios[1].spec.faults.as_deref(), Some("none"));
    assert_eq!(
        outcome.scenarios[1].result, alone.scenarios[0].result,
        "faults='none' must reuse the exact healthy simulation"
    );
    assert_eq!(
        outcome.scenarios[1].point_seeds,
        alone.scenarios[0].point_seeds
    );
    // Healthy reports carry no fault metrics at all — the exact pre-fault
    // bytes.
    for point in &outcome.scenarios[0].result.points {
        assert!(point.metrics.gauge("faults_applied").is_none());
        assert!(point.metrics.counter("fault_applied_events").is_none());
    }
}

#[test]
fn faulted_presets_sweep_both_architectures_deterministically() {
    rayon::set_thread_count(4);
    ensure_registered();
    let matrix = ScenarioMatrix::new()
        .architectures(["firefly", "d-hetpnoc"])
        .traffics(["tornado"])
        .fault_plans(["single-link", "ring-drift"])
        .effort(Effort::Smoke);
    assert_eq!(matrix.specs().len(), 4, "2 architectures × 2 presets");
    let parallel = matrix.run().expect("registered");
    let sequential = matrix.run_sequential().expect("registered");
    assert!(
        parallel.bitwise_eq(&sequential),
        "faulted sweeps must be bitwise-identical in parallel and sequential mode"
    );
    for scenario in &parallel.scenarios {
        for point in &scenario.result.points {
            assert!(
                point.metrics.gauge("faults_applied").unwrap() >= 1.0,
                "{}: the plan must actually fire",
                scenario.spec.id()
            );
        }
    }
}

#[test]
fn faults_measurably_degrade_closed_loop_completion_on_the_same_seed() {
    ensure_registered();
    let run = |faults: Option<&str>| {
        let mut spec =
            ScenarioSpec::closed_loop("d-hetpnoc", "allreduce:8").with_effort(Effort::Quick);
        if let Some(plan) = faults {
            spec = spec.with_faults(plan);
        }
        let outcome = run_specs(&[spec]).expect("resolves");
        let point = &outcome.scenarios[0].result.points[0];
        assert_eq!(
            point.metrics.gauge("workload_drained"),
            Some(1.0),
            "transient faults must not wedge the workload short of draining"
        );
        point.metrics.gauge("workload_makespan_cycles").unwrap()
    };
    let healthy = run(None);
    let faulted = run(Some("single-link"));
    assert!(
        faulted > healthy,
        "a failed link must lengthen the allreduce makespan \
         (healthy {healthy}, faulted {faulted})"
    );
}

#[test]
fn the_cache_never_serves_healthy_points_for_faulted_scenarios() {
    ensure_registered();
    let dir = scratch_dir("separation");
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).expect("store opens");
    let healthy = ScenarioSpec::new("firefly", "tornado").with_effort(Effort::Smoke);
    let faulted = healthy.clone().with_faults("single-link");

    // Warm the cache with the healthy scenario, then run the faulted one:
    // every faulted point must miss (the canonical id differs), simulate
    // fresh, and store under its own keys.
    let cold =
        run_specs_with_cache(std::slice::from_ref(&healthy), Some(&store)).expect("healthy run");
    assert_eq!(cold.cache.stored, cold.unique_points);
    let fault_run =
        run_specs_with_cache(std::slice::from_ref(&faulted), Some(&store)).expect("faulted run");
    assert_eq!(
        fault_run.cache.hits, 0,
        "a faulted scenario must never be served a cached healthy point"
    );
    assert_eq!(fault_run.cache.stored, fault_run.unique_points);
    assert!(
        !cold.scenarios[0].bitwise_eq(&fault_run.scenarios[0]),
        "the faulted sweep must actually differ from the healthy one"
    );

    // Both populations now coexist: warm re-runs of each hit only their own
    // entries and reproduce their own results bitwise.
    let warm_healthy = run_specs_with_cache(&[healthy], Some(&store)).expect("warm healthy");
    assert_eq!(warm_healthy.cache.misses, 0);
    assert!(cold.bitwise_eq(&warm_healthy));
    let warm_faulted = run_specs_with_cache(&[faulted], Some(&store)).expect("warm faulted");
    assert_eq!(warm_faulted.cache.misses, 0);
    assert!(fault_run.bitwise_eq(&warm_faulted));
    let _ = std::fs::remove_dir_all(&dir);
}
