//! Concurrency test of the `--serve` server: N parallel `POST /run`
//! requests — released simultaneously by a barrier, sharing one result
//! cache directory — each stream back a response byte-identical to the
//! batch path, proving that concurrent handling on the executor pool never
//! changes bytes, only wall-clock.

use pnoc_bench::scenario_io::render_scenarios;
use pnoc_bench::server::{serve, ServerOptions, ServerReport};
use pnoc_sim::metrics::JsonlSink;
use pnoc_sim::scenario::{run_specs_with_cache, Effort, ScenarioSpec};
use pnoc_store::ResultStore;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Barrier;

/// Three distinct smoke-effort documents; two clients post each one, so six
/// requests race: duplicate pairs exercise concurrent cache population of
/// one store, distinct documents exercise interleaved simulation.
fn documents() -> Vec<(Vec<ScenarioSpec>, String)> {
    ["uniform-random", "tornado", "hotspot-10pct-skewed-2"]
        .into_iter()
        .map(|traffic| {
            let specs =
                vec![ScenarioSpec::new("uniform-fabric", traffic).with_effort(Effort::Smoke)];
            let document = render_scenarios(&specs);
            (specs, document)
        })
        .collect()
}

fn post_run(address: &str, document: &str) -> (String, String) {
    let mut stream = TcpStream::connect(address).expect("server accepts");
    write!(
        stream,
        "POST /run HTTP/1.1\r\nHost: {address}\r\nContent-Length: {}\r\n\r\n{document}",
        document.len()
    )
    .expect("request writes");
    let mut response = String::new();
    stream
        .read_to_string(&mut response)
        .expect("response reads");
    let (head, payload) = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body separator");
    (
        head.lines().next().expect("status line").to_string(),
        payload.to_string(),
    )
}

#[test]
fn parallel_posts_are_byte_identical_to_the_batch_path() {
    // Give the pool real workers so several connections are genuinely in
    // flight at once (this binary owns the process-global override).
    rayon::set_thread_count(4);

    let dir = std::env::temp_dir().join(format!("pnoc-server-concurrent-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).expect("store opens");
    let docs = documents();
    let clients_per_doc = 2usize;
    let total = docs.len() * clients_per_doc;

    // The batch-path references, computed without any cache: the bytes every
    // served stream must match no matter how requests interleave.
    let references: Vec<String> = docs
        .iter()
        .map(|(specs, _)| {
            let batch = run_specs_with_cache(specs, None).expect("batch run");
            let mut sink = JsonlSink::new(Vec::new());
            batch.write_metrics(&mut sink).expect("rows render");
            String::from_utf8(sink.into_inner()).expect("rows are UTF-8")
        })
        .collect();

    let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port binds");
    let address = listener.local_addr().expect("bound").to_string();
    let server = std::thread::spawn(move || -> ServerReport {
        serve(
            &listener,
            &ServerOptions {
                cache: Some(&store),
                max_requests: Some(total as u64),
                quiet: true,
                ..Default::default()
            },
        )
        .expect("server runs to completion")
    });

    let barrier = Barrier::new(total);
    let responses: Vec<(usize, String, String)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for (doc_index, (_, document)) in docs.iter().enumerate() {
            for _ in 0..clients_per_doc {
                let address = &address;
                let barrier = &barrier;
                handles.push(s.spawn(move || {
                    barrier.wait();
                    let (status, body) = post_run(address, document);
                    (doc_index, status, body)
                }));
            }
        }
        handles
            .into_iter()
            .map(|handle| handle.join().expect("client thread joins"))
            .collect()
    });

    for (doc_index, status, body) in &responses {
        assert_eq!(status, "HTTP/1.1 200 OK", "{body}");
        let (_summary, rows) = body.split_once('\n').expect("summary line is terminated");
        assert_eq!(
            rows, references[*doc_index],
            "served stream must be byte-identical to the batch path"
        );
    }

    let report = server.join().expect("server thread joins");
    assert_eq!(report.requests, total as u64);
    assert_eq!(report.runs, total as u64);
    assert_eq!(report.rejected, 0, "default backlog admits all six");

    // The shared cache dir was populated concurrently; the advisory index
    // lock must have kept every entry reachable on reopen.
    let reopened = ResultStore::open(&dir).expect("store reopens");
    assert!(
        reopened.entry_count() > 0,
        "concurrent requests populated the cache"
    );
    rayon::set_thread_count(0);
    let _ = std::fs::remove_dir_all(&dir);
}
