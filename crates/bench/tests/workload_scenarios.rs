//! Integration tests of the closed-loop workload engine end to end: the
//! acceptance path of the flow-level workload PR. A workload scenario must
//! run to DAG-drain termination, report flow-completion-time percentiles and
//! per-collective makespans, stream metric rows, and stay bitwise-identical
//! between the parallel matrix queue and sequential execution.

use pnoc_bench::runner::{ensure_registered, EffortLevel};
use pnoc_sim::metrics::{MemorySink, MetricValue};
use pnoc_sim::scenario::{run_specs, ScenarioMatrix, ScenarioSpec};

fn closed(architecture: &str, reference: &str) -> ScenarioSpec {
    ensure_registered();
    ScenarioSpec::closed_loop(architecture, reference).with_effort(EffortLevel::Smoke)
}

#[test]
fn allreduce_64_drains_on_dhetpnoc_and_reports_fct_and_makespan() {
    // The acceptance scenario: `repro --workload allreduce:64` (the CLI
    // defaults to d-hetpnoc), at smoke effort so the test stays fast.
    let outcome = closed("d-hetpnoc", "allreduce:64")
        .resolve()
        .expect("workload registered")
        .run();
    assert_eq!(outcome.result.points.len(), 1, "closed-loop = one point");
    let point = &outcome.result.points[0];
    let metrics = &point.metrics;

    // DAG-drain termination.
    assert_eq!(metrics.gauge("workload_drained"), Some(1.0));
    let flows = metrics.counter("flows_total").expect("counted");
    assert_eq!(flows, 2 * 63 * 64, "2(n−1) steps × n nodes");
    assert_eq!(metrics.counter("flows_completed"), Some(flows));
    assert_eq!(
        point.stats.dropped_packets, 0,
        "closed loop never sheds load"
    );

    // Flow-completion-time p50/p95/p99.
    let fct = metrics
        .histogram("flow_completion_cycles")
        .expect("FCT sketch present");
    assert_eq!(fct.count(), flows);
    let p50 = fct.percentile(50.0).expect("non-empty");
    let p95 = fct.percentile(95.0).expect("non-empty");
    let p99 = fct.percentile(99.0).expect("non-empty");
    assert!(
        p50 > 0 && p50 <= p95 && p95 <= p99,
        "p50={p50} p95={p95} p99={p99}"
    );

    // Collective makespans: both ring phases, each shorter than the whole.
    let total = metrics.gauge("workload_makespan_cycles").expect("present");
    assert!(total > 0.0);
    let spans = metrics
        .family("collective_makespan_cycles")
        .expect("present");
    for phase in ["reduce-scatter", "all-gather"] {
        match spans.get(phase) {
            Some(MetricValue::Gauge(span)) => {
                assert!(*span > 0.0 && *span <= total, "{phase}: {span} vs {total}")
            }
            other => panic!("expected a gauge for '{phase}', got {other:?}"),
        }
    }

    // The energy satellites ride on every point.
    assert!(metrics.gauge("static_power_mw").unwrap() > 0.0);
    assert!(
        metrics.gauge("total_energy_pj").unwrap() > point.stats.energy.total_pj(),
        "total energy must include the static budget"
    );
}

#[test]
fn workload_matrix_parallel_execution_is_bitwise_identical_to_sequential() {
    ensure_registered();
    rayon::set_thread_count(4);
    // Mixed batch: open-loop scenarios and closed-loop workloads share the
    // flattened queue across two architectures.
    let matrix = ScenarioMatrix::new()
        .architectures(["firefly", "d-hetpnoc"])
        .traffics(["uniform-random"])
        .workloads(["incast:4", "parameter-server:4"])
        .effort(EffortLevel::Smoke);
    let parallel = matrix.run().expect("all names registered");
    let sequential = matrix.run_sequential().expect("all names registered");
    assert_eq!(parallel.scenarios.len(), 6);
    assert!(
        parallel.bitwise_eq(&sequential),
        "workload points must be bitwise-deterministic under the parallel queue"
    );
    for result in &parallel.scenarios {
        if result.spec.workload.is_some() {
            assert_eq!(
                result.result.points[0].metrics.gauge("workload_drained"),
                Some(1.0),
                "{} did not drain",
                result.spec.id()
            );
        }
    }
}

#[test]
fn workload_metric_rows_stream_with_flow_metrics() {
    let outcome = run_specs(&[closed("firefly", "shuffle:6")]).expect("resolves");
    let mut sink = MemorySink::new();
    outcome.write_metrics(&mut sink).expect("in-memory");
    assert_eq!(sink.rows.len(), 1);
    let row = &sink.rows[0];
    assert_eq!(row.scenario, "firefly:shuffle@6:set1:smoke");
    assert_eq!(row.point_index, 0);
    assert!(row.report.histogram("flow_completion_cycles").is_some());
    assert!(row.report.counter("delivered_packets").unwrap_or(0) > 0);
    // The JSONL rendering is pure, so two renders agree (byte-identical
    // exports are asserted end-to-end by CI's double-run diff).
    let line = pnoc_sim::metrics::render_jsonl_row(row);
    assert_eq!(line, pnoc_sim::metrics::render_jsonl_row(row));
    assert!(line.contains("flow_completion_cycles"));
}

#[test]
fn workload_specs_dump_and_reload_through_scenario_io() {
    let specs = vec![
        closed("d-hetpnoc", "allreduce:16"),
        ScenarioSpec::new("firefly", "tornado").with_effort(EffortLevel::Smoke),
    ];
    let text = pnoc_bench::scenario_io::render_scenarios(&specs);
    let reloaded = pnoc_bench::scenario_io::parse_scenarios(&text).expect("round trip");
    assert_eq!(reloaded, specs);
}
