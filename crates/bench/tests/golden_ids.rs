//! Golden test pinning the canonical scenario-id renderings that key the
//! result cache (`pnoc_store::ResultStore`). These strings are **on-disk
//! contract**: a cache entry written today must still be found by tomorrow's
//! build, so any change here invalidates every existing cache and must be
//! deliberate (and called out in the changelog), not incidental.
//!
//! Covered per registered architecture: the default rendering (schema
//! defaults filled in), explicit parameter overrides (including a default
//! spelled out explicitly, which must collapse onto the default rendering),
//! and closed-loop workload payloads (whose `:` size separator is rewritten
//! to `@` to keep the id's `:` structure unambiguous).

use pnoc_bench::runner::ensure_registered;
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::scenario::{Effort, ScenarioSpec};

/// Resolves a spec and returns the canonical id the cache keys on.
fn canonical(spec: ScenarioSpec) -> String {
    spec.resolve()
        .expect("golden specs must resolve")
        .canonical_id()
}

#[test]
fn every_registered_architecture_renders_a_pinned_default_id() {
    ensure_registered();
    let mut rendered: Vec<String> = pnoc_sim::registry::registered_architectures()
        .into_iter()
        .map(|name| {
            canonical(ScenarioSpec::new(&name, "uniform-random").with_effort(Effort::Quick))
        })
        .collect();
    rendered.sort();
    assert_eq!(
        rendered,
        [
            "d-hetpnoc{max_wavelengths=0,policy=proportional}:uniform-random:set1:quick",
            "firefly{radix=16,reservation_cycles=1}:uniform-random:set1:quick",
            "hier{epoch=0,leaf=d-hetpnoc,pods=4,spine=electrical,spine_bandwidth=0,\
             spine_latency=32,spine_oversub=1}:uniform-random:set1:quick",
            "uniform-fabric{wavelengths=0}:uniform-random:set1:quick",
        ],
        "canonical id rendering changed — this invalidates every existing result cache"
    );
}

#[test]
fn parameter_overrides_render_resolved_and_sorted() {
    ensure_registered();
    // Explicit non-default values appear in the rendering...
    assert_eq!(
        canonical(
            ScenarioSpec::new("firefly", "tornado")
                .with_arch_param("reservation_cycles", 2)
                .with_arch_param("radix", 8)
                .with_bandwidth_set(BandwidthSet::Set2)
                .with_effort(Effort::Paper)
        ),
        "firefly{radix=8,reservation_cycles=2}:tornado:set2:paper"
    );
    // ...while spelling out a default explicitly collapses onto the default
    // rendering: both specs hit the same cache entries.
    assert_eq!(
        canonical(
            ScenarioSpec::new("firefly", "uniform-random")
                .with_arch_param("radix", 16)
                .with_effort(Effort::Quick)
        ),
        canonical(ScenarioSpec::new("firefly", "uniform-random").with_effort(Effort::Quick)),
    );
}

#[test]
fn fault_plans_render_as_a_pinned_canonical_suffix() {
    ensure_registered();
    // A faulted scenario's id carries the *rendered* plan, never the preset
    // name, so a preset and its literal expansion share cache entries...
    let preset = canonical(
        ScenarioSpec::new("firefly", "uniform-random")
            .with_effort(Effort::Quick)
            .with_faults("single-link"),
    );
    assert_eq!(
        preset,
        "firefly{radix=16,reservation_cycles=1}:uniform-random:set1:quick#faults=link-fail@c150-450:sw1"
    );
    assert_eq!(
        preset,
        canonical(
            ScenarioSpec::new("firefly", "uniform-random")
                .with_effort(Effort::Quick)
                .with_faults("link-fail@c150-450:sw1")
        )
    );
    // ...while a healthy plan ('none' or absent) renders no suffix at all:
    // a faulted scenario can never be served a healthy cached point and
    // vice versa.
    assert_eq!(
        canonical(
            ScenarioSpec::new("firefly", "uniform-random")
                .with_effort(Effort::Quick)
                .with_faults("none")
        ),
        "firefly{radix=16,reservation_cycles=1}:uniform-random:set1:quick"
    );
    // Multi-event plans keep their validated order in the rendering.
    assert_eq!(
        canonical(
            ScenarioSpec::closed_loop("d-hetpnoc", "allreduce:8")
                .with_effort(Effort::Quick)
                .with_faults("ring-drift")
        ),
        "d-hetpnoc{max_wavelengths=0,policy=proportional}:ring-allreduce@8x16384B:set1:quick\
         #faults=ring-stuck@c100-500:sw0,wavelength-degrade@c200:class-high/2"
    );
}

#[test]
fn the_engine_fingerprint_is_pinned_and_keys_stale_caches_out() {
    // The fingerprint is the other half of every cache key: bumping the
    // workspace version (as this change did, 0.9.0 → 0.10.0 for the
    // hierarchy layer) must retire every older cache entry, so a store
    // written by a previous engine can never satisfy a lookup.
    assert_eq!(
        pnoc_sim::scenario::engine_fingerprint(),
        "v0.10.0+event",
        "fingerprint changed — deliberate cache invalidation only"
    );
}

#[test]
fn workload_payloads_render_with_the_size_separator_rewritten() {
    ensure_registered();
    // The payload component is the *resolved* workload's self-description
    // (flavour and message size filled in), not the spec shorthand — two
    // shorthands naming the same workload share cache entries.
    assert_eq!(
        canonical(
            ScenarioSpec::closed_loop("d-hetpnoc", "allreduce:64").with_effort(Effort::Quick)
        ),
        "d-hetpnoc{max_wavelengths=0,policy=proportional}:ring-allreduce@64x16384B:set1:quick"
    );
    assert_eq!(
        canonical(ScenarioSpec::closed_loop("firefly", "incast:16").with_effort(Effort::Smoke)),
        "firefly{radix=16,reservation_cycles=1}:incast@16x16384B:set1:smoke"
    );
}
