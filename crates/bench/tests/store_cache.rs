//! End-to-end tests of the result cache under the batch engine: a warm
//! re-run serves every point from the cache byte-identically, an
//! incremental matrix only simulates the newly added scenarios, and an
//! engine-fingerprint change (per-cycle vs event-driven executor) misses
//! rather than serving results from the other engine.

use pnoc_bench::runner::ensure_registered;
use pnoc_bench::scenario_io::matrix_json;
use pnoc_sim::metrics::JsonlSink;
use pnoc_sim::scenario::{run_specs_with_cache, Effort, MatrixResult, ScenarioSpec};
use pnoc_store::ResultStore;
use std::path::PathBuf;
use std::sync::Mutex;

/// Cache keys embed the process-global engine fingerprint, and one test
/// flips the executor flag — serialize the tests of this binary so the flag
/// never changes under a running batch.
static ENGINE_FLAG: Mutex<()> = Mutex::new(());

fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pnoc-store-it-{}-{tag}", std::process::id()))
}

fn smoke_specs() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::new("uniform-fabric", "uniform-random").with_effort(Effort::Smoke),
        ScenarioSpec::new("firefly", "tornado").with_effort(Effort::Smoke),
    ]
}

fn metric_bytes(outcome: &MatrixResult) -> Vec<u8> {
    let mut sink = JsonlSink::new(Vec::new());
    outcome
        .write_metrics(&mut sink)
        .expect("rendering into memory cannot fail");
    sink.into_inner()
}

#[test]
fn warm_rerun_serves_every_point_byte_identically() {
    let _guard = ENGINE_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    ensure_registered();
    let dir = scratch_dir("warm");
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).expect("store opens");
    let specs = smoke_specs();

    let cold = run_specs_with_cache(&specs, Some(&store)).expect("cold run");
    assert_eq!(cold.cache.hits, 0, "fresh cache cannot hit");
    assert_eq!(cold.cache.misses, cold.unique_points);
    assert_eq!(cold.cache.stored, cold.unique_points);

    let warm = run_specs_with_cache(&specs, Some(&store)).expect("warm run");
    assert_eq!(warm.cache.misses, 0, "warm run must not simulate");
    assert_eq!(warm.cache.hits, warm.unique_points);
    assert!(cold.bitwise_eq(&warm), "cache round-trip changed results");
    assert_eq!(
        matrix_json(&cold).render(),
        matrix_json(&warm).render(),
        "matrix documents must be byte-identical"
    );
    assert_eq!(
        metric_bytes(&cold),
        metric_bytes(&warm),
        "metric streams must be byte-identical"
    );
    // The warm outcome also matches an uncached run bit for bit: caching is
    // an execution strategy, never an approximation.
    let uncached = run_specs_with_cache(&specs, None).expect("uncached run");
    assert!(uncached.bitwise_eq(&warm));
    assert_eq!(metric_bytes(&uncached), metric_bytes(&warm));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incremental_matrix_only_simulates_the_new_scenarios() {
    let _guard = ENGINE_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    ensure_registered();
    let dir = scratch_dir("incremental");
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).expect("store opens");
    let mut specs = smoke_specs();

    let first = run_specs_with_cache(&specs, Some(&store)).expect("first run");
    let first_points = first.unique_points;

    // Grow the matrix by one scenario: only its points are misses.
    specs.push(ScenarioSpec::new("d-hetpnoc", "uniform-random").with_effort(Effort::Smoke));
    let second = run_specs_with_cache(&specs, Some(&store)).expect("second run");
    assert_eq!(second.cache.hits, first_points);
    assert_eq!(
        second.cache.misses,
        second.unique_points - first_points,
        "only the added scenario may simulate"
    );
    assert!(second.cache.misses > 0, "the added scenario must simulate");

    // The original scenarios' results are unchanged by the extension.
    assert!(first
        .scenarios
        .iter()
        .zip(&second.scenarios)
        .all(|(a, b)| a.bitwise_eq(b)));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_fingerprint_change_is_a_miss_not_a_stale_hit() {
    let _guard = ENGINE_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    ensure_registered();
    let dir = scratch_dir("fingerprint");
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).expect("store opens");
    let specs =
        vec![ScenarioSpec::new("uniform-fabric", "uniform-random").with_effort(Effort::Smoke)];

    let restore = pnoc_sim::engine::event_driven_enabled();
    pnoc_sim::engine::set_event_driven(true);
    let event = run_specs_with_cache(&specs, Some(&store)).expect("event-driven run");
    assert_eq!(event.cache.hits, 0);

    // Same scenarios under the other executor: the fingerprint differs, so
    // nothing may be served from the event-driven entries.
    pnoc_sim::engine::set_event_driven(false);
    let per_cycle = run_specs_with_cache(&specs, Some(&store)).expect("per-cycle run");
    assert_eq!(
        per_cycle.cache.hits, 0,
        "a per-cycle run must not be served event-driven cache entries"
    );
    assert_eq!(per_cycle.cache.misses, per_cycle.unique_points);

    // Both fingerprints now coexist in one store; each re-run is fully warm.
    pnoc_sim::engine::set_event_driven(true);
    let warm = run_specs_with_cache(&specs, Some(&store)).expect("warm event-driven run");
    assert_eq!(warm.cache.misses, 0);
    pnoc_sim::engine::set_event_driven(restore);
    let _ = std::fs::remove_dir_all(&dir);
}
