//! Determinism of the metrics pipeline across execution strategies: the
//! flattened parallel matrix engine must produce **bitwise-identical**
//! per-point metric reports, merged scenario-level reports, and rendered
//! JSONL/CSV sink output compared to running every scenario sequentially.

use pnoc_bench::runner::ensure_registered;
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::metrics::{CsvSink, JsonlSink, MemorySink};
use pnoc_sim::scenario::{Effort, MatrixResult, ScenarioMatrix};

fn smoke_matrix() -> ScenarioMatrix {
    ensure_registered();
    ScenarioMatrix::new()
        .architectures(["uniform-fabric", "firefly"])
        .traffics(["tornado", "uniform-random"])
        .bandwidth_sets([BandwidthSet::Set1])
        .effort(Effort::Smoke)
}

fn render_jsonl(outcome: &MatrixResult) -> Vec<u8> {
    let mut sink = JsonlSink::new(Vec::new());
    outcome
        .write_metrics(&mut sink)
        .expect("in-memory writer cannot fail");
    sink.into_inner()
}

#[test]
fn parallel_matrix_metrics_equal_sequential_metrics_bitwise() {
    rayon::set_thread_count(4);
    let matrix = smoke_matrix();
    let parallel = matrix.run().expect("all names registered");
    let sequential = matrix.run_sequential().expect("all names registered");

    // Point-by-point: the metric reports (quantile sketch bins included)
    // are structurally identical — PartialEq on MetricReport is bitwise.
    assert!(
        parallel.bitwise_eq(&sequential),
        "parallel matrix must be bitwise-identical to sequential runs, metrics included"
    );
    for (p, s) in parallel.scenarios.iter().zip(&sequential.scenarios) {
        for (pp, sp) in p.result.points.iter().zip(&s.result.points) {
            assert_eq!(pp.metrics, sp.metrics, "per-point reports diverged");
        }
        // Scenario-level merge (in ladder order) is deterministic too.
        let merged_p = p.merged_metrics().expect("uniform kinds");
        let merged_s = s.merged_metrics().expect("uniform kinds");
        assert_eq!(merged_p, merged_s, "merged scenario reports diverged");
        // Merged counters really aggregate the points.
        let sum: u64 = p
            .result
            .points
            .iter()
            .map(|point| point.metrics.counter("delivered_packets").unwrap_or(0))
            .sum();
        assert_eq!(merged_p.counter("delivered_packets"), Some(sum));
    }

    // The in-memory sink path merges to the same result as the direct
    // per-scenario merge.
    let mut memory = MemorySink::new();
    parallel
        .write_metrics(&mut memory)
        .expect("in-memory writer");
    let batch_total = memory.merged().expect("uniform kinds");
    let mut direct_total = parallel.scenarios[0]
        .merged_metrics()
        .expect("uniform kinds");
    for scenario in &parallel.scenarios[1..] {
        direct_total
            .merge(&scenario.merged_metrics().expect("uniform kinds"))
            .expect("uniform kinds");
    }
    assert_eq!(batch_total, direct_total);
}

#[test]
fn sink_output_is_byte_identical_across_execution_strategies() {
    rayon::set_thread_count(4);
    let matrix = smoke_matrix();
    let parallel = matrix.run().expect("registered");
    let sequential = matrix.run_sequential().expect("registered");

    let jsonl_parallel = render_jsonl(&parallel);
    let jsonl_sequential = render_jsonl(&sequential);
    assert!(
        !jsonl_parallel.is_empty(),
        "metric stream must not be empty"
    );
    assert_eq!(
        jsonl_parallel, jsonl_sequential,
        "JSONL metric streams must be byte-identical"
    );

    // Re-running the same parallel matrix reproduces the bytes exactly
    // (what CI's double-run `repro --metrics` gate asserts end to end).
    let rerun = matrix.run().expect("registered");
    assert_eq!(jsonl_parallel, render_jsonl(&rerun));

    let mut csv = CsvSink::new(Vec::new());
    parallel.write_metrics(&mut csv).expect("in-memory writer");
    let mut csv_rerun = CsvSink::new(Vec::new());
    rerun
        .write_metrics(&mut csv_rerun)
        .expect("in-memory writer");
    assert_eq!(csv.into_inner(), csv_rerun.into_inner());
}

#[test]
fn faulted_matrix_metrics_stay_bitwise_deterministic_and_expose_fault_counters() {
    rayon::set_thread_count(4);
    let matrix = smoke_matrix().fault_plans(["none", "single-link", "ring-drift"]);
    let parallel = matrix.run().expect("registered");
    let sequential = matrix.run_sequential().expect("registered");
    assert!(
        parallel.bitwise_eq(&sequential),
        "faulted matrix must be bitwise-identical to sequential runs"
    );
    // Double-run byte-compare: fault transitions land on exact cycles, so
    // the rendered stream reproduces exactly.
    let bytes = render_jsonl(&parallel);
    assert_eq!(bytes, render_jsonl(&matrix.run().expect("registered")));

    // Faulted points carry the fault gauges and the FaultApplied /
    // FaultRepaired event counters; healthy points carry none of them, so
    // fault-free reports keep their exact pre-fault bytes.
    for scenario in &parallel.scenarios {
        let faulted = scenario.spec.faults.is_some();
        for point in &scenario.result.points {
            assert_eq!(
                point.metrics.gauge("faults_applied").is_some(),
                faulted,
                "{}: fault gauges must appear exactly on faulted points",
                scenario.spec.id()
            );
            assert_eq!(
                point.metrics.counter("fault_applied_events").is_some(),
                faulted
            );
            if faulted {
                let applied = point.metrics.gauge("faults_applied").unwrap();
                let active = point.metrics.gauge("faults_active").unwrap();
                assert!(applied >= 1.0, "the plan's onsets must all have fired");
                assert!(active <= applied, "repairs can only retire applied faults");
                // The probe's event counters agree with the controller's
                // gauges: onsets minus repairs leaves the still-active set
                // ('ring-drift' ends with its permanent degrade active).
                let applied_events = point.metrics.counter("fault_applied_events").unwrap();
                let repaired_events = point.metrics.counter("fault_repaired_events").unwrap();
                assert_eq!(applied_events as f64, applied);
                assert_eq!(applied_events - repaired_events, active as u64);
            }
        }
    }
}

#[test]
fn jsonl_rows_expose_percentiles_and_per_node_series() {
    ensure_registered();
    let outcome = smoke_matrix().run().expect("registered");
    let text = String::from_utf8(render_jsonl(&outcome)).expect("UTF-8");
    let lines: Vec<&str> = text.lines().collect();
    let total_points: usize = outcome
        .scenarios
        .iter()
        .map(|s| s.result.points.len())
        .sum();
    assert_eq!(lines.len(), total_points, "one JSONL row per ladder point");
    for line in &lines {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(line.contains("\"latency_cycles\""));
        assert!(line.contains("\"p95\""));
        assert!(line.contains("\"delivered_bits_by_node\""));
        assert!(line.contains("\"delivered_bits_by_window\""));
    }
}
