//! Integration tests of the `hier` multi-pod architecture through the full
//! scenario stack, pinning its two core contracts:
//!
//! * **degeneracy** — a single-pod hierarchy with a zero-latency spine is
//!   the identity composition: bitwise-identical sweep points to running
//!   the bare leaf fabric directly (modulo the architecture label and the
//!   hierarchy-only metric families, which only a real hierarchy emits);
//! * **sharding determinism** — the per-pod shards run as `pnoc-exec`
//!   batch jobs, and the merged result must be bitwise-identical whether
//!   those jobs run on one worker or many.

use d_hetpnoc_repro::hier::HIER_ONLY_METRICS;
use pnoc_bench::runner::ensure_registered;
use pnoc_sim::metrics::MetricReport;
use pnoc_sim::scenario::{Effort, Scenario, ScenarioSpec};
use pnoc_sim::sweep::{SweepMode, SweepPoint};

fn resolve(spec: ScenarioSpec) -> Scenario {
    ensure_registered();
    spec.with_effort(Effort::Smoke)
        .resolve()
        .expect("registered names")
}

/// Strips what a hierarchy legitimately adds on top of its leaf: the
/// architecture label and the hierarchy-only metric families. Everything
/// else — counters, latency histograms, energy, per-node breakdowns — must
/// survive untouched for the degeneracy comparison to pass.
fn normalized(mut point: SweepPoint, architecture: &str) -> SweepPoint {
    point.stats.architecture = architecture.to_string();
    let mut metrics = MetricReport::new();
    for (name, value) in point.metrics.iter() {
        if !HIER_ONLY_METRICS.contains(&name) {
            metrics.insert(name, value.clone());
        }
    }
    point.metrics = metrics;
    point
}

/// Property: over every registered leaf fabric and a spread of base seeds,
/// `hier{pods=1,spine_latency=0}` reproduces the bare leaf bitwise. The
/// single pod sees the whole topology, the auto epoch resolves to one cycle
/// and no packet ever crosses the (zero-latency) spine, so the hierarchy
/// layer must be a pure pass-through.
#[test]
fn single_pod_zero_latency_hierarchy_is_bitwise_identical_to_the_bare_leaf() {
    ensure_registered();
    for leaf in ["firefly", "d-hetpnoc", "uniform-fabric"] {
        for seed in [None, Some(0xDEAD_BEEF), Some(0x5EED_5EED_5EED)] {
            let with_seed = |mut spec: ScenarioSpec| {
                if let Some(seed) = seed {
                    spec = spec.with_seed(seed);
                }
                spec
            };
            let hier = resolve(with_seed(ScenarioSpec::new(
                format!("hier{{pods=1,leaf={leaf},spine_latency=0}}"),
                "skewed-2",
            )))
            .run();
            let bare = resolve(with_seed(ScenarioSpec::new(leaf, "skewed-2"))).run();
            assert_eq!(hier.result.points.len(), bare.result.points.len());
            assert!(
                bare.result
                    .points
                    .iter()
                    .any(|p| p.stats.delivered_packets > 0),
                "{leaf}: the sweep delivered nothing, the comparison would be vacuous"
            );
            for (hier_point, bare_point) in hier.result.points.iter().zip(bare.result.points.iter())
            {
                assert_eq!(hier_point.stats.architecture, "hier");
                assert_eq!(
                    normalized(hier_point.clone(), leaf),
                    bare_point.clone(),
                    "{leaf} seed {seed:?}: pods=1 + zero spine latency must degenerate \
                     to the bare leaf bitwise"
                );
            }
        }
    }
}

/// Sharded pod execution over a pod × leaf matrix (including a closed-loop
/// collective that actually crosses the spine) is bitwise-identical whether
/// the per-pod batch jobs run on one `pnoc-exec` worker or several.
#[test]
fn sharded_pod_execution_is_bitwise_identical_parallel_vs_sequential() {
    ensure_registered();
    let matrix = [
        ScenarioSpec::new("hier{pods=2,leaf=firefly}", "uniform-random"),
        ScenarioSpec::new("hier{pods=4,leaf=firefly}", "skewed-2"),
        ScenarioSpec::new("hier{pods=2,leaf=d-hetpnoc}", "uniform-random"),
        ScenarioSpec::new("hier{pods=4,leaf=d-hetpnoc}", "skewed-2"),
        ScenarioSpec::closed_loop("hier{pods=4,leaf=d-hetpnoc}", "allreduce:16"),
    ];
    for spec in matrix {
        let scenario = resolve(spec);
        // One worker: pod batches run inline on the calling thread.
        pnoc_exec::set_worker_override(1);
        let sequential = scenario.run_with_mode(SweepMode::Sequential);
        // Several workers: pod batches actually fan out across the pool.
        pnoc_exec::set_worker_override(4);
        let parallel = scenario.run_with_mode(SweepMode::Sequential);
        pnoc_exec::set_worker_override(0);
        assert!(
            sequential
                .result
                .points
                .iter()
                .any(|p| p.stats.delivered_packets > 0),
            "{}: the sweep delivered nothing, the comparison would be vacuous",
            scenario.canonical_id()
        );
        assert!(
            sequential.bitwise_eq(&parallel),
            "{}: sharded pod execution must be bitwise-identical parallel vs sequential",
            scenario.canonical_id()
        );
    }
}

/// Cross-pod traffic exists and is accounted: a multi-pod run reports the
/// hierarchy-only metric families and a non-zero spine packet count under
/// pod-striped collective placement.
#[test]
fn multi_pod_runs_report_per_pod_and_cross_pod_families() {
    ensure_registered();
    let outcome = resolve(ScenarioSpec::closed_loop(
        "hier{pods=4,leaf=firefly}",
        "allreduce:16",
    ))
    .run();
    let point = outcome
        .result
        .points
        .first()
        .expect("closed-loop scenarios have one point");
    for name in HIER_ONLY_METRICS {
        assert!(
            point.metrics.iter().any(|(metric, _)| metric == name),
            "hierarchy metric '{name}' missing from a multi-pod run"
        );
    }
    let cross_pod = point
        .metrics
        .counter("cross_pod_packets")
        .expect("cross_pod_packets is a counter");
    assert!(
        cross_pod > 0,
        "pod-striped all-reduce placement must cross the spine"
    );
}
