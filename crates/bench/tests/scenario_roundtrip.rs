//! Property test of the scenario serde round trip through the hand-rolled
//! JSON emitter/parser: `parse_scenarios(render_scenarios(specs)) == specs`
//! for arbitrary specs — including registry names full of quotes,
//! backslashes, control characters and non-ASCII text, seeds that do not fit
//! in an `f64`, and arbitrary finite ladders.

use pnoc_bench::scenario_io::{parse_scenarios, render_scenarios};
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::params::ArchParams;
use pnoc_sim::scenario::{Effort, ScenarioSpec};
use proptest::prelude::*;

/// Maps sampled code points to a name string. The range deliberately covers
/// ASCII controls (escaped as `\uXXXX`), `"` and `\` (escaped), and Latin
/// letters beyond ASCII; every code point below 0x250 is a valid `char`.
fn name_from(codes: &[u32]) -> String {
    codes
        .iter()
        .map(|&c| char::from_u32(c).expect("code points below 0x250 are valid chars"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scenario_specs_round_trip_through_the_json_emitter(
        arch_codes in prop::collection::vec(1u32..0x250, 1..12),
        traffic_codes in prop::collection::vec(1u32..0x250, 1..12),
        workload_codes in prop::collection::vec(1u32..0x250, 1..12),
        param_entries in prop::collection::vec(
            (prop::collection::vec(1u32..0x250, 1..8), prop::collection::vec(1u32..0x250, 1..8)),
            0..4,
        ),
        knobs in (0usize..3, 0usize..3, 0u64..=u64::MAX, any::<bool>()),
        ladder in prop::collection::vec(1e-9f64..10.0, 0..5),
        fault_codes in prop::collection::vec(1u32..0x250, 1..12),
        with_faults in any::<bool>(),
    ) {
        let (set_index, effort_index, seed, closed_loop) = knobs;
        // JSON carries arch_params as a string map, so keys and values may
        // be arbitrary text (the spec-string grammar is stricter, but the
        // JSON wire format must not lose anything).
        let mut arch_params = ArchParams::new();
        for (key_codes, value_codes) in &param_entries {
            arch_params.insert(name_from(key_codes), name_from(value_codes));
        }
        let spec = ScenarioSpec {
            architecture: name_from(&arch_codes),
            arch_params,
            traffic: name_from(&traffic_codes),
            bandwidth_set: BandwidthSet::ALL[set_index],
            effort: Effort::ALL[effort_index],
            seed,
            ladder,
            workload: closed_loop.then(|| name_from(&workload_codes)),
            // The wire format carries the fault plan verbatim (resolution
            // happens at run time), so arbitrary text must survive too.
            faults: with_faults.then(|| name_from(&fault_codes)),
        };
        let rendered = render_scenarios(std::slice::from_ref(&spec));
        let parsed = parse_scenarios(&rendered)
            .map_err(|e| format!("own output failed to parse: {e}\n{rendered}"))?;
        prop_assert_eq!(parsed, vec![spec]);
    }

    #[test]
    fn batches_of_specs_round_trip_in_order(
        seeds in prop::collection::vec(0u64..=u64::MAX, 1..6),
    ) {
        let specs: Vec<ScenarioSpec> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                ScenarioSpec::new(format!("arch-{i}"), format!("traffic-{i}"))
                    .with_arch_param("radix", i)
                    .with_bandwidth_set(BandwidthSet::ALL[i % 3])
                    .with_effort(Effort::ALL[i % 3])
                    .with_seed(seed)
            })
            .collect();
        let parsed = parse_scenarios(&render_scenarios(&specs))
            .map_err(|e| format!("own output failed to parse: {e}"))?;
        prop_assert_eq!(parsed, specs);
    }
}
