//! Integration tests of the scenario engine through the full registry stack:
//! for every real architecture, a parallel scenario run must be
//! bitwise-identical to the sequential run, and every registered workload
//! must drive the network end to end.

use pnoc_bench::runner::{ensure_registered, run_once, Architecture, EffortLevel, TrafficKind};
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::scenario::{Scenario, ScenarioSpec};
use pnoc_sim::sweep::{derive_point_seed, SweepMode};

fn smoke_scenario(architecture: &Architecture, traffic: &str) -> Scenario {
    ensure_registered();
    ScenarioSpec::new(architecture.name(), traffic)
        .with_effort(EffortLevel::Smoke)
        .resolve()
        .expect("registered names")
}

#[test]
fn parallel_scenarios_are_bitwise_identical_for_both_paper_architectures() {
    // Force real worker threads even on single-core hosts so the parallel
    // code path is exercised for real (atomic override, not env mutation).
    rayon::set_thread_count(4);
    for architecture in Architecture::comparison_pair() {
        let scenario = smoke_scenario(&architecture, "skewed-2");
        let sequential = scenario.run_with_mode(SweepMode::Sequential);
        let parallel = scenario.run_with_mode(SweepMode::Parallel);
        assert!(
            sequential
                .result
                .points
                .iter()
                .any(|p| p.stats.delivered_packets > 0),
            "{}: the sweep delivered nothing, the comparison would be vacuous",
            architecture.name()
        );
        assert!(
            sequential.bitwise_eq(&parallel),
            "{}: parallel scenario run must be bitwise-identical to sequential",
            architecture.name()
        );
    }
}

#[test]
fn scenario_points_use_derived_seeds() {
    // Two runs from the same base seed must reproduce exactly; a different
    // base seed must change the sweep (the per-point seed really is derived
    // from the base seed).
    let architecture = Architecture::firefly();
    let scenario = smoke_scenario(&architecture, "uniform-random");
    let a = scenario.run_with_mode(SweepMode::Sequential);
    let b = scenario.run_with_mode(SweepMode::Sequential);
    assert!(a.bitwise_eq(&b), "same base seed must reproduce exactly");

    let reseeded = scenario
        .spec()
        .clone()
        .with_seed(scenario.spec().seed ^ 0xDEAD_BEEF)
        .resolve()
        .expect("still registered");
    let c = reseeded.run_with_mode(SweepMode::Sequential);
    assert_ne!(
        a.result, c.result,
        "a different base seed must change the sweep"
    );
    assert_ne!(a.point_seeds, c.point_seeds);
    assert_eq!(a.point_seeds[0], derive_point_seed(scenario.spec().seed, 0));
}

#[test]
fn every_registered_workload_drives_every_paper_architecture() {
    let config = EffortLevel::Smoke.config(BandwidthSet::Set1);
    let load = config.estimated_saturation_load() * 0.8;
    for architecture in Architecture::comparison_pair() {
        for kind in TrafficKind::all() {
            let stats = run_once(&architecture, config, &kind, load);
            assert!(
                stats.delivered_packets > 0,
                "pattern '{}' delivered nothing on '{}'",
                kind.name(),
                architecture.name()
            );
            assert_eq!(
                stats.traffic,
                kind.name(),
                "stats must carry the pattern name"
            );
        }
    }
}
