//! Integration tests of the parallel sweep engine through the full registry
//! stack: for every real architecture, a parallel sweep must be
//! bitwise-identical to the sequential sweep, and every registered workload
//! must drive the network end to end.

use pnoc_bench::runner::{
    run_once, saturation_sweep_with_mode, Architecture, EffortLevel, TrafficKind,
};
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::sweep::{derive_point_seed, SweepMode};

fn quick_config() -> pnoc_sim::config::SimConfig {
    let mut config = EffortLevel::Quick.config(BandwidthSet::Set1);
    config.sim_cycles = 600;
    config.warmup_cycles = 150;
    config
}

#[test]
fn parallel_sweeps_are_bitwise_identical_for_both_paper_architectures() {
    // Force real worker threads even on single-core hosts so the parallel
    // code path is exercised for real (atomic override, not env mutation).
    rayon::set_thread_count(4);
    let config = quick_config();
    let loads = EffortLevel::Quick.load_ladder(&config);
    let kind = TrafficKind::named("skewed-2");
    for architecture in Architecture::comparison_pair() {
        let sequential =
            saturation_sweep_with_mode(&architecture, config, &kind, &loads, SweepMode::Sequential);
        let parallel =
            saturation_sweep_with_mode(&architecture, config, &kind, &loads, SweepMode::Parallel);
        assert!(
            sequential
                .points
                .iter()
                .any(|p| p.stats.delivered_packets > 0),
            "{}: the sweep delivered nothing, the comparison would be vacuous",
            architecture.name()
        );
        assert_eq!(
            sequential,
            parallel,
            "{}: parallel sweep must be bitwise-identical to sequential",
            architecture.name()
        );
    }
}

#[test]
fn sweep_points_use_derived_seeds() {
    // Two sweeps from different base seeds must differ (the per-point seed
    // really is derived from the base seed), while the same base seed must
    // reproduce exactly.
    let config = quick_config();
    let loads = EffortLevel::Quick.load_ladder(&config);
    let kind = TrafficKind::named("uniform-random");
    let architecture = Architecture::firefly();
    let a = saturation_sweep_with_mode(&architecture, config, &kind, &loads, SweepMode::Sequential);
    let b = saturation_sweep_with_mode(&architecture, config, &kind, &loads, SweepMode::Sequential);
    assert_eq!(a, b, "same base seed must reproduce exactly");

    let mut reseeded = config;
    reseeded.seed ^= 0xDEAD_BEEF;
    let c = saturation_sweep_with_mode(
        &architecture,
        reseeded,
        &kind,
        &loads,
        SweepMode::Sequential,
    );
    assert_ne!(a, c, "a different base seed must change the sweep");
    assert_ne!(
        derive_point_seed(config.seed, 0),
        derive_point_seed(reseeded.seed, 0)
    );
}

#[test]
fn every_registered_workload_drives_every_paper_architecture() {
    let config = quick_config();
    let load = config.estimated_saturation_load() * 0.8;
    for architecture in Architecture::comparison_pair() {
        for kind in TrafficKind::all() {
            let stats = run_once(&architecture, config, &kind, load);
            assert!(
                stats.delivered_packets > 0,
                "pattern '{}' delivered nothing on '{}'",
                kind.name(),
                architecture.name()
            );
            assert_eq!(
                stats.traffic,
                kind.name(),
                "stats must carry the pattern name"
            );
        }
    }
}
