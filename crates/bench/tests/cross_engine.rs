//! Cross-engine determinism: the event-driven scheduler must be an
//! unobservable optimisation. Every registered architecture (open-loop
//! ladder) and closed-loop workloads are run under both the per-cycle
//! reference executor and the event-driven one, and the full
//! `MetricReport`s — including quantile sketches and windowed-throughput
//! samples — must be bitwise identical, down to the rendered metric bytes.
//!
//! This test owns the process-global engine flag, so it lives alone in its
//! own integration-test binary (each Rust integration test file is a
//! separate process; unit tests elsewhere must not toggle the flag).

use pnoc_bench::runner::ensure_registered;
use pnoc_sim::engine::set_event_driven;
use pnoc_sim::metrics::JsonlSink;
use pnoc_sim::registry::registered_architectures;
use pnoc_sim::scenario::{run_specs, Effort, MatrixResult, ScenarioSpec};

fn check_specs() -> Vec<ScenarioSpec> {
    ensure_registered();
    let architectures = registered_architectures();
    assert!(
        architectures.len() >= 3,
        "expected the full architecture registry, got {architectures:?}"
    );
    let mut specs = Vec::new();
    // Open-loop ladder on every registered architecture.
    for name in &architectures {
        specs.push(ScenarioSpec::new(name, "skewed-3").with_effort(Effort::Smoke));
    }
    // Closed-loop workloads: a collective and an incast, on both main
    // architectures, so the DAG-drain path is covered too.
    for workload in ["allreduce:8", "incast:16"] {
        specs.push(ScenarioSpec::closed_loop("d-hetpnoc", workload).with_effort(Effort::Smoke));
        specs.push(ScenarioSpec::closed_loop("firefly", workload).with_effort(Effort::Smoke));
    }
    specs
}

fn rendered_metrics(outcome: &MatrixResult) -> Vec<u8> {
    let mut bytes = Vec::new();
    outcome
        .write_metrics(&mut JsonlSink::new(&mut bytes))
        .expect("rendering metrics to a Vec cannot fail");
    bytes
}

#[test]
fn event_driven_engine_is_bitwise_identical_to_per_cycle() {
    let specs = check_specs();

    set_event_driven(false);
    let per_cycle = run_specs(&specs);
    set_event_driven(true);
    let per_cycle = per_cycle.expect("per-cycle reference batch failed");
    let event = run_specs(&specs).expect("event-driven batch failed");

    assert!(
        per_cycle.bitwise_eq(&event),
        "event-driven engine diverged from the per-cycle reference executor"
    );
    let per_cycle_bytes = rendered_metrics(&per_cycle);
    let event_bytes = rendered_metrics(&event);
    assert!(
        !event_bytes.is_empty(),
        "metric stream is empty — the batch ran nothing"
    );
    assert_eq!(
        per_cycle_bytes, event_bytes,
        "rendered metric streams differ between executors"
    );
}
