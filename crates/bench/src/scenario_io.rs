//! Serialization of [`ScenarioSpec`]s and matrix results through the
//! hand-rolled JSON value model in [`crate::json`].
//!
//! The workspace's `serde` is a no-op shim (see `vendor/README.md`), so this
//! module is the real wire format: `repro --dump-scenarios` writes what
//! [`render_scenarios`] produces, `repro --from-scenarios` reads it back via
//! [`parse_scenarios`], and the round trip is the identity
//! (`parse(render(specs)) == specs`, property-tested in
//! `tests/scenario_roundtrip.rs`). `repro --matrix` writes the deterministic
//! [`matrix_json`] document that CI diffs across two runs to prove the batch
//! engine reproducible.

use crate::json::{Json, JsonParseError};
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::metrics::MetricReport;
use pnoc_sim::params::ArchParams;
use pnoc_sim::scenario::{Effort, MatrixResult, ScenarioResult, ScenarioSpec};
use pnoc_sim::stats::SimStats;

/// JSON representation of one scenario spec.
///
/// The seed is rendered as a **decimal string**, not a JSON number: the value
/// model stores numbers as `f64`, which cannot represent every `u64` exactly,
/// and seeds must survive the round trip bit-for-bit. Architecture-parameter
/// overrides serialize as a string→string object (values are raw spec
/// strings; typing happens against the schema at resolve time).
#[must_use]
pub fn spec_json(spec: &ScenarioSpec) -> Json {
    Json::obj(vec![
        ("architecture", Json::str(&spec.architecture)),
        (
            "arch_params",
            Json::Obj(
                spec.arch_params
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::str(v)))
                    .collect(),
            ),
        ),
        ("traffic", Json::str(&spec.traffic)),
        ("bandwidth_set", Json::str(spec.bandwidth_set.short_name())),
        ("effort", Json::str(spec.effort.label())),
        ("seed", Json::str(spec.seed.to_string())),
        (
            "ladder",
            Json::Arr(spec.ladder.iter().map(|&l| Json::Num(l)).collect()),
        ),
        (
            "workload",
            spec.workload.as_deref().map_or(Json::Null, Json::str),
        ),
        (
            "faults",
            spec.faults.as_deref().map_or(Json::Null, Json::str),
        ),
    ])
}

fn field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, String> {
    value
        .get(key)
        .ok_or_else(|| format!("scenario spec is missing the '{key}' field"))
}

fn string_field(value: &Json, key: &str) -> Result<String, String> {
    field(value, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("scenario field '{key}' must be a string"))
}

/// Reads one scenario spec back from its JSON representation.
///
/// The seed is accepted either as a decimal string (what [`spec_json`]
/// writes) or, for hand-written files, as a non-negative integral number.
///
/// # Errors
///
/// Returns a human-readable message on missing fields, wrong types, unknown
/// bandwidth-set / effort labels, or an unparsable seed.
pub fn spec_from_json(value: &Json) -> Result<ScenarioSpec, String> {
    let architecture = string_field(value, "architecture")?;
    let traffic = string_field(value, "traffic")?;
    let set_name = string_field(value, "bandwidth_set")?;
    let bandwidth_set = BandwidthSet::from_short_name(&set_name)
        .ok_or_else(|| format!("unknown bandwidth set '{set_name}' (use set1, set2 or set3)"))?;
    let effort_name = string_field(value, "effort")?;
    let effort = Effort::parse(&effort_name)
        .ok_or_else(|| format!("unknown effort '{effort_name}' (use paper, quick or smoke)"))?;
    let seed = match field(value, "seed")? {
        Json::Str(text) => text
            .parse::<u64>()
            .map_err(|_| format!("seed '{text}' is not a u64"))?,
        Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => *n as u64,
        _ => return Err("seed must be a decimal string or a non-negative integer".to_string()),
    };
    let ladder = field(value, "ladder")?
        .as_array()
        .ok_or_else(|| "scenario field 'ladder' must be an array".to_string())?
        .iter()
        .map(|item| {
            item.as_f64()
                .ok_or_else(|| "ladder entries must be numbers".to_string())
        })
        .collect::<Result<Vec<f64>, String>>()?;
    // Optional (absent in pre-0.5 documents): the closed-loop workload
    // reference, `null` or missing for open-loop scenarios.
    let workload = match value.get("workload") {
        None | Some(Json::Null) => None,
        Some(Json::Str(reference)) => Some(reference.clone()),
        Some(_) => {
            return Err("scenario field 'workload' must be a string or null".to_string());
        }
    };
    // Optional (absent in pre-0.8 documents): the fault plan — a preset
    // name or canonical plan text, `null` or missing for healthy runs.
    let faults = match value.get("faults") {
        None | Some(Json::Null) => None,
        Some(Json::Str(plan)) => Some(plan.clone()),
        Some(_) => {
            return Err("scenario field 'faults' must be a string or null".to_string());
        }
    };
    // Optional (absent in pre-0.6 documents): architecture-parameter
    // overrides as a string→string object.
    let mut arch_params = ArchParams::new();
    match value.get("arch_params") {
        None | Some(Json::Null) => {}
        Some(Json::Obj(fields)) => {
            for (key, raw) in fields {
                match raw.as_str() {
                    Some(text) => arch_params.insert(key, text),
                    None => {
                        return Err(format!("scenario parameter '{key}' must be a string value"));
                    }
                }
            }
        }
        Some(_) => {
            return Err("scenario field 'arch_params' must be an object or null".to_string());
        }
    }
    Ok(ScenarioSpec {
        architecture,
        arch_params,
        traffic,
        bandwidth_set,
        effort,
        seed,
        ladder,
        workload,
        faults,
    })
}

/// JSON document for a batch of scenario specs (what `repro
/// --dump-scenarios` writes).
#[must_use]
pub fn scenarios_json(specs: &[ScenarioSpec]) -> Json {
    Json::obj(vec![
        ("format", Json::str("d-hetpnoc-scenarios/v1")),
        (
            "scenarios",
            Json::Arr(specs.iter().map(spec_json).collect()),
        ),
    ])
}

/// Renders a batch of scenario specs as a JSON document string.
#[must_use]
pub fn render_scenarios(specs: &[ScenarioSpec]) -> String {
    scenarios_json(specs).render() + "\n"
}

/// Parses a scenario document (the inverse of [`render_scenarios`]; a bare
/// top-level array of specs is also accepted).
///
/// # Errors
///
/// Returns a human-readable message on JSON syntax errors or invalid specs.
pub fn parse_scenarios(text: &str) -> Result<Vec<ScenarioSpec>, String> {
    let document = Json::parse(text).map_err(|e: JsonParseError| e.to_string())?;
    let list = match &document {
        Json::Arr(items) => items.as_slice(),
        Json::Obj(_) => document
            .get("scenarios")
            .and_then(Json::as_array)
            .ok_or_else(|| "scenario document has no 'scenarios' array".to_string())?,
        _ => return Err("scenario document must be an object or an array".to_string()),
    };
    list.iter()
        .enumerate()
        .map(|(i, item)| spec_from_json(item).map_err(|e| format!("scenario #{i}: {e}")))
        .collect()
}

fn stats_json(stats: &SimStats) -> Json {
    Json::obj(vec![
        (
            "delivered_packets",
            Json::Num(stats.delivered_packets as f64),
        ),
        ("delivered_bits", Json::Num(stats.delivered_bits as f64)),
        ("dropped_packets", Json::Num(stats.dropped_packets as f64)),
        (
            "accepted_bandwidth_gbps",
            Json::Num(stats.accepted_bandwidth_gbps()),
        ),
        ("packet_energy_pj", Json::Num(stats.packet_energy_pj())),
        (
            "average_latency_cycles",
            Json::Num(stats.average_packet_latency()),
        ),
        ("drop_rate", Json::Num(stats.drop_rate())),
    ])
}

/// JSON digest of a point's streamed latency metrics: the
/// p50/p95/p99/max summary of the `latency_cycles` quantile sketch, or
/// `null` when the point carries no metrics.
#[must_use]
pub fn latency_percentiles_json(metrics: &MetricReport) -> Json {
    let Some(sketch) = metrics.histogram("latency_cycles") else {
        return Json::Null;
    };
    let quantile = |p: f64| {
        sketch
            .percentile(p)
            .map_or(Json::Null, |v| Json::Num(v as f64))
    };
    Json::obj(vec![
        ("p50", quantile(50.0)),
        ("p95", quantile(95.0)),
        ("p99", quantile(99.0)),
        (
            "max",
            sketch.max().map_or(Json::Null, |v| Json::Num(v as f64)),
        ),
        ("samples", Json::Num(sketch.count() as f64)),
    ])
}

/// JSON representation of one scenario result: the spec, the derived
/// per-point seeds, a per-point stats digest (including the streamed
/// latency percentiles) and the headline metrics. Deliberately excludes
/// wall-clock time so the document is deterministic.
#[must_use]
pub fn scenario_result_json(result: &ScenarioResult) -> Json {
    Json::obj(vec![
        ("spec", spec_json(&result.spec)),
        ("id", Json::str(result.spec.id())),
        (
            "point_seeds",
            Json::Arr(
                result
                    .point_seeds
                    .iter()
                    .map(|s| Json::str(s.to_string()))
                    .collect(),
            ),
        ),
        (
            "points",
            Json::Arr(
                result
                    .result
                    .points
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("offered_load", Json::Num(p.offered_load)),
                            ("stats", stats_json(&p.stats)),
                            ("latency_percentiles", latency_percentiles_json(&p.metrics)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "peak_bandwidth_gbps",
            Json::Num(result.result.peak_bandwidth_gbps()),
        ),
        (
            "sustainable_bandwidth_gbps",
            Json::Num(result.result.sustainable_bandwidth_gbps()),
        ),
        (
            "packet_energy_at_saturation_pj",
            Json::Num(result.result.packet_energy_at_saturation_pj()),
        ),
    ])
}

/// The deterministic JSON document `repro --matrix` writes: every scenario
/// result plus the work-queue statistics. Contains **no wall-clock fields**,
/// so two runs of the same matrix must produce byte-identical documents —
/// CI asserts exactly that.
#[must_use]
pub fn matrix_json(result: &MatrixResult) -> Json {
    Json::obj(vec![
        ("generated_by", Json::str("repro --matrix")),
        ("total_points", Json::Num(result.total_points as f64)),
        ("unique_points", Json::Num(result.unique_points as f64)),
        (
            "scenarios",
            Json::Arr(result.scenarios.iter().map(scenario_result_json).collect()),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_spec() -> ScenarioSpec {
        ScenarioSpec::new("d-hetpnoc", "tornado")
            .with_bandwidth_set(BandwidthSet::Set2)
            .with_effort(Effort::Smoke)
            .with_seed(u64::MAX - 7)
            .with_ladder(vec![0.001, 0.0025, 0.004])
    }

    #[test]
    fn spec_round_trips_through_json_including_a_non_f64_seed() {
        let spec = example_spec();
        let rendered = spec_json(&spec).render();
        let parsed = spec_from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(
            parsed, spec,
            "u64::MAX-7 does not fit f64; string seed must survive"
        );
    }

    #[test]
    fn scenario_documents_round_trip_and_validate() {
        let specs = vec![
            example_spec(),
            ScenarioSpec::new("firefly", "uniform-random"),
        ];
        let text = render_scenarios(&specs);
        assert_eq!(parse_scenarios(&text).unwrap(), specs);

        // Bare arrays are accepted too.
        let bare = Json::Arr(specs.iter().map(spec_json).collect()).render();
        assert_eq!(parse_scenarios(&bare).unwrap(), specs);

        assert!(parse_scenarios("{}").is_err());
        assert!(parse_scenarios("42").is_err());
        let mut bad = spec_json(&example_spec());
        if let Json::Obj(fields) = &mut bad {
            fields.retain(|(k, _)| k != "traffic");
        }
        let error = parse_scenarios(&Json::Arr(vec![bad]).render()).unwrap_err();
        assert!(error.contains("missing the 'traffic' field"), "{error}");
    }

    #[test]
    fn workload_specs_round_trip_and_old_documents_still_parse() {
        let spec =
            ScenarioSpec::closed_loop("d-hetpnoc", "allreduce:64").with_effort(Effort::Smoke);
        let rendered = spec_json(&spec).render();
        let parsed = spec_from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.workload.as_deref(), Some("allreduce:64"));

        // Pre-0.5 documents have no 'workload' field: they parse as
        // open-loop specs.
        let mut old = spec_json(&example_spec());
        if let Json::Obj(fields) = &mut old {
            fields.retain(|(k, _)| k != "workload");
        }
        let parsed = spec_from_json(&old).unwrap();
        assert_eq!(parsed, example_spec());
        assert!(parsed.workload.is_none());
    }

    #[test]
    fn arch_params_round_trip_and_old_documents_still_parse() {
        let spec = example_spec()
            .with_arch_param("max_wavelengths", 4)
            .with_arch_param("policy", "paper-max");
        let rendered = spec_json(&spec).render();
        let parsed = spec_from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.arch_params.get("policy"), Some("paper-max"));

        // Pre-0.6 documents have no 'arch_params' field: they parse with
        // empty overrides (= the architecture's defaults).
        let mut old = spec_json(&example_spec());
        if let Json::Obj(fields) = &mut old {
            fields.retain(|(k, _)| k != "arch_params");
        }
        let parsed = spec_from_json(&old).unwrap();
        assert_eq!(parsed, example_spec());
        assert!(parsed.arch_params.is_empty());

        // Non-string parameter values are rejected with a clear message.
        let mut bad = spec_json(&spec);
        if let Json::Obj(fields) = &mut bad {
            for (k, v) in fields.iter_mut() {
                if k == "arch_params" {
                    *v = Json::obj(vec![("radix", Json::Num(8.0))]);
                }
            }
        }
        let error = spec_from_json(&bad).unwrap_err();
        assert!(error.contains("'radix' must be a string"), "{error}");
    }

    #[test]
    fn fault_plans_round_trip_and_old_documents_still_parse() {
        let spec = example_spec().with_faults("single-link");
        let rendered = spec_json(&spec).render();
        let parsed = spec_from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.faults.as_deref(), Some("single-link"));

        // Pre-0.8 documents have no 'faults' field: they parse as healthy
        // scenarios.
        let mut old = spec_json(&example_spec());
        if let Json::Obj(fields) = &mut old {
            fields.retain(|(k, _)| k != "faults");
        }
        let parsed = spec_from_json(&old).unwrap();
        assert_eq!(parsed, example_spec());
        assert!(parsed.faults.is_none());

        // Non-string fault plans are rejected with a clear message.
        let mut bad = spec_json(&spec);
        if let Json::Obj(fields) = &mut bad {
            for (k, v) in fields.iter_mut() {
                if k == "faults" {
                    *v = Json::Num(1.0);
                }
            }
        }
        let error = spec_from_json(&bad).unwrap_err();
        assert!(
            error.contains("'faults' must be a string or null"),
            "{error}"
        );
    }

    #[test]
    fn numeric_seeds_are_accepted_for_hand_written_files() {
        let mut value = spec_json(&ScenarioSpec::new("firefly", "tornado"));
        if let Json::Obj(fields) = &mut value {
            for (k, v) in fields.iter_mut() {
                if k == "seed" {
                    *v = Json::Num(42.0);
                }
            }
        }
        assert_eq!(spec_from_json(&value).unwrap().seed, 42);
    }

    #[test]
    fn matrix_document_is_free_of_wall_clock_fields() {
        let result = MatrixResult {
            scenarios: Vec::new(),
            total_points: 6,
            unique_points: 5,
            wall_clock_seconds: 1.25,
            cache: pnoc_sim::scenario::CacheStats {
                hits: 3,
                misses: 2,
                stored: 2,
            },
        };
        let text = matrix_json(&result).render();
        assert!(!text.contains("wall_clock"), "{text}");
        // Cache accounting varies between cold and warm runs of the same
        // matrix, so it must stay out of the deterministic document too.
        assert!(!text.contains("cache"), "{text}");
        assert!(text.contains("\"unique_points\": 5"));
    }
}
