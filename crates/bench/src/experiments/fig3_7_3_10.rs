//! Figures 3-7 … 3-10 — the effect of growing the total number of
//! wavelengths (64 → 256 → 512) on peak bandwidth, energy per message and
//! area, for d-HetPNoC (Figures 3-7, 3-8, 3-9) and Firefly (Figure 3-10).
//!
//! The published shape: as the total wavelength count grows from 64 to 512,
//! peak bandwidth grows by roughly 7.5×–8.6× while packet energy drops by
//! ≈ 11 % and the d-HetPNoC device area grows by ≈ 70 %; d-HetPNoC stays
//! ahead of Firefly in bandwidth and below it in energy for skewed traffic.

use crate::experiments::ExperimentReport;
use crate::runner::{ensure_registered, Architecture, EffortLevel, TrafficKind};
use pnoc_photonics::area::AreaModel;
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::registry::Provisioning;
use pnoc_sim::report::{fmt_f, Table};
use pnoc_sim::scenario::ScenarioMatrix;
use serde::{Deserialize, Serialize};

/// One scaling-point measurement for one architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Architecture label.
    pub architecture: String,
    /// Bandwidth set label.
    pub bandwidth_set: String,
    /// Traffic label.
    pub traffic: String,
    /// Peak aggregate bandwidth, Gb/s.
    pub peak_gbps: f64,
    /// Peak per-core bandwidth, Gb/s.
    pub peak_core_gbps: f64,
    /// Packet energy at saturation, pJ.
    pub packet_energy_pj: f64,
    /// Electro-optic device area of the architecture at this design point, mm².
    pub area_mm2: f64,
}

/// Measures the scaling rows for the given traffic kinds. The whole
/// (architecture × bandwidth set × traffic) grid runs as one scenario-matrix
/// batch: every sweep point goes into a single flattened rayon work queue.
#[must_use]
pub fn rows(effort: EffortLevel, kinds: &[TrafficKind]) -> Vec<ScalingRow> {
    ensure_registered();
    let area_model = AreaModel::paper_default();
    let pair = Architecture::comparison_pair();
    let outcome = ScenarioMatrix::new()
        .architectures(pair.iter().map(Architecture::name))
        .traffics(kinds.iter().map(TrafficKind::name))
        .all_bandwidth_sets()
        .effort(effort)
        .run()
        .unwrap_or_else(|error| panic!("{error}"));
    let mut out = Vec::new();
    for architecture in &pair {
        for set in BandwidthSet::ALL {
            let config = effort.config(set);
            let area = match architecture.provisioning() {
                Provisioning::Static => area_model.firefly_report(set.total_wavelengths()).area_mm2,
                Provisioning::Dynamic => {
                    area_model.dynamic_report(set.total_wavelengths()).area_mm2
                }
            };
            for kind in kinds {
                let sweep = &outcome
                    .find(architecture.name(), kind.name(), set)
                    .unwrap_or_else(|| {
                        panic!(
                            "matrix result is missing the ({}, {}, {}) cell",
                            architecture.name(),
                            kind.name(),
                            set.short_name()
                        )
                    })
                    .result;
                let peak = sweep.sustainable_bandwidth_gbps();
                out.push(ScalingRow {
                    architecture: architecture.label().to_string(),
                    bandwidth_set: set.label().to_string(),
                    traffic: kind.label(),
                    peak_gbps: peak,
                    peak_core_gbps: peak / config.topology.num_cores() as f64,
                    packet_energy_pj: sweep.packet_energy_at_saturation_pj(),
                    area_mm2: area,
                });
            }
        }
    }
    out
}

/// Builds the report from precomputed rows.
#[must_use]
pub fn report_from_rows(rows: &[ScalingRow]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig3_7_3_10",
        "Scaling with total wavelengths: Figures 3-7 (d-HetPNoC), 3-8/3-9 (bandwidth & energy vs area) and 3-10 (Firefly)",
    );
    let mut table = Table::new(
        "Figures 3-7 / 3-10: peak core bandwidth and energy per message across bandwidth sets",
        &[
            "architecture",
            "bandwidth set",
            "traffic",
            "peak BW (Gb/s)",
            "peak core BW (Gb/s)",
            "EPM (pJ)",
            "area (mm²)",
        ],
    );
    for row in rows {
        table.add_row(&[
            row.architecture.clone(),
            row.bandwidth_set.clone(),
            row.traffic.clone(),
            fmt_f(row.peak_gbps, 1),
            fmt_f(row.peak_core_gbps, 2),
            fmt_f(row.packet_energy_pj, 1),
            fmt_f(row.area_mm2, 3),
        ]);
    }
    report.tables.push(table);

    // Figures 3-8 / 3-9: bandwidth & energy vs area for skewed-3, d-HetPNoC.
    let mut scaling = Table::new(
        "Figures 3-8 / 3-9: d-HetPNoC peak bandwidth, energy per message and area vs total wavelengths (skewed-3)",
        &["bandwidth set", "peak BW (Gb/s)", "EPM (pJ)", "area (mm²)"],
    );
    let dhet_skew3: Vec<&ScalingRow> = rows
        .iter()
        .filter(|r| r.architecture == "d-HetPNoC" && r.traffic == "skewed-3")
        .collect();
    for row in &dhet_skew3 {
        scaling.add_row(&[
            row.bandwidth_set.clone(),
            fmt_f(row.peak_gbps, 1),
            fmt_f(row.packet_energy_pj, 1),
            fmt_f(row.area_mm2, 3),
        ]);
    }
    report.tables.push(scaling);

    if dhet_skew3.len() >= 2 {
        let first = dhet_skew3.first().unwrap();
        let last = dhet_skew3.last().unwrap();
        if first.peak_gbps > 0.0 && first.area_mm2 > 0.0 && first.packet_energy_pj > 0.0 {
            report.notes.push(format!(
                "64 → 512 wavelengths (skewed-3, d-HetPNoC): peak bandwidth ×{:.2} (paper: ≈×8.5), \
                 packet energy {:+.1}% (paper: ≈-11%), area {:+.1}% (paper: ≈+70%)",
                last.peak_gbps / first.peak_gbps,
                (last.packet_energy_pj - first.packet_energy_pj) / first.packet_energy_pj * 100.0,
                (last.area_mm2 - first.area_mm2) / first.area_mm2 * 100.0,
            ));
        }
    }
    report
}

/// Runs the full experiment (uniform + skewed traffic, as in the figures).
#[must_use]
pub fn run(effort: EffortLevel) -> ExperimentReport {
    let kinds = match effort {
        EffortLevel::Paper => TrafficKind::synthetic().to_vec(),
        EffortLevel::Quick | EffortLevel::Smoke => vec![
            TrafficKind::named("uniform-random"),
            TrafficKind::named("skewed-3"),
        ],
    };
    report_from_rows(&rows(effort, &kinds))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_structure_from_synthetic_rows() {
        let rows = vec![
            ScalingRow {
                architecture: "d-HetPNoC".to_string(),
                bandwidth_set: "BW Set 1 (64 wavelengths)".to_string(),
                traffic: "skewed-3".to_string(),
                peak_gbps: 700.0,
                peak_core_gbps: 11.0,
                packet_energy_pj: 4000.0,
                area_mm2: 1.608,
            },
            ScalingRow {
                architecture: "d-HetPNoC".to_string(),
                bandwidth_set: "BW Set 3 (512 wavelengths)".to_string(),
                traffic: "skewed-3".to_string(),
                peak_gbps: 5600.0,
                peak_core_gbps: 88.0,
                packet_energy_pj: 3600.0,
                area_mm2: 2.73,
            },
        ];
        let report = report_from_rows(&rows);
        assert_eq!(report.tables.len(), 2);
        assert_eq!(report.tables[1].num_rows(), 2);
        assert!(report.notes[0].contains("64 → 512"));
        assert!(report.notes[0].contains("×8.00"));
    }
}
