//! Figure 3-6 — total electro-optic device area of d-HetPNoC and Firefly as
//! the aggregate bandwidth requirement grows.
//!
//! Analytic (equations 5–24); the published anchors are 1.608 mm² vs
//! 1.367 mm² at 64 data wavelengths, with the d-HetPNoC overhead growing as
//! the number of data waveguides grows.

use crate::experiments::ExperimentReport;
use pnoc_photonics::area::AreaModel;
use pnoc_sim::report::{fmt_f, Table};

/// Wavelength counts swept by the figure.
pub const WAVELENGTH_SWEEP: [usize; 5] = [64, 128, 256, 384, 512];

/// Regenerates the Figure 3-6 series.
#[must_use]
pub fn run() -> ExperimentReport {
    let model = AreaModel::paper_default();
    let mut report = ExperimentReport::new(
        "fig3_6",
        "Total modulator/demodulator area vs aggregate bandwidth (Figure 3-6)",
    );
    let mut table = Table::new(
        "Figure 3-6: electro-optic device area (mm²)",
        &[
            "total data wavelengths",
            "data waveguides",
            "Firefly area",
            "d-HetPNoC area",
            "overhead",
        ],
    );
    for wavelengths in WAVELENGTH_SWEEP {
        let firefly = model.firefly_report(wavelengths);
        let dhet = model.dynamic_report(wavelengths);
        table.add_row(&[
            wavelengths.to_string(),
            dhet.data_waveguides.to_string(),
            fmt_f(firefly.area_mm2, 3),
            fmt_f(dhet.area_mm2, 3),
            format!(
                "{}%",
                fmt_f(
                    (dhet.area_mm2 - firefly.area_mm2) / firefly.area_mm2 * 100.0,
                    1
                )
            ),
        ]);
    }
    report.tables.push(table);
    let d64 = model.dynamic_report(64).area_mm2;
    let f64_ = model.firefly_report(64).area_mm2;
    report.notes.push(format!(
        "at 64 data wavelengths: d-HetPNoC {:.3} mm² vs Firefly {:.3} mm² (paper: 1.608 vs 1.367 mm²)",
        d64, f64_
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_table_reproduces_the_paper_anchors() {
        let report = run();
        assert_eq!(report.tables[0].num_rows(), WAVELENGTH_SWEEP.len());
        assert!(report.notes[0].contains("1.608"));
        let rendered = report.render();
        assert!(rendered.contains("1.608"));
        assert!(rendered.contains("1.367"));
    }
}
