//! Tables 3-1 … 3-5 — the configuration and constants of the evaluation.
//!
//! These tables are inputs rather than results, but regenerating them from
//! the code proves that the simulator is configured exactly as the paper
//! describes (bandwidth sets, skew frequencies, simulation parameters and
//! photonic energy constants).

use crate::experiments::ExperimentReport;
use pnoc_noc::packet::BandwidthClass;
use pnoc_photonics::energy::PhotonicEnergyModel;
use pnoc_sim::config::{BandwidthSet, SimConfig};
use pnoc_sim::report::{fmt_f, Table};
use pnoc_traffic::pattern::SkewLevel;

/// Regenerates Tables 3-1 through 3-5.
#[must_use]
pub fn run() -> ExperimentReport {
    let mut report =
        ExperimentReport::new("tables", "Tables 3-1 … 3-5 (configuration and constants)");

    // Table 3-1: bandwidth sets.
    let mut t31 = Table::new(
        "Table 3-1: application bandwidths per bandwidth set (Gbps)",
        &["bandwidth set", "low", "medium-low", "medium-high", "high"],
    );
    for set in BandwidthSet::ALL {
        let row: Vec<String> = std::iter::once(set.label().to_string())
            .chain(
                BandwidthClass::ALL
                    .iter()
                    .map(|c| fmt_f(set.class_bandwidth_gbps(*c, 12.5), 1)),
            )
            .collect();
        t31.add_row(&row);
    }
    report.tables.push(t31);

    // Table 3-2: frequency of communication per skew level.
    let mut t32 = Table::new(
        "Table 3-2: frequency of communication per application bandwidth",
        &["scenario", "high", "medium-high", "medium-low", "low"],
    );
    for skew in SkewLevel::ALL {
        t32.add_row(&[
            skew.label().to_string(),
            format!(
                "{}%",
                fmt_f(skew.frequency(BandwidthClass::High) * 100.0, 2)
            ),
            format!(
                "{}%",
                fmt_f(skew.frequency(BandwidthClass::MediumHigh) * 100.0, 2)
            ),
            format!(
                "{}%",
                fmt_f(skew.frequency(BandwidthClass::MediumLow) * 100.0, 2)
            ),
            format!("{}%", fmt_f(skew.frequency(BandwidthClass::Low) * 100.0, 2)),
        ]);
    }
    report.tables.push(t32);

    // Table 3-3: simulation parameters.
    let config = SimConfig::paper_default(BandwidthSet::Set1);
    let mut t33 = Table::new("Table 3-3: simulation parameters", &["parameter", "value"]);
    let rows = [
        ("number of cores", config.topology.num_cores().to_string()),
        (
            "number of clusters",
            config.topology.num_clusters().to_string(),
        ),
        (
            "cluster size",
            format!("{} cores", config.topology.cores_per_cluster()),
        ),
        (
            "clock frequency",
            format!("{} GHz", config.clock.frequency_ghz),
        ),
        (
            "simulation cycles",
            format!(
                "{} with {} reset cycles",
                config.sim_cycles, config.warmup_cycles
            ),
        ),
        ("virtual channels per port", config.vcs_per_port.to_string()),
        ("buffer depth per VC", format!("{} flits", config.vc_depth)),
        ("switching", "wormhole based packet switching".to_string()),
        (
            "BW set 1 packets",
            format!(
                "{} flits of {} bits",
                BandwidthSet::Set1.packet_flits(),
                BandwidthSet::Set1.flit_bits()
            ),
        ),
        (
            "BW set 2 packets",
            format!(
                "{} flits of {} bits",
                BandwidthSet::Set2.packet_flits(),
                BandwidthSet::Set2.flit_bits()
            ),
        ),
        (
            "BW set 3 packets",
            format!(
                "{} flits of {} bits",
                BandwidthSet::Set3.packet_flits(),
                BandwidthSet::Set3.flit_bits()
            ),
        ),
        (
            "Firefly channels (set 1/2/3)",
            format!(
                "{} / {} / {} wavelengths per channel x 16 channels",
                BandwidthSet::Set1.class_wavelengths(BandwidthClass::MediumHigh),
                BandwidthSet::Set2.class_wavelengths(BandwidthClass::MediumHigh),
                BandwidthSet::Set3.class_wavelengths(BandwidthClass::MediumHigh)
            ),
        ),
        (
            "d-HetPNoC maximum channel (set 1/2/3)",
            format!(
                "{} / {} / {} wavelengths",
                BandwidthSet::Set1.class_wavelengths(BandwidthClass::High),
                BandwidthSet::Set2.class_wavelengths(BandwidthClass::High),
                BandwidthSet::Set3.class_wavelengths(BandwidthClass::High)
            ),
        ),
    ];
    for (k, v) in rows {
        t33.add_row(&[k.to_string(), v]);
    }
    report.tables.push(t33);

    // Table 3-4 / 3-5: photonic component power and energy.
    let energy = PhotonicEnergyModel::paper_default();
    let mut t34 = Table::new(
        "Table 3-4: power / energy of photonic components",
        &["component", "value"],
    );
    t34.add_row(&[
        "modulator / demodulator".to_string(),
        "40 fJ/bit".to_string(),
    ]);
    t34.add_row(&["thermal tuning".to_string(), "2.4 mW/nm".to_string()]);
    t34.add_row(&["laser source".to_string(), "1.5 mW/wavelength".to_string()]);
    report.tables.push(t34);

    let mut t35 = Table::new(
        "Table 3-5: energy per bit of the packet-energy model (pJ/bit)",
        &["component", "pJ/bit"],
    );
    t35.add_row(&[
        "E_modulation".to_string(),
        fmt_f(energy.modulation_pj_per_bit, 4),
    ]);
    t35.add_row(&["E_tuning".to_string(), fmt_f(energy.tuning_pj_per_bit, 4)]);
    t35.add_row(&["E_launch".to_string(), fmt_f(energy.launch_pj_per_bit, 4)]);
    t35.add_row(&["E_buffer".to_string(), fmt_f(energy.buffer_pj_per_bit, 7)]);
    t35.add_row(&["E_router".to_string(), fmt_f(energy.router_pj_per_bit, 4)]);
    report.tables.push(t35);

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_five_tables_are_generated() {
        let report = run();
        assert_eq!(report.tables.len(), 5);
        assert_eq!(report.tables[0].num_rows(), 3);
        assert_eq!(report.tables[1].num_rows(), 3);
        assert!(report.tables[2].num_rows() >= 10);
        assert_eq!(report.tables[4].num_rows(), 5);
        let rendered = report.render();
        assert!(rendered.contains("2.5 GHz"));
        assert!(rendered.contains("0.0781250"));
    }
}
