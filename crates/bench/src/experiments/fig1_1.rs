//! Figure 1-1 — speedup of a 1024 B flit size over the 32 B baseline for
//! CUDA-SDK (upper case) and Rodinia (lower case) benchmarks at 700 MHz.
//!
//! The paper's observation: "despite the high bandwidth links most of the
//! benchmarks show very modest performance improvement of less than below 1%.
//! On the other hand a few of the benchmarks show considerable speedup of up
//! to 63%."

use crate::experiments::ExperimentReport;
use pnoc_sim::report::{fmt_f, Table};
use pnoc_traffic::gpu::GpuSpeedupModel;

/// Regenerates the Figure 1-1 series.
#[must_use]
pub fn run() -> ExperimentReport {
    let model = GpuSpeedupModel::figure_1_1();
    let mut report = ExperimentReport::new(
        "fig1_1",
        "GPU speedup of 1024B flits over the 32B baseline (700 MHz GPU-memory interconnect)",
    );
    let mut table = Table::new(
        "Figure 1-1: speedup per benchmark",
        &[
            "benchmark",
            "suite",
            "kernel launches",
            "speedup over 32B flits",
        ],
    );
    let mut rows: Vec<_> = model
        .benchmarks
        .iter()
        .map(|b| {
            (
                b.name.clone(),
                format!("{:?}", b.suite),
                b.kernel_launches,
                b.speedup_percent(model.large_flit_bytes),
            )
        })
        .collect();
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
    for (name, suite, launches, pct) in rows {
        table.add_row(&[
            name,
            suite,
            format!("{launches}"),
            format!("{}%", fmt_f(pct, 2)),
        ]);
    }
    report.tables.push(table);
    report.notes.push(format!(
        "{} of {} benchmarks gain less than 1% (paper: \"most\"); maximum speedup {:.1}% (paper: up to 63%).",
        model.count_below(1.0),
        model.benchmarks.len(),
        model.max_speedup_percent(),
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_shape_is_reported() {
        let report = run();
        assert_eq!(report.tables.len(), 1);
        assert!(report.tables[0].num_rows() >= 12);
        assert!(report.notes[0].contains("maximum speedup"));
    }
}
