//! Figure 3-5 — peak core bandwidth and packet energy for the synthetic
//! hotspot-skewed case studies and the real-application (GPU + memory)
//! traffic, Firefly vs d-HetPNoC.
//!
//! The published shape: "In all the cases the peak bandwidth of the
//! d-HetPNoC is better than the Firefly architecture ... The same trend is
//! observed regardless of the actual percentage traffic with the hotspot."

use crate::experiments::ExperimentReport;
use crate::runner::{comparison_rows, Architecture, ComparisonRow, EffortLevel, TrafficKind};
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::report::{fmt_f, Table};

/// Runs the case-study sweeps (all at bandwidth set 1, as in the thesis) as
/// one scenario-matrix batch.
#[must_use]
pub fn rows(effort: EffortLevel) -> Vec<ComparisonRow> {
    let [firefly, dhet] = Architecture::comparison_pair();
    comparison_rows(
        &firefly,
        &dhet,
        effort,
        &[BandwidthSet::Set1],
        &TrafficKind::case_studies(),
    )
}

/// Builds the report from precomputed rows.
#[must_use]
pub fn report_from_rows(rows: &[ComparisonRow]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig3_5",
        "Case studies: hotspot-skewed and real-application traffic (Figure 3-5)",
    );
    let mut table = Table::new(
        "Figure 3-5: peak core bandwidth (Gb/s per core) and packet energy (pJ)",
        &[
            "traffic",
            "Firefly BW/core",
            "d-HetPNoC BW/core",
            "BW gain",
            "Firefly EPM",
            "d-HetPNoC EPM",
            "EPM saving",
        ],
    );
    for row in rows {
        table.add_row(&[
            row.traffic.clone(),
            fmt_f(row.baseline_peak_gbps / 64.0, 2),
            fmt_f(row.candidate_peak_gbps / 64.0, 2),
            format!("{}%", fmt_f(row.bandwidth_gain_percent(), 2)),
            fmt_f(row.baseline_packet_energy_pj, 1),
            fmt_f(row.candidate_packet_energy_pj, 1),
            format!("{}%", fmt_f(row.energy_saving_percent(), 2)),
        ]);
    }
    report.tables.push(table);
    let wins = rows
        .iter()
        .filter(|r| r.candidate_peak_gbps >= r.baseline_peak_gbps * 0.995)
        .count();
    report.notes.push(format!(
        "d-HetPNoC matches or beats Firefly peak bandwidth in {}/{} case studies (paper: all cases)",
        wins,
        rows.len()
    ));
    report
}

/// Runs the full experiment.
#[must_use]
pub fn run(effort: EffortLevel) -> ExperimentReport {
    report_from_rows(&rows(effort))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{compare_architectures, TrafficKind};

    #[test]
    fn report_covers_all_case_studies() {
        // Use a single smoke-effort case study to keep the test cheap, then
        // check the report structure with synthetic rows for the rest.
        let one = compare_architectures(
            EffortLevel::Smoke,
            BandwidthSet::Set1,
            &TrafficKind::named("real-application"),
        );
        let report = report_from_rows(&[one]);
        assert_eq!(report.tables[0].num_rows(), 1);
        assert!(report.notes[0].contains("case studies"));
    }
}
