//! Figures 3-3 and 3-4 — peak bandwidth and packet energy of Firefly vs
//! d-HetPNoC for uniform-random and skewed traffic at all three bandwidth
//! sets.
//!
//! The published shape to reproduce:
//!
//! * uniform-random traffic: both architectures perform the same (the
//!   d-HetPNoC allocation degenerates to the uniform Firefly allocation),
//! * with increasing skew, d-HetPNoC's peak bandwidth advantage grows (up to
//!   ≈ 7 % in the thesis) and its packet energy advantage grows (up to ≈ 5 %).

use crate::experiments::ExperimentReport;
use crate::runner::{comparison_rows, Architecture, ComparisonRow, EffortLevel, TrafficKind};
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::report::{fmt_f, Table};

/// Runs the Figure 3-3 / 3-4 sweeps — the full (bandwidth set × traffic)
/// grid as **one scenario-matrix batch** — and returns the raw rows.
#[must_use]
pub fn rows(effort: EffortLevel) -> Vec<ComparisonRow> {
    let [firefly, dhet] = Architecture::comparison_pair();
    comparison_rows(
        &firefly,
        &dhet,
        effort,
        &BandwidthSet::ALL,
        &TrafficKind::synthetic(),
    )
}

/// Builds the report from precomputed rows (shared with the Criterion bench).
#[must_use]
pub fn report_from_rows(rows: &[ComparisonRow]) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "fig3_3_3_4",
        "Peak bandwidth (Fig 3-3) and packet energy (Fig 3-4), Firefly vs d-HetPNoC",
    );
    let mut bw = Table::new(
        "Figure 3-3: peak aggregate bandwidth (Gb/s)",
        &[
            "bandwidth set",
            "traffic",
            "Firefly",
            "d-HetPNoC",
            "d-HetPNoC gain",
        ],
    );
    let mut energy = Table::new(
        "Figure 3-4: packet energy at saturation (pJ)",
        &[
            "bandwidth set",
            "traffic",
            "Firefly",
            "d-HetPNoC",
            "d-HetPNoC saving",
        ],
    );
    for row in rows {
        bw.add_row(&[
            row.bandwidth_set.clone(),
            row.traffic.clone(),
            fmt_f(row.baseline_peak_gbps, 1),
            fmt_f(row.candidate_peak_gbps, 1),
            format!("{}%", fmt_f(row.bandwidth_gain_percent(), 2)),
        ]);
        energy.add_row(&[
            row.bandwidth_set.clone(),
            row.traffic.clone(),
            fmt_f(row.baseline_packet_energy_pj, 1),
            fmt_f(row.candidate_packet_energy_pj, 1),
            format!("{}%", fmt_f(row.energy_saving_percent(), 2)),
        ]);
    }
    report.tables.push(bw);
    report.tables.push(energy);

    // Shape checks against the paper.
    let uniform_gains: Vec<f64> = rows
        .iter()
        .filter(|r| r.traffic == "uniform-random")
        .map(ComparisonRow::bandwidth_gain_percent)
        .collect();
    let skew3_gains: Vec<f64> = rows
        .iter()
        .filter(|r| r.traffic == "skewed-3")
        .map(ComparisonRow::bandwidth_gain_percent)
        .collect();
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    report.notes.push(format!(
        "uniform-random: mean d-HetPNoC bandwidth gain {:.2}% (paper: ≈0.1%, architectures equivalent)",
        avg(&uniform_gains)
    ));
    report.notes.push(format!(
        "skewed-3: mean d-HetPNoC bandwidth gain {:.2}% (paper: up to ≈7%)",
        avg(&skew3_gains)
    ));
    let skew3_savings: Vec<f64> = rows
        .iter()
        .filter(|r| r.traffic == "skewed-3")
        .map(ComparisonRow::energy_saving_percent)
        .collect();
    report.notes.push(format!(
        "skewed-3: mean d-HetPNoC packet-energy saving {:.2}% (paper: up to ≈5%)",
        avg(&skew3_savings)
    ));
    report
}

/// Runs the full experiment.
#[must_use]
pub fn run(effort: EffortLevel) -> ExperimentReport {
    report_from_rows(&rows(effort))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_all_rows() {
        // A single bandwidth set at smoke effort keeps the test fast while
        // exercising the full matrix-batched pipeline.
        let [firefly, dhet] = Architecture::comparison_pair();
        let rows = comparison_rows(
            &firefly,
            &dhet,
            EffortLevel::Smoke,
            &[BandwidthSet::Set1],
            &TrafficKind::synthetic(),
        );
        let report = report_from_rows(&rows);
        assert_eq!(report.tables[0].num_rows(), 4);
        assert_eq!(report.tables[1].num_rows(), 4);
        assert_eq!(report.notes.len(), 3);
    }
}
