//! One module per table / figure of the paper's evaluation.

pub mod fig1_1;
pub mod fig3_3_3_4;
pub mod fig3_5;
pub mod fig3_6;
pub mod fig3_7_3_10;
pub mod overheads;
pub mod tables;

use crate::runner::EffortLevel;
use pnoc_sim::report::Table;
use serde::{Deserialize, Serialize};

/// The output of one experiment: a set of tables plus free-form notes
/// comparing the measured shape against the paper's reported shape.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Short identifier ("fig3_3", "tables", ...).
    pub id: String,
    /// Human readable title.
    pub title: String,
    /// The regenerated tables / series.
    pub tables: Vec<Table>,
    /// Observations (e.g. measured gain vs the paper's reported gain).
    pub notes: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new(id: &str, title: &str) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            ..Self::default()
        }
    }

    /// Renders the full report as plain text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "################ {} — {} ################\n",
            self.id, self.title
        );
        for table in &self.tables {
            out.push_str(&table.render());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("Notes:\n");
            for note in &self.notes {
                out.push_str("  * ");
                out.push_str(note);
                out.push('\n');
            }
        }
        out
    }
}

/// Names of all experiments, in the order they appear in the paper.
pub const ALL_EXPERIMENTS: [&str; 7] = [
    "fig1_1",
    "tables",
    "fig3_3_3_4",
    "fig3_5",
    "fig3_6",
    "fig3_7_3_10",
    "overheads",
];

/// Runs an experiment by name.
///
/// # Panics
///
/// Panics if the name is unknown (the `repro` binary validates names first).
#[must_use]
pub fn run_by_name(name: &str, effort: EffortLevel) -> ExperimentReport {
    match name {
        "fig1_1" => fig1_1::run(),
        "tables" => tables::run(),
        "fig3_3_3_4" => fig3_3_3_4::run(effort),
        "fig3_5" => fig3_5::run(effort),
        "fig3_6" => fig3_6::run(),
        "fig3_7_3_10" => fig3_7_3_10::run(effort),
        "overheads" => overheads::run(),
        other => panic!("unknown experiment '{other}'; valid names: {ALL_EXPERIMENTS:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rendering_includes_tables_and_notes() {
        let mut report = ExperimentReport::new("x", "demo");
        let mut t = Table::new("t", &["a"]);
        t.add_row(&["1".to_string()]);
        report.tables.push(t);
        report.notes.push("note".to_string());
        let text = report.render();
        assert!(text.contains("demo"));
        assert!(text.contains("| 1 |"));
        assert!(text.contains("* note"));
    }

    #[test]
    fn analytic_experiments_run_by_name() {
        for name in ["fig1_1", "tables", "fig3_6", "overheads"] {
            let report = run_by_name(name, EffortLevel::Quick);
            assert_eq!(report.id, name);
            assert!(!report.tables.is_empty(), "{name} produced no tables");
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_experiment_panics() {
        let _ = run_by_name("fig9_9", EffortLevel::Quick);
    }
}
