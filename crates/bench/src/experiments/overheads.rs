//! The protocol-overhead numbers worked out in the text of the thesis:
//! reservation-flit timing (Section 3.3.1 / 3.4.1.1), token size and
//! circulation latency (equations 1–2), and the quoted area anchors of
//! Section 3.4.3.

use crate::experiments::ExperimentReport;
use pnoc_dhetpnoc::reservation::ReservationTiming;
use pnoc_dhetpnoc::token::{token_hop_cycles, token_size_bits};
use pnoc_photonics::area::AreaModel;
use pnoc_photonics::dwdm::WavelengthGrid;
use pnoc_sim::clock::Clock;
use pnoc_sim::config::{BandwidthSet, SimConfig};
use pnoc_sim::report::{fmt_f, Table};

/// Regenerates the overhead numbers quoted in the text.
#[must_use]
pub fn run() -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "overheads",
        "Protocol overheads: reservation timing, token timing and area anchors",
    );

    let clock = Clock::paper_default();
    let mut reservation = Table::new(
        "Reservation-flit wavelength identifiers (Section 3.4.1.1)",
        &[
            "bandwidth set",
            "identifier bits",
            "max identifiers",
            "payload bits",
            "payload time (ps)",
            "reservation cycles",
        ],
    );
    for set in BandwidthSet::ALL {
        let config = SimConfig::paper_default(set);
        let t = ReservationTiming::for_config(&config);
        reservation.add_row(&[
            set.label().to_string(),
            t.identifier_bits.to_string(),
            t.max_identifiers.to_string(),
            t.identifier_payload_bits.to_string(),
            fmt_f(t.payload_time_ps, 0),
            t.cycles.to_string(),
        ]);
    }
    report.tables.push(reservation);

    let mut token = Table::new(
        "Token size (eq. 1) and link traversal latency (eq. 2)",
        &[
            "bandwidth set",
            "data waveguides",
            "token bits (N_TW)",
            "hop latency (cycles)",
            "worst-case repossession (cycles)",
        ],
    );
    for set in BandwidthSet::ALL {
        let grid = WavelengthGrid::for_total(set.total_wavelengths(), 64);
        let bits = token_size_bits(grid.num_waveguides(), 64, 16);
        let hop = token_hop_cycles(bits, 64, 12.5, clock);
        token.add_row(&[
            set.label().to_string(),
            grid.num_waveguides().to_string(),
            bits.to_string(),
            hop.to_string(),
            (hop * 16).to_string(),
        ]);
    }
    report.tables.push(token);

    let area_model = AreaModel::paper_default();
    let mut area = Table::new(
        "Area anchors of Section 3.4.3 (64 data wavelengths)",
        &["architecture", "modulators", "detectors", "area (mm²)"],
    );
    let d = area_model.dynamic_report(64);
    let f = area_model.firefly_report(64);
    area.add_row(&[
        "d-HetPNoC".to_string(),
        d.rings.total_modulators().to_string(),
        d.rings.total_detectors().to_string(),
        fmt_f(d.area_mm2, 3),
    ]);
    area.add_row(&[
        "Firefly".to_string(),
        f.rings.total_modulators().to_string(),
        f.rings.total_detectors().to_string(),
        fmt_f(f.area_mm2, 3),
    ]);
    report.tables.push(area);

    report.notes.push(
        "paper text: reservation identifiers take 60 ps (set 1, one cycle) and 720 ps (set 3, two cycles); \
         area anchors 1.608 mm² vs 1.367 mm²"
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_numbers_match_the_text() {
        let report = run();
        let rendered = report.render();
        // 60 ps / 720 ps reservation payloads.
        assert!(rendered.contains("| 48 "));
        assert!(rendered.contains("| 576 "));
        // Token sizes 48 / 240 / 496 bits.
        assert!(rendered.contains("496"));
        // Area anchors.
        assert!(rendered.contains("1.608"));
        assert!(rendered.contains("1.367"));
        assert_eq!(report.tables.len(), 3);
    }
}
