//! JSON rendering for the experiment harness.
//!
//! The hand-rolled JSON value model ([`Json`]: render **and** parse) lives
//! in `pnoc-store` since PR 7 — the result store is the lowest layer that
//! needs both directions — and is re-exported here unchanged, so harness
//! code keeps using `crate::json::Json`. This module adds the
//! harness-specific document builders: report tables and `repro --json`
//! output.

pub use pnoc_store::json::{Json, JsonParseError};

use crate::experiments::ExperimentReport;
use pnoc_sim::report::Table;

/// JSON representation of a report table.
#[must_use]
pub fn table_json(table: &Table) -> Json {
    Json::obj(vec![
        ("title", Json::str(table.title())),
        (
            "header",
            Json::Arr(table.header().iter().map(Json::str).collect()),
        ),
        (
            "rows",
            Json::Arr(
                table
                    .rows()
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// JSON representation of one experiment report.
#[must_use]
pub fn report_json(report: &ExperimentReport) -> Json {
    Json::obj(vec![
        ("id", Json::str(&report.id)),
        ("title", Json::str(&report.title)),
        (
            "tables",
            Json::Arr(report.tables.iter().map(table_json).collect()),
        ),
        (
            "notes",
            Json::Arr(report.notes.iter().map(Json::str).collect()),
        ),
    ])
}

/// JSON representation of a batch of experiment reports (what
/// `repro --json` writes).
#[must_use]
pub fn reports_json(reports: &[ExperimentReport]) -> Json {
    Json::Arr(reports.iter().map(report_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_structure() {
        let mut report = ExperimentReport::new("x", "demo");
        let mut table = Table::new("t", &["a", "b"]);
        table.add_row(&["1".to_string(), "2".to_string()]);
        report.tables.push(table);
        report.notes.push("note".to_string());
        let text = reports_json(&[report]).render();
        assert!(text.contains("\"id\": \"x\""));
        assert!(text.contains("\"header\": [\n"));
        assert!(text.contains("\"note\""));
    }
}
