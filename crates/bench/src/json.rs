//! Hand-rolled JSON rendering for machine-readable outputs.
//!
//! The workspace builds offline against a no-op `serde` shim (see
//! `vendor/README.md`), so the JSON the harness emits — `repro --json` and
//! the `BENCH_sweep.json` performance log — is rendered by this small,
//! dependency-free value model instead.

use crate::experiments::ExperimentReport;
use pnoc_sim::report::Table;
use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Self {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as pretty-printed JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_inner = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_inner);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad_inner);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON representation of a report table.
#[must_use]
pub fn table_json(table: &Table) -> Json {
    Json::obj(vec![
        ("title", Json::str(table.title())),
        (
            "header",
            Json::Arr(table.header().iter().map(Json::str).collect()),
        ),
        (
            "rows",
            Json::Arr(
                table
                    .rows()
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(Json::str).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// JSON representation of one experiment report.
#[must_use]
pub fn report_json(report: &ExperimentReport) -> Json {
    Json::obj(vec![
        ("id", Json::str(&report.id)),
        ("title", Json::str(&report.title)),
        (
            "tables",
            Json::Arr(report.tables.iter().map(table_json).collect()),
        ),
        (
            "notes",
            Json::Arr(report.notes.iter().map(Json::str).collect()),
        ),
    ])
}

/// JSON representation of a batch of experiment reports (what
/// `repro --json` writes).
#[must_use]
pub fn reports_json(reports: &[ExperimentReport]) -> Json {
    Json::Arr(reports.iter().map(report_json).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_escapes_and_nests() {
        let value = Json::obj(vec![
            ("name", Json::str("say \"hi\"\n")),
            ("count", Json::Num(3.0)),
            ("nan", Json::Num(f64::NAN)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("items", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("empty", Json::Arr(Vec::new())),
        ]);
        let text = value.render();
        assert!(text.contains("\"say \\\"hi\\\"\\n\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"items\": [\n"));
        assert!(text.contains("\"empty\": []"));
    }

    #[test]
    fn report_round_trips_structure() {
        let mut report = ExperimentReport::new("x", "demo");
        let mut table = Table::new("t", &["a", "b"]);
        table.add_row(&["1".to_string(), "2".to_string()]);
        report.tables.push(table);
        report.notes.push("note".to_string());
        let text = reports_json(&[report]).render();
        assert!(text.contains("\"id\": \"x\""));
        assert!(text.contains("\"header\": [\n"));
        assert!(text.contains("\"note\""));
    }
}
