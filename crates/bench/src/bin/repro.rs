//! `repro` — regenerates every table and figure of the d-HetPNoC thesis.
//!
//! Usage:
//!
//! ```text
//! repro                      # run everything at paper scale
//! repro --quick              # run everything at reduced scale (smoke test)
//! repro fig3_3_3_4 fig3_6    # run selected experiments
//! repro --list               # list experiment names
//! repro --json results.json  # additionally dump the reports as JSON
//! ```

use pnoc_bench::experiments::{run_by_name, ExperimentReport, ALL_EXPERIMENTS};
use pnoc_bench::runner::EffortLevel;
use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = EffortLevel::Paper;
    let mut names: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => effort = EffortLevel::Quick,
            "--paper" => effort = EffortLevel::Paper,
            "--list" => {
                for name in ALL_EXPERIMENTS {
                    println!("{name}");
                }
                return;
            }
            "--json" => {
                json_path = iter.next();
                if json_path.is_none() {
                    eprintln!("--json requires a file path");
                    std::process::exit(2);
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick|--paper] [--json FILE] [EXPERIMENT ...]\n\
                     experiments: {}",
                    ALL_EXPERIMENTS.join(", ")
                );
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag '{other}', try --help");
                std::process::exit(2);
            }
            other => names.push(other.to_string()),
        }
    }
    if names.is_empty() {
        names = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for name in &names {
        if !ALL_EXPERIMENTS.contains(&name.as_str()) {
            eprintln!(
                "unknown experiment '{name}'; valid experiments: {}",
                ALL_EXPERIMENTS.join(", ")
            );
            std::process::exit(2);
        }
    }

    let mut reports: Vec<ExperimentReport> = Vec::new();
    for name in &names {
        eprintln!("[repro] running {name} ({effort:?}) ...");
        let started = std::time::Instant::now();
        let report = run_by_name(name, effort);
        eprintln!("[repro] {name} finished in {:.1}s", started.elapsed().as_secs_f64());
        println!("{}", report.render());
        reports.push(report);
    }

    if let Some(path) = json_path {
        match serde_json::to_string_pretty(&reports) {
            Ok(json) => {
                let mut file = std::fs::File::create(&path).unwrap_or_else(|e| {
                    eprintln!("cannot create {path}: {e}");
                    std::process::exit(1);
                });
                file.write_all(json.as_bytes()).expect("write JSON");
                eprintln!("[repro] wrote {path}");
            }
            Err(e) => {
                eprintln!("cannot serialise reports: {e}");
                std::process::exit(1);
            }
        }
    }
}
