//! `repro` — regenerates every table and figure of the d-HetPNoC thesis.
//!
//! Usage:
//!
//! ```text
//! repro                      # run everything at paper scale
//! repro --quick              # run everything at reduced scale (smoke test)
//! repro fig3_3_3_4 fig3_6    # run selected experiments
//! repro --list               # list experiment names
//! repro --json results.json  # additionally dump the reports as JSON
//! repro --bench-sweep        # time sequential vs parallel sweeps for every
//!                            # registered architecture and write
//!                            # BENCH_sweep.json (wall-clock + peak bandwidth)
//! repro --bench-sweep=FILE   # same, custom output path
//! ```

use pnoc_bench::experiments::{run_by_name, ExperimentReport, ALL_EXPERIMENTS};
use pnoc_bench::json::{reports_json, Json};
use pnoc_bench::runner::{saturation_sweep_with_mode, Architecture, EffortLevel, TrafficKind};
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::sweep::SweepMode;
use std::io::Write as _;
use std::time::Instant;

fn write_file(path: &str, contents: &str) {
    let mut file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    });
    file.write_all(contents.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

/// Times sequential vs parallel saturation sweeps for every registered
/// architecture on the paper-scale load ladder and writes the results as
/// machine-readable JSON, so future changes can track the performance
/// trajectory. Also asserts, on every run, that the parallel sweep is
/// bitwise-identical to the sequential one.
fn run_bench_sweep(effort: EffortLevel, path: &str) {
    let kind = TrafficKind::named("skewed-3");
    let set = BandwidthSet::Set1;
    let config = effort.config(set);
    let loads = EffortLevel::Paper.load_ladder(&config);
    let threads = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        });
    let mut entries = Vec::new();
    for architecture in Architecture::all() {
        eprintln!(
            "[repro] bench-sweep {} ({} points) ...",
            architecture.name(),
            loads.len()
        );
        let started = Instant::now();
        let sequential =
            saturation_sweep_with_mode(&architecture, config, &kind, &loads, SweepMode::Sequential);
        let sequential_seconds = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let parallel =
            saturation_sweep_with_mode(&architecture, config, &kind, &loads, SweepMode::Parallel);
        let parallel_seconds = started.elapsed().as_secs_f64();
        assert_eq!(
            sequential,
            parallel,
            "parallel sweep diverged from the sequential sweep for '{}'",
            architecture.name()
        );
        eprintln!(
            "[repro]   sequential {sequential_seconds:.2}s, parallel {parallel_seconds:.2}s \
             (speedup {:.2}x), peak {:.1} Gb/s",
            sequential_seconds / parallel_seconds.max(1e-9),
            parallel.peak_bandwidth_gbps()
        );
        entries.push(Json::obj(vec![
            ("architecture", Json::str(architecture.name())),
            ("label", Json::str(architecture.label())),
            ("sequential_seconds", Json::Num(sequential_seconds)),
            ("parallel_seconds", Json::Num(parallel_seconds)),
            (
                "parallel_speedup",
                Json::Num(sequential_seconds / parallel_seconds.max(1e-9)),
            ),
            (
                "peak_bandwidth_gbps",
                Json::Num(parallel.peak_bandwidth_gbps()),
            ),
            (
                "sustainable_bandwidth_gbps",
                Json::Num(parallel.sustainable_bandwidth_gbps()),
            ),
            ("sweep_points", Json::Num(loads.len() as f64)),
        ]));
    }
    let doc = Json::obj(vec![
        ("generated_by", Json::str("repro --bench-sweep")),
        ("effort", Json::str(effort.label())),
        ("bandwidth_set", Json::str(set.label())),
        ("traffic", Json::str(kind.label())),
        ("threads", Json::Num(threads as f64)),
        ("architectures", Json::Arr(entries)),
    ]);
    write_file(path, &(doc.render() + "\n"));
    eprintln!("[repro] wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = EffortLevel::Paper;
    let mut names: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut bench_sweep_path: Option<String> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => effort = EffortLevel::Quick,
            "--paper" => effort = EffortLevel::Paper,
            "--list" => {
                for name in ALL_EXPERIMENTS {
                    println!("{name}");
                }
                return;
            }
            "--json" => {
                json_path = iter.next();
                if json_path.is_none() {
                    eprintln!("--json requires a file path");
                    std::process::exit(2);
                }
            }
            "--bench-sweep" => bench_sweep_path = Some("BENCH_sweep.json".to_string()),
            other if other.starts_with("--bench-sweep=") => {
                bench_sweep_path = Some(other["--bench-sweep=".len()..].to_string());
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick|--paper] [--json FILE] [--bench-sweep[=FILE]] [EXPERIMENT ...]\n\
                     experiments: {}",
                    ALL_EXPERIMENTS.join(", ")
                );
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag '{other}', try --help");
                std::process::exit(2);
            }
            other => names.push(other.to_string()),
        }
    }

    if let Some(path) = &bench_sweep_path {
        run_bench_sweep(effort, path);
        // `repro --bench-sweep` on its own only benchmarks; experiments run
        // too when named explicitly or when a --json report was requested.
        if names.is_empty() && json_path.is_none() {
            return;
        }
    }

    if names.is_empty() {
        names = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for name in &names {
        if !ALL_EXPERIMENTS.contains(&name.as_str()) {
            eprintln!(
                "unknown experiment '{name}'; valid experiments: {}",
                ALL_EXPERIMENTS.join(", ")
            );
            std::process::exit(2);
        }
    }

    let mut reports: Vec<ExperimentReport> = Vec::new();
    for name in &names {
        eprintln!("[repro] running {name} ({effort:?}) ...");
        let started = Instant::now();
        let report = run_by_name(name, effort);
        eprintln!(
            "[repro] {name} finished in {:.1}s",
            started.elapsed().as_secs_f64()
        );
        println!("{}", report.render());
        reports.push(report);
    }

    if let Some(path) = json_path {
        write_file(&path, &(reports_json(&reports).render() + "\n"));
        eprintln!("[repro] wrote {path}");
    }
}
