//! `repro` — regenerates every table and figure of the d-HetPNoC thesis and
//! runs ad-hoc scenario batches.
//!
//! Usage:
//!
//! ```text
//! repro                      # run everything at paper scale
//! repro --quick              # run everything at reduced scale (smoke test)
//! repro fig3_3_3_4 fig3_6    # run selected experiments
//! repro --list               # list experiment names
//! repro --json results.json  # additionally dump the reports as JSON
//!
//! repro --scenario d-hetpnoc:tornado:set2
//!                            # run one scenario (ARCH:TRAFFIC[:SET[:EFFORT]],
//!                            # repeatable; SET defaults to set1, EFFORT to
//!                            # the --quick/--paper flag)
//! repro --workload allreduce:64 --metrics out.jsonl
//!                            # run a closed-loop workload (NAME[:SIZE],
//!                            # repeatable, on the d-hetpnoc architecture) to
//!                            # DAG-drain and report flow-completion-time
//!                            # p50/p95/p99 and per-collective makespans
//! repro --faults single-link --workload allreduce:8
//!                            # inject a fault plan (preset name or literal
//!                            # plan text, repeatable) into every --scenario
//!                            # and --workload run; with --matrix it becomes
//!                            # a fault-plan axis crossing every scenario.
//!                            # Scenario shorthands may pin their own plan
//!                            # with a '#faults=PLAN' suffix instead.
//! repro --list-faults        # print the fault-plan presets (with their
//!                            # literal expansions) and the fault-kind grammar
//! repro --list-workloads     # print the workload registry catalogue
//! repro --list-architectures # print the architecture registry catalogue
//!                            # (with each architecture's parameter count)
//! repro --list-traffic       # print the traffic-pattern registry catalogue
//!
//! repro --describe-arch firefly
//!                            # print an architecture's parameter schema
//!                            # (name, kind, default, bounds, doc)
//! repro --scenario 'firefly{radix=8}:uniform-random'
//!                            # any architecture may carry {key=value,...}
//!                            # parameter overrides, validated against the
//!                            # declared schema
//! repro --arch 'd-hetpnoc{policy=paper-max}' --workload allreduce:64
//!                            # run workloads on an explicit (possibly
//!                            # parameterized) architecture; repeatable
//! repro --quick --matrix --arch firefly --arch-params radix=8,32
//!                            # restrict the default matrix's architecture
//!                            # axis and sweep a parameter axis through the
//!                            # same deduplicated batch engine
//! repro --scenario firefly:uniform --metrics out.jsonl --percentiles
//!                            # stream one metric row per ladder point
//!                            # (latency quantile sketch, per-node delivered
//!                            # bits, windowed throughput, ...) to a JSONL
//!                            # file and print p50/p95/p99 latency columns;
//!                            # --metrics-format csv switches the sink
//! repro --matrix --quick     # run the default evaluation matrix (all
//!                            # architectures × {tornado, bursty-uniform} ×
//!                            # all bandwidth sets) through the flattened
//!                            # batch engine and write MATRIX_sweep.json
//! repro --matrix=FILE        # same, custom output path
//! repro --dump-scenarios FILE  # write the selected scenario specs as JSON
//!                              # instead of running them (--bench-sweep and
//!                              # named experiments on the same command line
//!                              # still run)
//! repro --from-scenarios FILE  # load scenario specs from a JSON file and
//!                              # run them as one batch
//!
//! repro --quick --matrix --cache-dir cache/
//!                            # content-addressed result cache: points whose
//!                            # (scenario, seed, load, engine fingerprint) key
//!                            # is already in cache/ are served without
//!                            # simulating; misses are simulated and stored.
//!                            # Caching is OFF unless --cache-dir is given.
//! repro --no-cache           # force caching off (overrides --cache-dir)
//! repro --serve 127.0.0.1:9119 --cache-dir cache/
//!                            # simulation-as-a-service: POST a scenario
//!                            # document (--dump-scenarios format) to /run and
//!                            # stream back one summary line plus the JSONL
//!                            # metric rows; GET /health and /stats also
//!                            # answer. Cached points are answered without
//!                            # invoking the simulation engine.
//! repro --serve-requests N   # with --serve: exit after N connections
//!                            # (smoke tests / CI)
//!
//! repro --bench-sweep        # time sequential vs parallel sweeps for every
//!                            # registered architecture and write
//!                            # BENCH_sweep.json (wall-clock + peak bandwidth
//!                            # + cold/warm result-cache timings)
//! repro --bench-sweep=FILE   # same, custom output path
//! repro --threads 4          # force the parallel-sweep worker count
//!                            # (overrides RAYON_NUM_THREADS and the
//!                            # detected parallelism)
//! repro --cross-engine-check # run every registered architecture plus
//!                            # closed-loop workloads under both the
//!                            # per-cycle and the event-driven executor,
//!                            # assert bitwise-identical results, and write
//!                            # the metric stream to
//!                            # CROSS_ENGINE_metrics.jsonl (or =FILE)
//! ```

use pnoc_bench::experiments::{run_by_name, ExperimentReport, ALL_EXPERIMENTS};
use pnoc_bench::json::{reports_json, Json};
use pnoc_bench::runner::{
    ensure_registered, latency_percentiles_at_saturation, Architecture, EffortLevel, TrafficKind,
};
use pnoc_bench::scenario_io::{matrix_json, parse_scenarios, render_scenarios};
use pnoc_bench::server::{serve, ServerOptions};
use pnoc_sim::config::BandwidthSet;
use pnoc_sim::metrics::{CsvSink, JsonlSink, MetricValue};
use pnoc_sim::params::ArchParams;
use pnoc_sim::report::{fmt_f, Table};
use pnoc_sim::scenario::{
    run_specs, run_specs_with_cache, MatrixResult, PointCache, ScenarioMatrix, ScenarioSpec,
};
use pnoc_sim::sweep::SweepMode;
use pnoc_store::ResultStore;
use std::io::Write as _;
use std::time::Instant;

/// Output format of `--metrics FILE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Jsonl,
    Csv,
}

impl MetricsFormat {
    fn parse(text: &str) -> Option<Self> {
        match text {
            "jsonl" => Some(MetricsFormat::Jsonl),
            "csv" => Some(MetricsFormat::Csv),
            _ => None,
        }
    }
}

/// Streams every per-point metric report of the batch to `path` in the
/// chosen format (deterministic order, so two identical runs produce
/// byte-identical files — CI asserts this).
fn write_metrics_file(outcome: &MatrixResult, path: &str, format: MetricsFormat) {
    let file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    });
    let writer = std::io::BufWriter::new(file);
    let result = match format {
        MetricsFormat::Jsonl => outcome.write_metrics(&mut JsonlSink::new(writer)),
        MetricsFormat::Csv => outcome.write_metrics(&mut CsvSink::new(writer)),
    };
    result.unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!("[repro] wrote {path}");
}

fn write_file(path: &str, contents: &str) {
    let mut file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(1);
    });
    file.write_all(contents.as_bytes())
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
}

fn read_file(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    })
}

/// The architecture a bare `--workload NAME[:SIZE]` runs on when no
/// `--arch` is given (the paper's proposed architecture).
const WORKLOAD_DEFAULT_ARCHITECTURE: &str = "d-hetpnoc";

/// The default evaluation matrix of `repro --matrix`: every registered
/// architecture (or the `--arch` specs, when given) × the extended
/// permutation/bursty workloads × all three bandwidth sets, crossed with
/// any `--arch-params` axes.
fn default_matrix(
    effort: EffortLevel,
    archs: &[String],
    param_axes: &[(String, Vec<String>)],
    fault_plans: &[String],
) -> ScenarioMatrix {
    ensure_registered();
    let mut matrix = ScenarioMatrix::new()
        .traffics(["tornado", "bursty-uniform"])
        .all_bandwidth_sets()
        .effort(effort);
    matrix = if archs.is_empty() {
        matrix.all_architectures()
    } else {
        matrix.architectures(archs.iter().cloned())
    };
    for (key, values) in param_axes {
        matrix = matrix.arch_params(key, values.iter().cloned());
    }
    if !fault_plans.is_empty() {
        matrix = matrix.fault_plans(fault_plans.iter().cloned());
    }
    matrix
}

/// Prints the fault-plan preset catalogue and the fault-kind grammar
/// (`repro --list-faults`).
fn list_faults() {
    println!("fault-plan presets (use with --faults or a '#faults=' suffix):");
    for name in pnoc_faults::PRESET_PLANS {
        let plan = pnoc_faults::preset_plan(name).expect("catalogue names resolve");
        if plan.is_empty() {
            println!("  {name:<14} (healthy run)");
        } else {
            println!("  {name:<14} {}", plan.render());
        }
    }
    println!();
    println!("fault kinds (literal plans are comma-separated KIND@cONSET[-REPAIR]:TARGET[/SEV]):");
    for kind in pnoc_faults::FaultKind::ALL {
        let severity = if kind.has_severity() {
            ", takes a /severity divisor"
        } else {
            ""
        };
        println!(
            "  {:<20} targets {}{severity}",
            kind.name(),
            match kind {
                pnoc_faults::FaultKind::LinkFail | pnoc_faults::FaultKind::RingStuck => "swN",
                pnoc_faults::FaultKind::WavelengthDegrade =>
                    "class-{low,medium-low,medium-high,high}",
                pnoc_faults::FaultKind::LaserDim => "fabric",
            }
        );
    }
    println!();
    println!("example: repro --quick --faults single-link --workload allreduce:8");
}

/// Prints one architecture's parameter schema (`repro --describe-arch`):
/// one row per declared parameter with its kind, default, bounds and doc.
fn describe_architecture(spec: &str) {
    ensure_registered();
    let (builder, _) = pnoc_sim::registry::resolve_architecture_spec(spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    let schema = builder.param_schema();
    println!(
        "architecture '{}' ({}), {} parameter(s)",
        builder.name(),
        builder.label(),
        schema.len()
    );
    if schema.is_empty() {
        println!("  (no tunable parameters)");
        return;
    }
    let mut table = Table::new(
        format!("Parameters of '{}'", builder.name()),
        &["parameter", "kind", "default", "bounds", "description"],
    );
    for param in schema.specs() {
        table
            .try_add_row(&[
                param.name.clone(),
                param.kind.label().to_string(),
                param.default.to_string(),
                param.kind.bounds_label(),
                param.doc.clone(),
            ])
            .expect("row built from the header above");
    }
    println!("{table}");
    // Composing architectures (the `hier` builder) nest other registered
    // architectures behind an enum parameter named `leaf`: describe each
    // admissible leaf's own schema so `--describe-arch hier` documents the
    // whole nested parameter space.
    if let Some(leaf) = schema.get("leaf") {
        if let pnoc_sim::params::ParamKind::Enum { choices } = &leaf.kind {
            println!();
            println!("nested leaf fabrics (each runs at its default parameters):");
            for choice in choices {
                match pnoc_sim::registry::lookup_architecture(choice) {
                    Ok(nested) => {
                        let nested_schema = nested.param_schema();
                        println!(
                            "  leaf '{}' ({}), {} parameter(s)",
                            nested.name(),
                            nested.label(),
                            nested_schema.len()
                        );
                        for param in nested_schema.specs() {
                            println!(
                                "    {} ({}, default {}, {}): {}",
                                param.name,
                                param.kind.label(),
                                param.default,
                                param.kind.bounds_label(),
                                param.doc
                            );
                        }
                    }
                    Err(_) => println!("  leaf '{choice}' (not registered)"),
                }
            }
        }
    }
    println!(
        "use e.g. --scenario '{}{{{}=...}}:uniform-random' to override",
        builder.name(),
        schema.specs()[0].name
    );
}

/// Parses a `--cache-max-bytes` budget: a non-negative integer with an
/// optional `k`/`m`/`g` (or `kb`/`mb`/`gb`) suffix, powers of 1024.
fn parse_byte_budget(text: &str) -> Result<u64, String> {
    let lower = text.trim().to_ascii_lowercase();
    let (digits, multiplier) =
        if let Some(rest) = lower.strip_suffix("kb").or(lower.strip_suffix('k')) {
            (rest, 1024u64)
        } else if let Some(rest) = lower.strip_suffix("mb").or(lower.strip_suffix('m')) {
            (rest, 1024 * 1024)
        } else if let Some(rest) = lower.strip_suffix("gb").or(lower.strip_suffix('g')) {
            (rest, 1024 * 1024 * 1024)
        } else {
            (lower.as_str(), 1)
        };
    digits
        .parse::<u64>()
        .ok()
        .and_then(|n| n.checked_mul(multiplier))
        .ok_or_else(|| format!("--cache-max-bytes needs N[k|m|g] bytes, got '{text}'"))
}

/// Parses one `--arch-params KEY=V1,V2,...` axis argument.
fn parse_param_axis(text: &str) -> Result<(String, Vec<String>), String> {
    let (key, values) = text
        .split_once('=')
        .ok_or_else(|| format!("--arch-params needs KEY=V1[,V2,...], got '{text}'"))?;
    let values: Vec<String> = values
        .split(',')
        .map(|v| v.trim().to_string())
        .filter(|v| !v.is_empty())
        .collect();
    if key.trim().is_empty() || values.is_empty() {
        return Err(format!(
            "--arch-params needs a non-empty key and at least one value, got '{text}'"
        ));
    }
    Ok((key.trim().to_string(), values))
}

/// Runs a batch of scenario specs through the flattened matrix engine and
/// prints the per-scenario summary table. With `percentiles`, the table
/// gains p50/p95/p99 latency columns read from the streamed per-point
/// metric reports (at each scenario's saturation point). With a `cache`,
/// already-stored points are served without simulating and fresh points are
/// stored back.
fn run_scenario_batch(
    specs: &[ScenarioSpec],
    percentiles: bool,
    cache: Option<&dyn PointCache>,
) -> MatrixResult {
    ensure_registered();
    eprintln!(
        "[repro] running {} scenario(s) through the batch engine ...",
        specs.len()
    );
    let outcome = run_specs_with_cache(specs, cache).unwrap_or_else(|error| {
        eprintln!("{error}");
        std::process::exit(2);
    });
    let mut header = vec![
        "scenario",
        "points",
        "peak BW (Gb/s)",
        "sustainable BW (Gb/s)",
        "EPM@sat (pJ)",
        "latency@sat (cycles)",
    ];
    if percentiles {
        header.extend(["p50 (cyc)", "p95 (cyc)", "p99 (cyc)"]);
    }
    let mut table = Table::new("Scenario batch results", &header);
    for result in &outcome.scenarios {
        let mut row = vec![
            result.spec.id(),
            result.result.points.len().to_string(),
            fmt_f(result.result.peak_bandwidth_gbps(), 1),
            fmt_f(result.result.sustainable_bandwidth_gbps(), 1),
            fmt_f(result.result.packet_energy_at_saturation_pj(), 1),
            fmt_f(result.result.latency_at_saturation(), 1),
        ];
        if percentiles {
            match latency_percentiles_at_saturation(result) {
                Some(ps) => row.extend(ps.iter().map(u64::to_string)),
                None => row.extend(["-".to_string(), "-".to_string(), "-".to_string()]),
            }
        }
        table
            .try_add_row(&row)
            .expect("row built from the header above");
    }
    println!("{table}");
    print_workload_table(&outcome);
    eprintln!(
        "[repro] batch: {} scenario(s), {} point(s) ({} unique after dedup) in {:.2}s",
        outcome.scenarios.len(),
        outcome.total_points,
        outcome.unique_points,
        outcome.wall_clock_seconds
    );
    if cache.is_some() {
        eprintln!(
            "[repro] cache: {} hit(s), {} miss(es), {} stored",
            outcome.cache.hits, outcome.cache.misses, outcome.cache.stored
        );
    }
    outcome
}

/// Prints the closed-loop summary for any workload scenarios in the batch:
/// DAG-drain status, makespan, flow-completion-time percentiles and the
/// per-collective makespan breakdown, read from the single point's metric
/// report.
fn print_workload_table(outcome: &MatrixResult) {
    let closed: Vec<_> = outcome
        .scenarios
        .iter()
        .filter(|result| result.spec.workload.is_some())
        .collect();
    if closed.is_empty() {
        return;
    }
    let mut table = Table::new(
        "Closed-loop workload results",
        &[
            "scenario",
            "flows",
            "drained",
            "makespan (cyc)",
            "FCT p50",
            "FCT p95",
            "FCT p99",
            "collectives",
        ],
    );
    for result in &closed {
        let Some(point) = result.result.points.first() else {
            continue;
        };
        let metrics = &point.metrics;
        let fct = metrics.histogram("flow_completion_cycles");
        let percentile = |p: f64| {
            fct.and_then(|sketch| sketch.percentile(p))
                .map_or_else(|| "-".to_string(), |v| v.to_string())
        };
        let collectives = metrics
            .family("collective_makespan_cycles")
            .map(|family| {
                family
                    .iter()
                    .map(|(label, value)| match value {
                        MetricValue::Gauge(span) => format!("{label}={span:.0}"),
                        other => format!("{label}={other:?}"),
                    })
                    .collect::<Vec<_>>()
                    .join(" ")
            })
            .unwrap_or_default();
        let row = vec![
            result.spec.id(),
            metrics
                .counter("flows_total")
                .map_or_else(|| "-".to_string(), |v| v.to_string()),
            if metrics.gauge("workload_drained") == Some(1.0) {
                "yes".to_string()
            } else {
                "NO (hit cycle cap)".to_string()
            },
            metrics
                .gauge("workload_makespan_cycles")
                .map_or_else(|| "-".to_string(), |v| format!("{v:.0}")),
            percentile(50.0),
            percentile(95.0),
            percentile(99.0),
            collectives,
        ];
        table
            .try_add_row(&row)
            .expect("row built from the header above");
    }
    println!("{table}");
}

/// Measures the result cache end-to-end for `BENCH_sweep.json`: runs the
/// default quick matrix twice against a fresh temporary store — cold
/// (everything simulated and stored) and warm (every point served from the
/// cache) — asserting that the warm outcome is bitwise-identical and that
/// both rendered documents (matrix JSON and JSONL metric stream) match
/// byte-for-byte. Returns `(cold_seconds, warm_seconds, cached_points)`.
///
/// Always quick-effort, independent of the CLI flag: the measurement gates
/// on the *ratio* (CI requires warm ≥ 5x faster), not on absolute time.
fn run_cache_warm_measurement() -> (f64, f64, usize) {
    let specs = default_matrix(EffortLevel::Quick, &[], &[], &[]).specs();
    let dir = std::env::temp_dir().join(format!("pnoc-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = ResultStore::open(&dir).unwrap_or_else(|e| {
        eprintln!("cannot open cache dir {}: {e}", dir.display());
        std::process::exit(1);
    });
    eprintln!(
        "[repro] cache cold/warm: quick matrix, {} scenario(s) ...",
        specs.len()
    );
    let run = |label: &str| -> (MatrixResult, f64) {
        let started = Instant::now();
        let outcome = run_specs_with_cache(&specs, Some(&store)).unwrap_or_else(|error| {
            eprintln!("{label} cache run failed: {error}");
            std::process::exit(2);
        });
        (outcome, started.elapsed().as_secs_f64())
    };
    let (cold, cold_seconds) = run("cold");
    assert_eq!(cold.cache.hits, 0, "cold run hit a freshly created cache");
    let (warm, warm_seconds) = run("warm");
    assert_eq!(warm.cache.misses, 0, "warm run missed the cache");
    assert_eq!(
        warm.cache.hits, warm.unique_points,
        "warm run did not serve every unique point from the cache"
    );
    assert!(
        cold.bitwise_eq(&warm),
        "cache round-trip changed simulation results"
    );
    let render_rows = |outcome: &MatrixResult| -> Vec<u8> {
        let mut sink = JsonlSink::new(Vec::new());
        outcome
            .write_metrics(&mut sink)
            .expect("rendering into memory cannot fail");
        sink.into_inner()
    };
    assert_eq!(
        matrix_json(&cold).render(),
        matrix_json(&warm).render(),
        "matrix documents differ between cold and warm runs"
    );
    assert_eq!(
        render_rows(&cold),
        render_rows(&warm),
        "metric streams differ between cold and warm runs"
    );
    eprintln!(
        "[repro]   cache: cold {cold_seconds:.2}s, warm {warm_seconds:.2}s ({:.1}x), \
         {} point(s) served warm",
        cold_seconds / warm_seconds.max(1e-9),
        warm.cache.hits
    );
    let _ = std::fs::remove_dir_all(&dir);
    (cold_seconds, warm_seconds, warm.cache.hits)
}

/// Measures what reusing the persistent executor pool buys over the old
/// spawn-per-call dispatch: the same stream of small deterministic batches
/// is timed once on the persistent pool (`rayon::par_map_slice`) and once
/// on the preserved spawn-per-call reference path, at a forced worker count
/// of 4 so the comparison is apples-to-apples on any host (the spawn path
/// pays 4 thread spawns per batch; the pool pays condvar wakeups). Returns
/// `(persistent_seconds, spawn_per_call_seconds)`; the caller restores the
/// thread override.
fn run_executor_reuse_measurement() -> (f64, f64) {
    const BATCHES: usize = 200;
    const ITEMS: usize = 64;
    const SPIN_ROUNDS: u64 = 2000;
    // Deterministic splitmix64 spin: enough work per item that a batch is
    // real, small enough that per-batch dispatch overhead dominates the
    // spawn-per-call path.
    let work = |&seed: &u64| -> u64 {
        let mut z = seed;
        for _ in 0..SPIN_ROUNDS {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
        }
        z
    };
    rayon::set_thread_count(4);
    let _ = rayon::warm_up();
    let items: Vec<u64> = (0..ITEMS as u64).collect();
    let mut persistent_check = 0u64;
    let persistent_started = Instant::now();
    for _ in 0..BATCHES {
        for value in rayon::par_map_slice(&items, work) {
            persistent_check = persistent_check.wrapping_add(value);
        }
    }
    let persistent_seconds = persistent_started.elapsed().as_secs_f64();
    let mut spawn_check = 0u64;
    let spawn_started = Instant::now();
    for _ in 0..BATCHES {
        for value in rayon::par_map_slice_spawn_per_call(&items, work) {
            spawn_check = spawn_check.wrapping_add(value);
        }
    }
    let spawn_seconds = spawn_started.elapsed().as_secs_f64();
    assert_eq!(
        persistent_check, spawn_check,
        "executor dispatch paths disagree on results"
    );
    eprintln!(
        "[repro]   executor reuse: persistent {persistent_seconds:.3}s, \
         spawn-per-call {spawn_seconds:.3}s ({:.2}x) over {BATCHES} batches",
        spawn_seconds / persistent_seconds.max(1e-9)
    );
    (persistent_seconds, spawn_seconds)
}

/// Times sequential vs parallel saturation sweeps for every registered
/// architecture on the paper-scale load ladder and writes the results as
/// machine-readable JSON, so future changes can track the performance
/// trajectory. Also asserts, on every run, that the parallel sweep is
/// bitwise-identical to the sequential one.
///
/// Beyond the whole-ladder timings, the report carries per-ladder-point
/// sequential wall clocks (the lowest-load point is where idle-cycle gating
/// pays off most) and a worker-thread scaling curve (1/2/4/8 threads on the
/// d-HetPNoC ladder). `thread_override` is the `--threads` value (0 = none);
/// the scaling curve restores it when done.
fn run_bench_sweep(effort: EffortLevel, path: &str, thread_override: usize) {
    ensure_registered();
    let kind = TrafficKind::named("skewed-3");
    let set = BandwidthSet::Set1;
    let config = effort.config(set);
    let loads = EffortLevel::Paper.load_ladder(&config);
    // The worker count the parallel sweeps below actually use: the --threads
    // override, then RAYON_NUM_THREADS, then the detected parallelism —
    // capped at the number of ladder points.
    let threads = rayon::current_thread_count(loads.len());
    // Spawn the pool's workers up front so worker startup is reported as its
    // own number instead of being smeared into the first parallel sweep.
    let pool_startup_seconds = rayon::warm_up();
    eprintln!("[repro] pool startup {pool_startup_seconds:.4}s ({threads} worker(s))");
    let mut entries = Vec::new();
    for architecture in Architecture::all() {
        eprintln!(
            "[repro] bench-sweep {} ({} points) ...",
            architecture.name(),
            loads.len()
        );
        let scenario = ScenarioSpec::new(architecture.name(), kind.name())
            .with_bandwidth_set(set)
            .with_effort(effort)
            .with_ladder(loads.clone())
            .resolve()
            .unwrap_or_else(|error| panic!("{error}"));
        let sequential = scenario.run_with_mode(SweepMode::Sequential);
        let parallel = scenario.run_with_mode(SweepMode::Parallel);
        assert!(
            sequential.bitwise_eq(&parallel),
            "parallel sweep diverged from the sequential sweep for '{}'",
            architecture.name()
        );
        let sequential_seconds = sequential.wall_clock_seconds;
        let parallel_seconds = parallel.wall_clock_seconds;
        // Per-point sequential cost: one single-load scenario per ladder
        // point, so the low-load end (where switch gating leaves almost
        // nothing to step) is visible instead of being averaged away.
        let mut point_seconds = Vec::with_capacity(loads.len());
        for &load in &loads {
            let point = ScenarioSpec::new(architecture.name(), kind.name())
                .with_bandwidth_set(set)
                .with_effort(effort)
                .with_ladder(vec![load])
                .resolve()
                .unwrap_or_else(|error| panic!("{error}"));
            point_seconds.push(
                point
                    .run_with_mode(SweepMode::Sequential)
                    .wall_clock_seconds,
            );
        }
        eprintln!(
            "[repro]   sequential {sequential_seconds:.2}s, parallel {parallel_seconds:.2}s \
             (speedup {:.2}x), lowest point {:.3}s, peak {:.1} Gb/s",
            sequential_seconds / parallel_seconds.max(1e-9),
            point_seconds.first().copied().unwrap_or(0.0),
            parallel.result.peak_bandwidth_gbps()
        );
        entries.push(Json::obj(vec![
            ("architecture", Json::str(architecture.name())),
            ("label", Json::str(architecture.label())),
            ("sequential_seconds", Json::Num(sequential_seconds)),
            ("parallel_seconds", Json::Num(parallel_seconds)),
            (
                "parallel_speedup",
                Json::Num(sequential_seconds / parallel_seconds.max(1e-9)),
            ),
            (
                "lowest_load_point_seconds",
                Json::Num(point_seconds.first().copied().unwrap_or(0.0)),
            ),
            (
                "ladder_point_seconds",
                Json::Arr(point_seconds.iter().map(|&s| Json::Num(s)).collect()),
            ),
            (
                "peak_bandwidth_gbps",
                Json::Num(parallel.result.peak_bandwidth_gbps()),
            ),
            (
                "sustainable_bandwidth_gbps",
                Json::Num(parallel.result.sustainable_bandwidth_gbps()),
            ),
            ("sweep_points", Json::Num(loads.len() as f64)),
        ]));
    }
    // Worker-thread scaling curve: the same d-HetPNoC ladder swept in
    // parallel mode at forced thread counts. Results are asserted bitwise
    // against the 1-thread run, so the curve doubles as a determinism check.
    let scaling_scenario = ScenarioSpec::new("d-hetpnoc", kind.name())
        .with_bandwidth_set(set)
        .with_effort(effort)
        .with_ladder(loads.clone())
        .resolve()
        .unwrap_or_else(|error| panic!("{error}"));
    let mut scaling = Vec::new();
    let mut baseline: Option<(f64, pnoc_sim::scenario::ScenarioResult)> = None;
    for count in [1usize, 2, 4, 8] {
        rayon::set_thread_count(count);
        let run = scaling_scenario.run_with_mode(SweepMode::Parallel);
        let seconds = run.wall_clock_seconds;
        let speedup = match &baseline {
            None => 1.0,
            Some((one_thread_seconds, reference)) => {
                assert!(
                    reference.bitwise_eq(&run),
                    "thread count {count} changed the sweep results"
                );
                one_thread_seconds / seconds.max(1e-9)
            }
        };
        eprintln!("[repro]   scaling: {count} thread(s) {seconds:.2}s ({speedup:.2}x vs 1)");
        scaling.push(Json::obj(vec![
            ("threads", Json::Num(count as f64)),
            ("seconds", Json::Num(seconds)),
            ("speedup_vs_1_thread", Json::Num(speedup)),
        ]));
        if baseline.is_none() {
            baseline = Some((seconds, run));
        }
    }
    let (executor_persistent_seconds, executor_spawn_seconds) = run_executor_reuse_measurement();
    rayon::set_thread_count(thread_override);
    let (cache_cold_seconds, cache_warm_seconds, cache_points) = run_cache_warm_measurement();
    let doc = Json::obj(vec![
        ("generated_by", Json::str("repro --bench-sweep")),
        ("effort", Json::str(effort.label())),
        ("bandwidth_set", Json::str(set.label())),
        ("traffic", Json::str(kind.label())),
        ("threads", Json::Num(threads as f64)),
        ("pool_startup_seconds", Json::Num(pool_startup_seconds)),
        ("architectures", Json::Arr(entries)),
        ("thread_scaling", Json::Arr(scaling)),
        (
            "executor_persistent_seconds",
            Json::Num(executor_persistent_seconds),
        ),
        (
            "executor_spawn_per_call_seconds",
            Json::Num(executor_spawn_seconds),
        ),
        (
            "executor_reuse_speedup",
            Json::Num(executor_spawn_seconds / executor_persistent_seconds.max(1e-9)),
        ),
        ("cache_cold_seconds", Json::Num(cache_cold_seconds)),
        ("cache_warm_seconds", Json::Num(cache_warm_seconds)),
        (
            "cache_warm_speedup",
            Json::Num(cache_cold_seconds / cache_warm_seconds.max(1e-9)),
        ),
        ("cache_points", Json::Num(cache_points as f64)),
    ]);
    write_file(path, &(doc.render() + "\n"));
    eprintln!("[repro] wrote {path}");
}

/// The scenario batch of `--cross-engine-check`: every registered
/// architecture on an open-loop ladder, plus closed-loop collective
/// workloads, so both `run_to_completion_with` and `run_until_with` paths
/// are exercised under both executors.
fn cross_engine_specs(effort: EffortLevel) -> Vec<ScenarioSpec> {
    ensure_registered();
    let mut specs = Vec::new();
    for architecture in Architecture::all() {
        specs.push(
            ScenarioSpec::new(architecture.name(), "skewed-3")
                .with_bandwidth_set(BandwidthSet::Set1)
                .with_effort(effort),
        );
    }
    for workload in ["allreduce:8", "incast:16"] {
        specs.push(ScenarioSpec::closed_loop("d-hetpnoc", workload).with_effort(effort));
        specs.push(ScenarioSpec::closed_loop("firefly", workload).with_effort(effort));
    }
    specs
}

/// Runs the cross-engine determinism gate: the full check batch once under
/// the per-cycle reference executor and once under the event-driven
/// scheduler, asserting bitwise-identical results and byte-identical
/// rendered metric streams. The event-driven metrics are written to `path`
/// as the CI artifact.
fn run_cross_engine_check(effort: EffortLevel, path: &str) {
    let specs = cross_engine_specs(effort);
    eprintln!(
        "[repro] cross-engine check: {} scenario(s) under both executors ...",
        specs.len()
    );
    pnoc_sim::engine::set_event_driven(false);
    let started = Instant::now();
    let per_cycle = run_specs(&specs).unwrap_or_else(|error| {
        pnoc_sim::engine::set_event_driven(true);
        eprintln!("{error}");
        std::process::exit(2);
    });
    let per_cycle_seconds = started.elapsed().as_secs_f64();
    pnoc_sim::engine::set_event_driven(true);
    let started = Instant::now();
    let event = run_specs(&specs).unwrap_or_else(|error| {
        eprintln!("{error}");
        std::process::exit(2);
    });
    let event_seconds = started.elapsed().as_secs_f64();
    if !per_cycle.bitwise_eq(&event) {
        eprintln!("::error::event-driven engine diverged from the per-cycle reference executor");
        std::process::exit(1);
    }
    let render = |outcome: &MatrixResult| -> Vec<u8> {
        let mut bytes = Vec::new();
        outcome
            .write_metrics(&mut JsonlSink::new(&mut bytes))
            .unwrap_or_else(|e| {
                eprintln!("cannot render metrics: {e}");
                std::process::exit(1);
            });
        bytes
    };
    let per_cycle_bytes = render(&per_cycle);
    let event_bytes = render(&event);
    if per_cycle_bytes != event_bytes {
        eprintln!("::error::metric streams differ between executors (results matched)");
        std::process::exit(1);
    }
    std::fs::write(path, &event_bytes).unwrap_or_else(|e| {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(1);
    });
    eprintln!(
        "[repro] cross-engine check passed: {} scenario(s) byte-identical \
         (per-cycle {per_cycle_seconds:.2}s, event-driven {event_seconds:.2}s); wrote {path}",
        specs.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = EffortLevel::Paper;
    let mut names: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut bench_sweep_path: Option<String> = None;
    let mut cross_engine_path: Option<String> = None;
    let mut thread_override: usize = 0;
    let mut matrix_path: Option<String> = None;
    let mut dump_path: Option<String> = None;
    let mut batch_json_path: Option<String> = None;
    let mut scenario_args: Vec<String> = Vec::new();
    let mut workload_args: Vec<String> = Vec::new();
    let mut describe_args: Vec<String> = Vec::new();
    let mut arch_args: Vec<String> = Vec::new();
    let mut param_axes: Vec<(String, Vec<String>)> = Vec::new();
    let mut fault_args: Vec<String> = Vec::new();
    let mut from_paths: Vec<String> = Vec::new();
    let mut metrics_path: Option<String> = None;
    let mut metrics_format = MetricsFormat::Jsonl;
    let mut percentiles = false;
    let mut cache_dir: Option<String> = None;
    let mut no_cache = false;
    let mut cache_max_bytes: Option<u64> = None;
    let mut cache_compact = false;
    let mut serve_addr: Option<String> = None;
    let mut serve_requests: Option<u64> = None;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => effort = EffortLevel::Quick,
            "--paper" => effort = EffortLevel::Paper,
            "--list" => {
                for name in ALL_EXPERIMENTS {
                    println!("{name}");
                }
                return;
            }
            "--list-architectures" => {
                ensure_registered();
                for name in pnoc_sim::registry::registered_architectures() {
                    let params = pnoc_sim::registry::lookup_architecture(&name)
                        .map(|b| b.param_schema().len())
                        .unwrap_or(0);
                    let plural = if params == 1 { "" } else { "s" };
                    println!("{name} ({params} parameter{plural})");
                }
                return;
            }
            "--describe-arch" => match iter.next() {
                Some(name) => describe_args.push(name),
                None => {
                    eprintln!("--describe-arch requires an architecture name");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--describe-arch=") => {
                describe_args.push(other["--describe-arch=".len()..].to_string());
            }
            "--arch" => match iter.next() {
                Some(spec) => arch_args.push(spec),
                None => {
                    eprintln!("--arch requires NAME[{{key=value,...}}]");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--arch=") => {
                arch_args.push(other["--arch=".len()..].to_string());
            }
            "--arch-params" => match iter.next().as_deref().map(parse_param_axis) {
                Some(Ok(axis)) => param_axes.push(axis),
                Some(Err(message)) => {
                    eprintln!("{message}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--arch-params requires KEY=V1[,V2,...]");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--arch-params=") => {
                match parse_param_axis(&other["--arch-params=".len()..]) {
                    Ok(axis) => param_axes.push(axis),
                    Err(message) => {
                        eprintln!("{message}");
                        std::process::exit(2);
                    }
                }
            }
            "--faults" => match iter.next() {
                Some(plan) => fault_args.push(plan),
                None => {
                    eprintln!("--faults requires a preset name or plan text (try --list-faults)");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--faults=") => {
                fault_args.push(other["--faults=".len()..].to_string());
            }
            "--list-faults" => {
                list_faults();
                return;
            }
            "--list-traffic" => {
                for name in pnoc_traffic::factory::registered_traffic_patterns() {
                    println!("{name}");
                }
                return;
            }
            "--list-workloads" => {
                for name in pnoc_workload::registry::registered_workloads() {
                    println!("{name}");
                }
                return;
            }
            "--json" => {
                json_path = iter.next();
                if json_path.is_none() {
                    eprintln!("--json requires a file path");
                    std::process::exit(2);
                }
            }
            "--scenario" => match iter.next() {
                Some(text) => scenario_args.push(text),
                None => {
                    eprintln!("--scenario requires ARCH:TRAFFIC[:SET[:EFFORT]]");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--scenario=") => {
                scenario_args.push(other["--scenario=".len()..].to_string());
            }
            "--workload" => match iter.next() {
                Some(text) => workload_args.push(text),
                None => {
                    eprintln!("--workload requires NAME[:SIZE] (try --list-workloads)");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--workload=") => {
                workload_args.push(other["--workload=".len()..].to_string());
            }
            "--batch-json" => match iter.next() {
                Some(path) => batch_json_path = Some(path),
                None => {
                    eprintln!("--batch-json requires a file path");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--batch-json=") => {
                batch_json_path = Some(other["--batch-json=".len()..].to_string());
            }
            "--matrix" => matrix_path = Some("MATRIX_sweep.json".to_string()),
            other if other.starts_with("--matrix=") => {
                matrix_path = Some(other["--matrix=".len()..].to_string());
            }
            "--dump-scenarios" => match iter.next() {
                Some(path) => dump_path = Some(path),
                None => {
                    eprintln!("--dump-scenarios requires a file path");
                    std::process::exit(2);
                }
            },
            "--from-scenarios" => match iter.next() {
                Some(path) => from_paths.push(path),
                None => {
                    eprintln!("--from-scenarios requires a file path");
                    std::process::exit(2);
                }
            },
            "--metrics" => match iter.next() {
                Some(path) => metrics_path = Some(path),
                None => {
                    eprintln!("--metrics requires a file path");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--metrics=") => {
                metrics_path = Some(other["--metrics=".len()..].to_string());
            }
            "--metrics-format" => {
                let format = iter.next().and_then(|f| MetricsFormat::parse(&f));
                match format {
                    Some(f) => metrics_format = f,
                    None => {
                        eprintln!("--metrics-format requires 'jsonl' or 'csv'");
                        std::process::exit(2);
                    }
                }
            }
            other if other.starts_with("--metrics-format=") => {
                match MetricsFormat::parse(&other["--metrics-format=".len()..]) {
                    Some(f) => metrics_format = f,
                    None => {
                        eprintln!("--metrics-format requires 'jsonl' or 'csv'");
                        std::process::exit(2);
                    }
                }
            }
            "--percentiles" => percentiles = true,
            "--cache-dir" => match iter.next() {
                Some(dir) => cache_dir = Some(dir),
                None => {
                    eprintln!("--cache-dir requires a directory path");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--cache-dir=") => {
                cache_dir = Some(other["--cache-dir=".len()..].to_string());
            }
            "--no-cache" => no_cache = true,
            "--cache-max-bytes" => match iter.next().as_deref().map(parse_byte_budget) {
                Some(Ok(n)) => cache_max_bytes = Some(n),
                Some(Err(message)) => {
                    eprintln!("{message}");
                    std::process::exit(2);
                }
                None => {
                    eprintln!("--cache-max-bytes requires a byte budget (e.g. 64m)");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--cache-max-bytes=") => {
                match parse_byte_budget(&other["--cache-max-bytes=".len()..]) {
                    Ok(n) => cache_max_bytes = Some(n),
                    Err(message) => {
                        eprintln!("{message}");
                        std::process::exit(2);
                    }
                }
            }
            "--cache-compact" => cache_compact = true,
            "--serve" => match iter.next() {
                Some(addr) => serve_addr = Some(addr),
                None => {
                    eprintln!("--serve requires a listen address (e.g. 127.0.0.1:9119)");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--serve=") => {
                serve_addr = Some(other["--serve=".len()..].to_string());
            }
            "--serve-requests" => match iter.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(n) if n > 0 => serve_requests = Some(n),
                _ => {
                    eprintln!("--serve-requests requires a positive request count");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--serve-requests=") => {
                match other["--serve-requests=".len()..].parse::<u64>() {
                    Ok(n) if n > 0 => serve_requests = Some(n),
                    _ => {
                        eprintln!("--serve-requests requires a positive request count");
                        std::process::exit(2);
                    }
                }
            }
            "--bench-sweep" => bench_sweep_path = Some("BENCH_sweep.json".to_string()),
            other if other.starts_with("--bench-sweep=") => {
                bench_sweep_path = Some(other["--bench-sweep=".len()..].to_string());
            }
            "--cross-engine-check" => {
                cross_engine_path = Some("CROSS_ENGINE_metrics.jsonl".to_string());
            }
            other if other.starts_with("--cross-engine-check=") => {
                cross_engine_path = Some(other["--cross-engine-check=".len()..].to_string());
            }
            "--threads" => match iter.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => thread_override = n,
                _ => {
                    eprintln!("--threads requires a positive worker count");
                    std::process::exit(2);
                }
            },
            other if other.starts_with("--threads=") => {
                match other["--threads=".len()..].parse::<usize>() {
                    Ok(n) if n > 0 => thread_override = n,
                    _ => {
                        eprintln!("--threads requires a positive worker count");
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!(
                    "usage: repro [--quick|--paper] [--json FILE] [--bench-sweep[=FILE]]\n\
                     \x20            [--cross-engine-check[=FILE]] [--threads N]\n\
                     \x20            [--scenario ARCH[{{k=v,...}}]:TRAFFIC[:SET[:EFFORT]]]...\n\
                     \x20            [--matrix[=FILE]] [--arch SPEC]... [--arch-params K=V1,V2]...\n\
                     \x20            [--workload NAME[:SIZE]]... [--batch-json FILE]\n\
                     \x20            [--faults PLAN]... [--list-faults]\n\
                     \x20            [--metrics FILE] [--metrics-format jsonl|csv] [--percentiles]\n\
                     \x20            [--cache-dir DIR] [--no-cache]\n\
                     \x20            [--cache-max-bytes N[k|m|g]] [--cache-compact]\n\
                     \x20            [--serve ADDR] [--serve-requests N]\n\
                     \x20            [--dump-scenarios FILE] [--from-scenarios FILE]\n\
                     \x20            [--describe-arch NAME] [--list-architectures]\n\
                     \x20            [--list-traffic] [--list-workloads] [EXPERIMENT ...]\n\
                     experiments: {}",
                    ALL_EXPERIMENTS.join(", ")
                );
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag '{other}', try --help");
                std::process::exit(2);
            }
            other => names.push(other.to_string()),
        }
    }

    // Apply the worker-count override before any parallel sweep runs; 0
    // (no --threads flag) keeps RAYON_NUM_THREADS / detected parallelism.
    rayon::set_thread_count(thread_override);

    if !describe_args.is_empty() {
        for name in &describe_args {
            describe_architecture(name);
        }
        return;
    }

    // The result cache is strictly opt-in: no --cache-dir (or an explicit
    // --no-cache) means every point simulates, exactly as before PR 7.
    let store: Option<ResultStore> = match (&cache_dir, no_cache) {
        (Some(dir), false) => {
            let store = ResultStore::open(dir).unwrap_or_else(|error| {
                eprintln!("cannot open cache directory {dir}: {error}");
                std::process::exit(1);
            });
            eprintln!(
                "[repro] result cache at {dir} ({} entr{})",
                store.entry_count(),
                if store.entry_count() == 1 { "y" } else { "ies" }
            );
            Some(store)
        }
        _ => None,
    };

    // Cache maintenance runs right after opening, before any lookups:
    // compaction first (repairs the index), then LRU eviction to budget.
    if cache_compact || cache_max_bytes.is_some() {
        let Some(store) = &store else {
            eprintln!(
                "--cache-compact / --cache-max-bytes require --cache-dir (and no --no-cache)"
            );
            std::process::exit(2);
        };
        if cache_compact {
            match store.compact() {
                Ok(report) => {
                    eprintln!(
                    "[repro] cache compacted: {} live entr{}, {} dangling index entr{} dropped, \
                     {} stray file(s) removed",
                    report.live_entries,
                    if report.live_entries == 1 { "y" } else { "ies" },
                    report.dropped_index_entries,
                    if report.dropped_index_entries == 1 { "y" } else { "ies" },
                    report.removed_files
                )
                }
                Err(error) => {
                    eprintln!("cache compaction failed: {error}");
                    std::process::exit(1);
                }
            }
        }
        if let Some(budget) = cache_max_bytes {
            match store.evict_to_budget(budget) {
                Ok(report) => eprintln!(
                    "[repro] cache eviction: {} of {} entr{} evicted, {} -> {} bytes \
                     (budget {budget})",
                    report.evicted,
                    report.scanned,
                    if report.scanned == 1 { "y" } else { "ies" },
                    report.bytes_before,
                    report.bytes_after
                ),
                Err(error) => {
                    eprintln!("cache eviction failed: {error}");
                    std::process::exit(1);
                }
            }
        }
        // Maintenance-only invocations stop here instead of falling through
        // to the full experiment suite.
        let has_work = !names.is_empty()
            || !scenario_args.is_empty()
            || !workload_args.is_empty()
            || !arch_args.is_empty()
            || !from_paths.is_empty()
            || matrix_path.is_some()
            || batch_json_path.is_some()
            || bench_sweep_path.is_some()
            || cross_engine_path.is_some()
            || serve_addr.is_some();
        if !has_work {
            return;
        }
    }
    let cache: Option<&dyn PointCache> = store.as_ref().map(|s| s as &dyn PointCache);

    if let Some(addr) = &serve_addr {
        let listener = std::net::TcpListener::bind(addr).unwrap_or_else(|error| {
            eprintln!("cannot listen on {addr}: {error}");
            std::process::exit(1);
        });
        let local = listener
            .local_addr()
            .expect("bound listener has an address");
        eprintln!(
            "[repro] serving on http://{local} (POST /run, GET /health, GET /stats){}",
            match serve_requests {
                Some(n) => format!(", exiting after {n} request(s)"),
                None => String::new(),
            }
        );
        let report = serve(
            &listener,
            &ServerOptions {
                cache,
                max_requests: serve_requests,
                quiet: false,
                max_in_flight: 0,
                io_timeout: None,
            },
        )
        .unwrap_or_else(|error| {
            eprintln!("server failed: {error}");
            std::process::exit(1);
        });
        eprintln!(
            "[repro] served {} request(s): {} run(s), {} point(s), \
             {} cache hit(s), {} cache miss(es), {} rejected",
            report.requests,
            report.runs,
            report.points,
            report.cache_hits,
            report.cache_misses,
            report.rejected
        );
        return;
    }

    // --arch and --arch-params only feed the matrix (or a dumped matrix) and
    // the workload batch; reject combinations where they would be silently
    // ignored and the user's sweep would quietly run at defaults.
    let builds_matrix = matrix_path.is_some() || dump_path.is_some();
    if !param_axes.is_empty() && !builds_matrix {
        eprintln!(
            "--arch-params adds a matrix axis; combine it with --matrix or --dump-scenarios \
             (for a single run, use --scenario 'ARCH{{key=value,...}}:TRAFFIC')"
        );
        std::process::exit(2);
    }
    if !arch_args.is_empty() && !builds_matrix && workload_args.is_empty() {
        eprintln!(
            "--arch selects architectures for --workload, --matrix or --dump-scenarios; \
             none of those was given (for a single run, use --scenario)"
        );
        std::process::exit(2);
    }
    if !fault_args.is_empty()
        && !builds_matrix
        && scenario_args.is_empty()
        && workload_args.is_empty()
    {
        eprintln!(
            "--faults injects a fault plan into scenario runs; combine it with --scenario, \
             --workload, --matrix or --dump-scenarios (try --list-faults for the catalogue)"
        );
        std::process::exit(2);
    }

    // Assemble the scenario batch: explicit --scenario shorthands, specs
    // loaded from files, and (with --matrix) the default evaluation matrix.
    let mut specs: Vec<ScenarioSpec> = Vec::new();
    // Crosses one assembled spec with every --faults plan (a spec that pinned
    // its own plan via a '#faults=' suffix keeps it and is not crossed).
    let cross_faults = |specs: &mut Vec<ScenarioSpec>, spec: ScenarioSpec| {
        if fault_args.is_empty() || spec.faults.is_some() {
            specs.push(spec);
        } else {
            for plan in &fault_args {
                specs.push(spec.clone().with_faults(plan.clone()));
            }
        }
    };
    for text in &scenario_args {
        let mut spec = ScenarioSpec::parse_shorthand(text).unwrap_or_else(|error| {
            eprintln!("{error}");
            std::process::exit(2);
        });
        // The shorthand's effort defaults to the CLI-wide flag unless the
        // 4th `:`-separated part pinned it explicitly.
        if text.split(':').count() < 4 {
            spec = spec.with_effort(effort);
        }
        cross_faults(&mut specs, spec);
    }
    // Workloads run on the --arch spec(s) when given (crossing every
    // workload with every architecture), on d-hetpnoc otherwise.
    let workload_archs: Vec<String> = if arch_args.is_empty() {
        vec![WORKLOAD_DEFAULT_ARCHITECTURE.to_string()]
    } else {
        arch_args.clone()
    };
    for reference in &workload_args {
        for arch in &workload_archs {
            let (name, params) = ArchParams::split_spec(arch).unwrap_or_else(|error| {
                eprintln!("{error}");
                std::process::exit(2);
            });
            cross_faults(
                &mut specs,
                ScenarioSpec::closed_loop(name, reference.clone())
                    .with_arch_params(params)
                    .with_effort(effort),
            );
        }
    }
    for path in &from_paths {
        let loaded = parse_scenarios(&read_file(path)).unwrap_or_else(|error| {
            eprintln!("{path}: {error}");
            std::process::exit(2);
        });
        eprintln!("[repro] loaded {} scenario(s) from {path}", loaded.len());
        specs.extend(loaded);
    }
    if matrix_path.is_some() {
        specs.extend(default_matrix(effort, &arch_args, &param_axes, &fault_args).specs());
    }

    if dump_path.is_some() && metrics_path.is_some() {
        eprintln!("--metrics cannot be combined with --dump-scenarios (dumping runs nothing)");
        std::process::exit(2);
    }
    if let Some(path) = &dump_path {
        // Dump instead of running: write the selected batch (or the default
        // matrix when nothing was selected) and skip the scenario runs.
        // Other explicitly requested work — --bench-sweep, named experiments,
        // --json reports — still runs below.
        let dumped = if specs.is_empty() {
            default_matrix(effort, &arch_args, &param_axes, &fault_args).specs()
        } else {
            std::mem::take(&mut specs)
        };
        write_file(path, &render_scenarios(&dumped));
        eprintln!("[repro] wrote {} scenario spec(s) to {path}", dumped.len());
        if names.is_empty()
            && json_path.is_none()
            && bench_sweep_path.is_none()
            && cross_engine_path.is_none()
        {
            return;
        }
    }

    if metrics_path.is_some() && specs.is_empty() {
        eprintln!("--metrics needs a scenario batch (--scenario, --matrix or --from-scenarios)");
        std::process::exit(2);
    }
    let ran_scenarios = if specs.is_empty() {
        false
    } else {
        let outcome = run_scenario_batch(&specs, percentiles, cache);
        if let Some(path) = &matrix_path {
            write_file(path, &(matrix_json(&outcome).render() + "\n"));
            eprintln!("[repro] wrote {path}");
        }
        if let Some(path) = &batch_json_path {
            write_file(path, &(matrix_json(&outcome).render() + "\n"));
            eprintln!("[repro] wrote {path}");
        }
        if let Some(path) = &metrics_path {
            write_metrics_file(&outcome, path, metrics_format);
        }
        true
    };

    if let Some(path) = &cross_engine_path {
        run_cross_engine_check(effort, path);
    }
    if let Some(path) = &bench_sweep_path {
        run_bench_sweep(effort, path, thread_override);
    }
    // Scenario batches, --bench-sweep and --cross-engine-check on their own
    // only run what they name; experiments run too when named explicitly or
    // when a --json report was requested.
    if (ran_scenarios || bench_sweep_path.is_some() || cross_engine_path.is_some())
        && names.is_empty()
        && json_path.is_none()
    {
        return;
    }

    if names.is_empty() {
        names = ALL_EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }
    for name in &names {
        if !ALL_EXPERIMENTS.contains(&name.as_str()) {
            eprintln!(
                "unknown experiment '{name}'; valid experiments: {}",
                ALL_EXPERIMENTS.join(", ")
            );
            std::process::exit(2);
        }
    }

    let mut reports: Vec<ExperimentReport> = Vec::new();
    for name in &names {
        eprintln!("[repro] running {name} ({effort:?}) ...");
        let started = Instant::now();
        let report = run_by_name(name, effort);
        eprintln!(
            "[repro] {name} finished in {:.1}s",
            started.elapsed().as_secs_f64()
        );
        println!("{}", report.render());
        reports.push(report);
    }

    if let Some(path) = json_path {
        write_file(&path, &(reports_json(&reports).render() + "\n"));
        eprintln!("[repro] wrote {path}");
    }
}
