//! Simulation-as-a-service: a std-only, hand-rolled HTTP/1.1 server.
//!
//! `repro --serve ADDR` turns the batch CLI into a long-running service:
//! clients POST a scenario document (the same JSON `repro
//! --from-scenarios` reads, parsed by [`crate::scenario_io`]), the server
//! runs the batch through the shared matrix executor — consulting the
//! result cache first when one is attached, so previously simulated points
//! are answered **without simulating** — and streams the metric rows back
//! as JSONL, byte-identical to what `repro --metrics` would have written
//! for the same specs.
//!
//! The workspace builds offline against vendored shims (`vendor/README.md`),
//! so there is no HTTP library to lean on; the protocol subset here
//! (request line, `Content-Length` bodies, `Connection: close` responses)
//! is deliberately small and fully under test.
//!
//! ## Endpoints
//!
//! | request | response |
//! |---------|----------|
//! | `POST /run` | `200 application/x-ndjson`: one summary object line (scenario/point/cache counts), then one JSONL metric row per point |
//! | `GET /health` | `200 application/json`: status + engine fingerprint |
//! | `GET /stats` | `200 application/json`: lifetime request/point/cache counters |
//!
//! Malformed requests get `400`, unknown paths `404`, other methods `405`;
//! the connection is always closed after one response.

use crate::json::Json;
use crate::runner::ensure_registered;
use crate::scenario_io::parse_scenarios;
use pnoc_sim::metrics::JsonlSink;
use pnoc_sim::scenario::{engine_fingerprint, run_specs_with_cache, PointCache};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};

/// How a server instance runs.
#[derive(Default)]
pub struct ServerOptions<'a> {
    /// The cross-run result cache to consult (hits bypass simulation).
    pub cache: Option<&'a dyn PointCache>,
    /// Stop after this many connections (smoke tests and CI); `None` serves
    /// until the process is killed.
    pub max_requests: Option<u64>,
    /// Suppress per-request stderr logging.
    pub quiet: bool,
}

/// Lifetime counters of one [`serve`] call, also exposed at `GET /stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Connections handled (any method, any outcome).
    pub requests: u64,
    /// Successful `POST /run` batches.
    pub runs: u64,
    /// Sweep points returned across all batches (before deduplication).
    pub points: u64,
    /// Deduplicated points answered from the cache without simulating.
    pub cache_hits: u64,
    /// Deduplicated points that had to be simulated.
    pub cache_misses: u64,
}

/// Serves connections on `listener` until `options.max_requests` connections
/// have been handled (forever when `None`). Connections are handled one at a
/// time: the simulation executor already fans each batch out across the
/// worker pool, so serialized request handling keeps results deterministic
/// without a scheduling story.
///
/// # Errors
///
/// Propagates accept failures; per-connection I/O errors are logged and do
/// not stop the server.
pub fn serve(listener: &TcpListener, options: &ServerOptions<'_>) -> io::Result<ServerReport> {
    ensure_registered();
    let mut report = ServerReport::default();
    while options.max_requests.is_none_or(|max| report.requests < max) {
        let (stream, peer) = listener.accept()?;
        report.requests += 1;
        if let Err(error) = handle_connection(stream, options, &mut report) {
            if !options.quiet {
                eprintln!("[serve] connection from {peer} failed: {error}");
            }
        }
    }
    Ok(report)
}

fn handle_connection(
    stream: TcpStream,
    options: &ServerOptions<'_>,
    report: &mut ServerReport,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err(reason) => {
            return write_response(
                reader.into_inner(),
                400,
                "Bad Request",
                "text/plain",
                &format!("{reason}\n"),
            );
        }
    };
    let (status, reason, content_type, body) =
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/run") => match run_batch(&request.body, options, report) {
                Ok(body) => (200, "OK", "application/x-ndjson", body),
                Err(reason) => (400, "Bad Request", "text/plain", format!("{reason}\n")),
            },
            ("GET", "/health") => (
                200,
                "OK",
                "application/json",
                Json::obj(vec![
                    ("status", Json::str("ok")),
                    ("engine_fingerprint", Json::str(engine_fingerprint())),
                ])
                .render()
                    + "\n",
            ),
            ("GET", "/stats") => (
                200,
                "OK",
                "application/json",
                Json::obj(vec![
                    ("requests", Json::Num(report.requests as f64)),
                    ("runs", Json::Num(report.runs as f64)),
                    ("points", Json::Num(report.points as f64)),
                    ("cache_hits", Json::Num(report.cache_hits as f64)),
                    ("cache_misses", Json::Num(report.cache_misses as f64)),
                ])
                .render()
                    + "\n",
            ),
            ("POST" | "GET", _) => (
                404,
                "Not Found",
                "text/plain",
                "unknown path (use POST /run, GET /health, GET /stats)\n".to_string(),
            ),
            _ => (
                405,
                "Method Not Allowed",
                "text/plain",
                "unsupported method\n".to_string(),
            ),
        };
    if !options.quiet {
        eprintln!(
            "[serve] {} {} -> {status} ({} bytes)",
            request.method,
            request.path,
            body.len()
        );
    }
    write_response(reader.into_inner(), status, reason, content_type, &body)
}

/// Runs one posted scenario document and renders the ndjson response body:
/// a summary line, then the metric rows in deterministic batch order.
fn run_batch(
    body: &str,
    options: &ServerOptions<'_>,
    report: &mut ServerReport,
) -> Result<String, String> {
    let specs = parse_scenarios(body)?;
    if specs.is_empty() {
        return Err("scenario document contains no scenarios".to_string());
    }
    let result = run_specs_with_cache(&specs, options.cache).map_err(|error| error.to_string())?;
    report.runs += 1;
    report.points += result.total_points as u64;
    report.cache_hits += result.cache.hits as u64;
    report.cache_misses += result.cache.misses as u64;

    // Compact one-line summary first — a streaming client learns the batch
    // shape (and whether the cache answered everything) before any row.
    let mut out = format!(
        "{{\"scenarios\":{},\"total_points\":{},\"unique_points\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"simulated\":{}}}\n",
        result.scenarios.len(),
        result.total_points,
        result.unique_points,
        result.cache.hits,
        result.cache.misses,
        result.cache.misses,
    );
    let mut sink = JsonlSink::new(Vec::new());
    result
        .write_metrics(&mut sink)
        .map_err(|error| format!("rendering metric rows failed: {error}"))?;
    out.push_str(std::str::from_utf8(&sink.into_inner()).expect("JSONL rows are UTF-8"));
    Ok(out)
}

struct Request {
    method: String,
    path: String,
    body: String,
}

/// Reads one HTTP/1.1 request (request line, headers, `Content-Length`
/// body). Returns a human-readable reason on anything malformed.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, String> {
    let mut request_line = String::new();
    reader
        .read_line(&mut request_line)
        .map_err(|error| format!("reading request line failed: {error}"))?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(format!("malformed request line '{}'", request_line.trim()));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol '{version}'"));
    }
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|error| format!("reading headers failed: {error}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad Content-Length '{}'", value.trim()))?;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|error| format!("reading {content_length}-byte body failed: {error}"))?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body: String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?,
    })
}

fn write_response(
    mut stream: TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
