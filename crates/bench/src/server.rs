//! Simulation-as-a-service: a std-only, hand-rolled HTTP/1.1 server.
//!
//! `repro --serve ADDR` turns the batch CLI into a long-running service:
//! clients POST a scenario document (the same JSON `repro
//! --from-scenarios` reads, parsed by [`crate::scenario_io`]), the server
//! runs the batch through the shared matrix executor — consulting the
//! result cache first when one is attached, so previously simulated points
//! are answered **without simulating** — and streams the metric rows back
//! as JSONL, byte-identical to what `repro --metrics` would have written
//! for the same specs.
//!
//! Connections are handled **concurrently**: the accept loop runs inside a
//! `pnoc-exec` scope and hands each connection to the persistent executor
//! pool as a job. Per-point determinism (seeds derived only from scenario
//! content) makes every response byte-identical to the single-connection
//! path no matter how requests interleave. Two hardening mechanisms bound
//! the resource envelope:
//!
//! * **per-connection I/O timeouts** — a client that stalls mid-request or
//!   mid-response gets `408` / a dropped connection instead of pinning a
//!   worker forever;
//! * **bounded accept backlog** — beyond `max_in_flight` concurrent
//!   connections the server answers `503` with a JSON body immediately
//!   instead of queueing unboundedly.
//!
//! The workspace builds offline against vendored shims (`vendor/README.md`),
//! so there is no HTTP library to lean on; the protocol subset here
//! (request line, `Content-Length` bodies, `Connection: close` responses)
//! is deliberately small and fully under test.
//!
//! ## Endpoints
//!
//! | request | response |
//! |---------|----------|
//! | `POST /run` | `200 application/x-ndjson`: one summary object line (scenario/point/cache counts), then one JSONL metric row per point |
//! | `GET /health` | `200 application/json`: status + engine fingerprint |
//! | `GET /stats` | `200 application/json`: lifetime request/point/cache counters |
//!
//! Malformed requests get `400`, unknown paths `404`, other methods `405`,
//! stalled requests `408`, over-capacity connections `503`; the connection
//! is always closed after one response.
//!
//! ## Revalidation
//!
//! Every `POST /run` response carries a deterministic `ETag`: the content
//! hash of the resolved scenarios' canonical cache-key material and the
//! engine fingerprint — the exact inputs every point's cache key is built
//! from. The metric rows are a pure function of that material, so a client
//! replaying a scenario document can send the tag back as `If-None-Match`
//! and get `304 Not Modified` with an empty body, **without the server
//! simulating anything** — revalidation is cheaper than even a fully warm
//! cache run. A changed spec or a new engine version changes the tag and
//! the request runs normally.

use crate::json::Json;
use crate::runner::ensure_registered;
use crate::scenario_io::parse_scenarios;
use pnoc_sim::metrics::JsonlSink;
use pnoc_sim::scenario::{engine_fingerprint, run_specs_with_cache, PointCache, ScenarioSpec};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Concurrent connections admitted when [`ServerOptions::max_in_flight`] is
/// left at 0.
pub const DEFAULT_MAX_IN_FLIGHT: usize = 32;

/// Per-connection read/write timeout when [`ServerOptions::io_timeout`] is
/// `None`.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(30);

/// How a server instance runs.
#[derive(Default)]
pub struct ServerOptions<'a> {
    /// The cross-run result cache to consult (hits bypass simulation).
    pub cache: Option<&'a dyn PointCache>,
    /// Stop accepting after this many connections (smoke tests and CI);
    /// `None` serves until the process is killed. Already-accepted
    /// connections are always drained before [`serve`] returns.
    pub max_requests: Option<u64>,
    /// Suppress per-request stderr logging.
    pub quiet: bool,
    /// Bound on concurrently handled connections; connections beyond it are
    /// rejected immediately with `503` + a JSON body. 0 means
    /// [`DEFAULT_MAX_IN_FLIGHT`].
    pub max_in_flight: usize,
    /// Per-connection read/write timeout; `None` means
    /// [`DEFAULT_IO_TIMEOUT`]. A read that times out gets `408`.
    pub io_timeout: Option<Duration>,
}

/// Lifetime counters of one [`serve`] call, also exposed at `GET /stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerReport {
    /// Connections accepted (any method, any outcome, including rejected).
    pub requests: u64,
    /// Successful `POST /run` batches.
    pub runs: u64,
    /// Sweep points returned across all batches (before deduplication).
    pub points: u64,
    /// Deduplicated points answered from the cache without simulating.
    pub cache_hits: u64,
    /// Deduplicated points that had to be simulated.
    pub cache_misses: u64,
    /// Connections rejected with `503` because `max_in_flight` was reached.
    pub rejected: u64,
}

/// Shared counters updated concurrently by connection jobs.
#[derive(Default)]
struct ServerState {
    requests: AtomicU64,
    runs: AtomicU64,
    points: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rejected: AtomicU64,
    in_flight: AtomicUsize,
}

impl ServerState {
    fn snapshot(&self) -> ServerReport {
        ServerReport {
            requests: self.requests.load(Ordering::SeqCst),
            runs: self.runs.load(Ordering::SeqCst),
            points: self.points.load(Ordering::SeqCst),
            cache_hits: self.cache_hits.load(Ordering::SeqCst),
            cache_misses: self.cache_misses.load(Ordering::SeqCst),
            rejected: self.rejected.load(Ordering::SeqCst),
        }
    }
}

/// Serves connections on `listener` until `options.max_requests` connections
/// have been accepted (forever when `None`), handling them **concurrently**
/// as jobs on the persistent executor pool. Responses stay byte-identical
/// to sequential handling because every simulation point is a pure function
/// of its scenario content. All in-flight connections are drained before
/// this returns.
///
/// # Errors
///
/// Propagates accept failures; per-connection I/O errors are logged and do
/// not stop the server.
pub fn serve(listener: &TcpListener, options: &ServerOptions<'_>) -> io::Result<ServerReport> {
    ensure_registered();
    let state = ServerState::default();
    let limit = if options.max_in_flight == 0 {
        DEFAULT_MAX_IN_FLIGHT
    } else {
        options.max_in_flight
    };
    let timeout = options.io_timeout.unwrap_or(DEFAULT_IO_TIMEOUT);
    let state_ref = &state;
    let accept_loop = pnoc_exec::scope(|scope| -> io::Result<()> {
        let mut accepted = 0u64;
        while options.max_requests.is_none_or(|max| accepted < max) {
            let (stream, peer) = listener.accept()?;
            accepted += 1;
            state_ref.requests.fetch_add(1, Ordering::SeqCst);
            // Best-effort: a socket that rejects timeout configuration still
            // gets served, just without the stall bound.
            let _ = stream.set_read_timeout(Some(timeout));
            let _ = stream.set_write_timeout(Some(timeout));
            // Admission control on the accept thread: the slot is taken (or
            // refused) before the next accept, so an over-limit connection
            // can never sneak past a slot that is still being spawned.
            if state_ref.in_flight.fetch_add(1, Ordering::SeqCst) >= limit {
                state_ref.in_flight.fetch_sub(1, Ordering::SeqCst);
                state_ref.rejected.fetch_add(1, Ordering::SeqCst);
                if !options.quiet {
                    eprintln!(
                        "[serve] connection from {peer} rejected: {limit} requests in flight"
                    );
                }
                reject_connection(stream, limit);
                continue;
            }
            scope.spawn(move || {
                let outcome = handle_connection(stream, options, state_ref);
                state_ref.in_flight.fetch_sub(1, Ordering::SeqCst);
                if let Err(error) = outcome {
                    if !options.quiet {
                        eprintln!("[serve] connection from {peer} failed: {error}");
                    }
                }
            });
        }
        Ok(())
    });
    accept_loop?;
    Ok(state.snapshot())
}

/// Answer an over-capacity connection with `503` + a JSON body, off the
/// accept thread. The rejected client's request bytes are still unread;
/// closing a socket with data in its receive queue sends `RST`, which can
/// destroy the response before the client reads it — so after writing we
/// drain to EOF (the client closes once it has the response), bounded by a
/// short timeout and a small byte cap so a misbehaving client cannot pin
/// the thread.
fn reject_connection(mut stream: TcpStream, limit: usize) {
    std::thread::spawn(move || {
        let body = Json::obj(vec![
            ("error", Json::str("server at capacity, retry later")),
            ("max_in_flight", Json::Num(limit as f64)),
        ])
        .render()
            + "\n";
        let _ = stream.set_read_timeout(Some(Duration::from_secs(1)));
        let _ = write_response(
            &mut stream,
            503,
            "Service Unavailable",
            "application/json",
            &body,
        );
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut scratch = [0u8; 4096];
        for _ in 0..16 {
            match stream.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    });
}

fn handle_connection(
    stream: TcpStream,
    options: &ServerOptions<'_>,
    state: &ServerState,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream);
    let request = match read_request(&mut reader) {
        Ok(request) => request,
        Err(failure) => {
            return write_response(
                &mut reader.into_inner(),
                failure.status,
                failure.reason,
                "text/plain",
                &format!("{}\n", failure.message),
            );
        }
    };
    let mut etag: Option<String> = None;
    let (status, reason, content_type, body) =
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/run") => match parse_scenarios(&request.body) {
                Ok(specs) if specs.is_empty() => (
                    400,
                    "Bad Request",
                    "text/plain",
                    "scenario document contains no scenarios\n".to_string(),
                ),
                Ok(specs) => match batch_etag(&specs) {
                    Ok(tag) => {
                        let revalidated = request
                            .if_none_match
                            .as_deref()
                            .is_some_and(|header| etag_matches(header, &tag));
                        etag = Some(tag);
                        if revalidated {
                            // The client's copy is current: answer without
                            // simulating (or even consulting the cache).
                            (304, "Not Modified", "application/x-ndjson", String::new())
                        } else {
                            match run_batch(&specs, options, state) {
                                Ok(body) => (200, "OK", "application/x-ndjson", body),
                                Err(reason) => {
                                    etag = None;
                                    (400, "Bad Request", "text/plain", format!("{reason}\n"))
                                }
                            }
                        }
                    }
                    Err(reason) => (400, "Bad Request", "text/plain", format!("{reason}\n")),
                },
                Err(reason) => (400, "Bad Request", "text/plain", format!("{reason}\n")),
            },
            ("GET", "/health") => (
                200,
                "OK",
                "application/json",
                Json::obj(vec![
                    ("status", Json::str("ok")),
                    ("engine_fingerprint", Json::str(engine_fingerprint())),
                ])
                .render()
                    + "\n",
            ),
            ("GET", "/stats") => (
                200,
                "OK",
                "application/json",
                Json::obj(vec![
                    (
                        "requests",
                        Json::Num(state.requests.load(Ordering::SeqCst) as f64),
                    ),
                    ("runs", Json::Num(state.runs.load(Ordering::SeqCst) as f64)),
                    (
                        "points",
                        Json::Num(state.points.load(Ordering::SeqCst) as f64),
                    ),
                    (
                        "cache_hits",
                        Json::Num(state.cache_hits.load(Ordering::SeqCst) as f64),
                    ),
                    (
                        "cache_misses",
                        Json::Num(state.cache_misses.load(Ordering::SeqCst) as f64),
                    ),
                    (
                        "rejected",
                        Json::Num(state.rejected.load(Ordering::SeqCst) as f64),
                    ),
                    (
                        "in_flight",
                        Json::Num(state.in_flight.load(Ordering::SeqCst) as f64),
                    ),
                ])
                .render()
                    + "\n",
            ),
            ("POST" | "GET", _) => (
                404,
                "Not Found",
                "text/plain",
                "unknown path (use POST /run, GET /health, GET /stats)\n".to_string(),
            ),
            _ => (
                405,
                "Method Not Allowed",
                "text/plain",
                "unsupported method\n".to_string(),
            ),
        };
    if !options.quiet {
        eprintln!(
            "[serve] {} {} -> {status} ({} bytes)",
            request.method,
            request.path,
            body.len()
        );
    }
    let extra: Vec<(&str, &str)> = match &etag {
        Some(tag) => vec![("ETag", tag.as_str())],
        None => Vec::new(),
    };
    write_response_with_headers(
        &mut reader.into_inner(),
        status,
        reason,
        content_type,
        &extra,
        &body,
    )
}

/// The deterministic entity tag of a scenario batch: the [`content_hash`]
/// of every resolved scenario's canonical id plus the engine fingerprint —
/// exactly the material every point cache key is derived from, so the tag
/// changes iff the response's metric rows could. Quoted per HTTP syntax.
/// Resolution failures (unknown names, bad parameters) are reported the
/// same way running the batch would report them.
///
/// [`content_hash`]: pnoc_store::content_hash
fn batch_etag(specs: &[ScenarioSpec]) -> Result<String, String> {
    let mut material = engine_fingerprint();
    for spec in specs {
        let scenario = spec.resolve().map_err(|error| error.to_string())?;
        material.push('\n');
        material.push_str(&scenario.canonical_id());
    }
    Ok(format!("\"{}\"", pnoc_store::content_hash(&material)))
}

/// Whether an `If-None-Match` header value matches `etag`: `*`, or any
/// element of the comma-separated tag list (weak validators compare by
/// their quoted part — byte-identical rows make every match strong here).
fn etag_matches(header: &str, etag: &str) -> bool {
    header.split(',').map(str::trim).any(|candidate| {
        candidate == "*" || candidate == etag || candidate.strip_prefix("W/") == Some(etag)
    })
}

/// Runs one parsed scenario batch and renders the ndjson response body:
/// a summary line, then the metric rows in deterministic batch order.
fn run_batch(
    specs: &[ScenarioSpec],
    options: &ServerOptions<'_>,
    state: &ServerState,
) -> Result<String, String> {
    let result = run_specs_with_cache(specs, options.cache).map_err(|error| error.to_string())?;
    state.runs.fetch_add(1, Ordering::SeqCst);
    state
        .points
        .fetch_add(result.total_points as u64, Ordering::SeqCst);
    state
        .cache_hits
        .fetch_add(result.cache.hits as u64, Ordering::SeqCst);
    state
        .cache_misses
        .fetch_add(result.cache.misses as u64, Ordering::SeqCst);

    // Compact one-line summary first — a streaming client learns the batch
    // shape (and whether the cache answered everything) before any row.
    let mut out = format!(
        "{{\"scenarios\":{},\"total_points\":{},\"unique_points\":{},\
         \"cache_hits\":{},\"cache_misses\":{},\"simulated\":{}}}\n",
        result.scenarios.len(),
        result.total_points,
        result.unique_points,
        result.cache.hits,
        result.cache.misses,
        result.cache.misses,
    );
    let mut sink = JsonlSink::new(Vec::new());
    result
        .write_metrics(&mut sink)
        .map_err(|error| format!("rendering metric rows failed: {error}"))?;
    out.push_str(std::str::from_utf8(&sink.into_inner()).expect("JSONL rows are UTF-8"));
    Ok(out)
}

struct Request {
    method: String,
    path: String,
    body: String,
    /// Raw `If-None-Match` header value, when the client sent one.
    if_none_match: Option<String>,
}

/// Why a request could not be read, mapped to the response to send.
struct RequestFailure {
    status: u16,
    reason: &'static str,
    message: String,
}

impl RequestFailure {
    /// `408` for a stalled client (the read timeout fired), `400` otherwise.
    fn from_io(context: &str, error: &io::Error) -> Self {
        if matches!(
            error.kind(),
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
        ) {
            RequestFailure {
                status: 408,
                reason: "Request Timeout",
                message: format!("{context} timed out"),
            }
        } else {
            RequestFailure {
                status: 400,
                reason: "Bad Request",
                message: format!("{context} failed: {error}"),
            }
        }
    }

    fn malformed(message: String) -> Self {
        RequestFailure {
            status: 400,
            reason: "Bad Request",
            message,
        }
    }
}

/// Reads one HTTP/1.1 request (request line, headers, `Content-Length`
/// body). Returns the response status + reason to send on anything
/// malformed or stalled.
fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, RequestFailure> {
    let mut request_line = String::new();
    reader
        .read_line(&mut request_line)
        .map_err(|error| RequestFailure::from_io("reading request line", &error))?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(RequestFailure::malformed(format!(
            "malformed request line '{}'",
            request_line.trim()
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(RequestFailure::malformed(format!(
            "unsupported protocol '{version}'"
        )));
    }
    let mut content_length = 0usize;
    let mut if_none_match: Option<String> = None;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|error| RequestFailure::from_io("reading headers", &error))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse::<usize>().map_err(|_| {
                    RequestFailure::malformed(format!("bad Content-Length '{}'", value.trim()))
                })?;
            } else if name.eq_ignore_ascii_case("if-none-match") {
                if_none_match = Some(value.trim().to_string());
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|error| {
        RequestFailure::from_io(&format!("reading {content_length}-byte body"), &error)
    })?;
    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body: String::from_utf8(body)
            .map_err(|_| RequestFailure::malformed("body is not UTF-8".to_string()))?,
        if_none_match,
    })
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) -> io::Result<()> {
    write_response_with_headers(stream, status, reason, content_type, &[], body)
}

fn write_response_with_headers(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
