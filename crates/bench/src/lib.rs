//! # pnoc-bench — experiment harness for the d-HetPNoC reproduction
//!
//! Every table and figure of the thesis' evaluation chapter has a
//! corresponding experiment module here; the `repro` binary runs them and
//! prints the same rows / series the paper reports. The Criterion benches in
//! `benches/` exercise the same code paths at a reduced scale so that
//! `cargo bench` stays fast.
//!
//! | module | paper artefact |
//! |--------|----------------|
//! | [`experiments::fig1_1`] | Figure 1-1 — GPU speedup vs flit size |
//! | [`experiments::tables`] | Tables 3-1 … 3-5 — configuration & constants |
//! | [`experiments::fig3_3_3_4`] | Figures 3-3 and 3-4 — peak bandwidth and packet energy, Firefly vs d-HetPNoC |
//! | [`experiments::fig3_5`] | Figure 3-5 — hotspot and real-application case studies |
//! | [`experiments::fig3_6`] | Figure 3-6 — area vs aggregate bandwidth |
//! | [`experiments::fig3_7_3_10`] | Figures 3-7 … 3-10 — bandwidth/energy/area scaling with total wavelengths |
//! | [`experiments::overheads`] | §3.3.1 / §3.4.3 — reservation timing, token timing, area numbers |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod json;
pub mod runner;
pub mod scenario_io;
pub mod server;

pub use experiments::ExperimentReport;
pub use runner::{Architecture, ComparisonRow, EffortLevel, TrafficKind};
