//! Shared machinery for the throughput / energy experiments, built entirely
//! on the **scenario API** (`pnoc_sim::scenario`) over the architecture
//! registry (`pnoc_sim::registry`) and the traffic registry
//! (`pnoc_traffic::factory`).
//!
//! Nothing in this module names a concrete architecture or traffic type:
//! [`Architecture`] and [`TrafficKind`] are handles resolved by name, sweeps
//! are [`Scenario`] runs, and whole experiment grids go through the
//! [`ScenarioMatrix`] batch engine (one flattened, deduplicated, parallel
//! work queue instead of per-sweep parallelism). Adding an architecture
//! (register it with `pnoc_sim::registry::register_architecture`) or a
//! workload (register it with
//! `pnoc_traffic::factory::register_traffic_factory`) makes it available to
//! every experiment without touching this crate.

use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use pnoc_sim::config::{BandwidthSet, SimConfig};
use pnoc_sim::engine::run_to_completion;
use pnoc_sim::registry::{lookup_architecture, ArchitectureBuilder, Provisioning};
use pnoc_sim::scenario::{MatrixResult, Scenario, ScenarioMatrix, ScenarioResult, ScenarioSpec};
use pnoc_sim::stats::SimStats;
use pnoc_sim::sweep::SaturationResult;
use pnoc_traffic::factory::{lookup_traffic_factory, TrafficSpec};
use pnoc_traffic::pattern::PacketShape;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The simulation effort level, re-exported from the scenario API
/// (`Paper` scale, `Quick` smoke runs, `Smoke` test runs).
pub use pnoc_sim::scenario::Effort as EffortLevel;

/// Makes sure the workspace's architectures are registered. Called by every
/// resolving entry point, so binaries and tests need no explicit setup.
pub fn ensure_registered() {
    d_hetpnoc_repro::install_architectures();
}

/// A handle to a registered architecture, resolved by name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Architecture {
    name: String,
    label: String,
}

impl Architecture {
    /// Resolves a registered architecture by name.
    ///
    /// # Panics
    ///
    /// Panics if no architecture of that name is registered; the message
    /// lists the registered names and suggests the nearest match.
    #[must_use]
    pub fn named(name: &str) -> Self {
        let builder = Self::resolve(name);
        Self {
            name: builder.name().to_string(),
            label: builder.label(),
        }
    }

    fn resolve(name: &str) -> Arc<dyn ArchitectureBuilder> {
        ensure_registered();
        lookup_architecture(name).unwrap_or_else(|error| panic!("{error}"))
    }

    /// The Firefly baseline.
    #[must_use]
    pub fn firefly() -> Self {
        Self::named("firefly")
    }

    /// The d-HetPNoC architecture.
    #[must_use]
    pub fn dhetpnoc() -> Self {
        Self::named("d-hetpnoc")
    }

    /// The paper's comparison pair: the Firefly baseline first, d-HetPNoC
    /// second.
    #[must_use]
    pub fn comparison_pair() -> [Architecture; 2] {
        [Self::firefly(), Self::dhetpnoc()]
    }

    /// Every registered architecture, sorted by name.
    #[must_use]
    pub fn all() -> Vec<Architecture> {
        ensure_registered();
        pnoc_sim::registry::registered_architectures()
            .iter()
            .map(|name| Architecture::named(name))
            .collect()
    }

    /// Registry name ("firefly", "d-hetpnoc", ...).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Display label ("Firefly", "d-HetPNoC", ...).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The underlying registry builder.
    #[must_use]
    pub fn builder(&self) -> Arc<dyn ArchitectureBuilder> {
        Self::resolve(&self.name)
    }

    /// Resource-provisioning style declared by the builder (drives the
    /// area/cost model selection in the experiments).
    #[must_use]
    pub fn provisioning(&self) -> Provisioning {
        self.builder().provisioning()
    }
}

/// A handle to a registered traffic pattern, resolved by name.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficKind {
    name: String,
}

impl TrafficKind {
    /// Resolves a registered traffic pattern by name.
    ///
    /// # Panics
    ///
    /// Panics if no pattern of that name is registered; the message lists
    /// the registered names and suggests the nearest match.
    #[must_use]
    pub fn named(name: &str) -> Self {
        if let Err(error) = lookup_traffic_factory(name) {
            panic!("{error}");
        }
        Self {
            name: name.to_string(),
        }
    }

    /// The scenarios of Figures 3-3 / 3-4 (uniform + three skews).
    #[must_use]
    pub fn synthetic() -> [TrafficKind; 4] {
        ["uniform-random", "skewed-1", "skewed-2", "skewed-3"].map(TrafficKind::named)
    }

    /// The case studies of Figure 3-5 (four hotspot mixes + real
    /// application).
    #[must_use]
    pub fn case_studies() -> Vec<TrafficKind> {
        [
            "hotspot-10pct-skewed-2",
            "hotspot-10pct-skewed-3",
            "hotspot-20pct-skewed-2",
            "hotspot-20pct-skewed-3",
            "real-application",
        ]
        .map(TrafficKind::named)
        .to_vec()
    }

    /// The extended scenarios added by this reproduction (permutation and
    /// bursty patterns).
    #[must_use]
    pub fn extended() -> Vec<TrafficKind> {
        ["transpose", "bit-reverse", "tornado", "bursty-uniform"]
            .map(TrafficKind::named)
            .to_vec()
    }

    /// Every registered traffic pattern, sorted by name.
    #[must_use]
    pub fn all() -> Vec<TrafficKind> {
        pnoc_traffic::factory::registered_traffic_patterns()
            .iter()
            .map(|name| TrafficKind::named(name))
            .collect()
    }

    /// Registry name, also used as the report label.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Human-readable label used in report rows (same as the name).
    #[must_use]
    pub fn label(&self) -> String {
        self.name.clone()
    }

    /// Builds the traffic model for this pattern at the given load and seed,
    /// with geometry taken from `config`.
    #[must_use]
    pub fn build(
        &self,
        config: &SimConfig,
        load: OfferedLoad,
        seed: u64,
    ) -> Box<dyn TrafficModel + Send> {
        let factory = lookup_traffic_factory(&self.name).unwrap_or_else(|error| panic!("{error}"));
        let shape = PacketShape::new(
            config.bandwidth_set.packet_flits(),
            config.bandwidth_set.flit_bits(),
        );
        factory.build(&TrafficSpec::new(config.topology, shape, load, seed))
    }
}

/// Builds the [`ScenarioSpec`] of one experiment cell.
#[must_use]
pub fn spec_for(
    architecture: &Architecture,
    kind: &TrafficKind,
    effort: EffortLevel,
    set: BandwidthSet,
) -> ScenarioSpec {
    ScenarioSpec::new(architecture.name(), kind.name())
        .with_bandwidth_set(set)
        .with_effort(effort)
}

/// Resolves the [`Scenario`] of one experiment cell.
///
/// # Panics
///
/// Panics when either name is no longer registered (cannot normally happen:
/// [`Architecture`] and [`TrafficKind`] handles were themselves resolved).
#[must_use]
pub fn scenario_for(
    architecture: &Architecture,
    kind: &TrafficKind,
    effort: EffortLevel,
    set: BandwidthSet,
) -> Scenario {
    ensure_registered();
    spec_for(architecture, kind, effort, set)
        .resolve()
        .unwrap_or_else(|error| panic!("{error}"))
}

/// Runs one simulation of one architecture at one offered load (at the
/// architecture's default parameters; use the scenario API's `arch_params`
/// for other design points).
#[must_use]
pub fn run_once(
    architecture: &Architecture,
    config: SimConfig,
    kind: &TrafficKind,
    load: f64,
) -> SimStats {
    let traffic = kind.build(&config, OfferedLoad::new(load), config.seed);
    let builder = architecture.builder();
    let mut network = builder.build(config, &builder.default_params(), traffic);
    run_to_completion(&mut *network)
}

/// Sweeps the offered load for one architecture and traffic scenario through
/// the scenario engine (ladder points in parallel).
#[must_use]
pub fn saturation_sweep(
    architecture: &Architecture,
    kind: &TrafficKind,
    effort: EffortLevel,
    set: BandwidthSet,
) -> SaturationResult {
    scenario_for(architecture, kind, effort, set).run().result
}

/// The streamed latency percentiles (p50/p95/p99, in cycles) of one
/// scenario at its saturation point, read from the per-point
/// [`MetricReport`](pnoc_sim::metrics::MetricReport) the sweep engine
/// attaches. `None` when the sweep is empty or the point delivered nothing.
#[must_use]
pub fn latency_percentiles_at_saturation(result: &ScenarioResult) -> Option<[u64; 3]> {
    let index = result.result.saturation_index()?;
    let sketch = result.result.points[index]
        .metrics
        .histogram("latency_cycles")?;
    Some([
        sketch.percentile(50.0)?,
        sketch.percentile(95.0)?,
        sketch.percentile(99.0)?,
    ])
}

/// The outcome of comparing two architectures on one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Bandwidth set of the experiment.
    pub bandwidth_set: String,
    /// Traffic scenario label.
    pub traffic: String,
    /// Baseline architecture label.
    pub baseline: String,
    /// Candidate architecture label.
    pub candidate: String,
    /// Baseline peak aggregate bandwidth, Gb/s.
    pub baseline_peak_gbps: f64,
    /// Candidate peak aggregate bandwidth, Gb/s.
    pub candidate_peak_gbps: f64,
    /// Baseline packet energy at the common operating point, pJ.
    pub baseline_packet_energy_pj: f64,
    /// Candidate packet energy at the common operating point, pJ.
    pub candidate_packet_energy_pj: f64,
    /// Baseline average latency at the common operating point, cycles.
    pub baseline_latency_cycles: f64,
    /// Candidate average latency at the common operating point, cycles.
    pub candidate_latency_cycles: f64,
}

impl ComparisonRow {
    /// Peak-bandwidth improvement of the candidate over the baseline,
    /// percent.
    #[must_use]
    pub fn bandwidth_gain_percent(&self) -> f64 {
        if self.baseline_peak_gbps == 0.0 {
            0.0
        } else {
            (self.candidate_peak_gbps - self.baseline_peak_gbps) / self.baseline_peak_gbps * 100.0
        }
    }

    /// Packet-energy reduction of the candidate relative to the baseline,
    /// percent (positive = candidate dissipates less).
    #[must_use]
    pub fn energy_saving_percent(&self) -> f64 {
        if self.baseline_packet_energy_pj == 0.0 {
            0.0
        } else {
            (self.baseline_packet_energy_pj - self.candidate_packet_energy_pj)
                / self.baseline_packet_energy_pj
                * 100.0
        }
    }
}

/// Builds a [`ComparisonRow`] from the two scenario results of one cell.
///
/// Peak bandwidth is each architecture's own sustainable (saturation)
/// bandwidth. Packet energy and latency are compared at a **common operating
/// point** — the baseline's saturation load — so that the energy difference
/// reflects how each architecture handles the same traffic (shorter buffer
/// residence under d-HetPNoC, Section 3.4.1.2) rather than how far past
/// saturation each one happens to be driven.
#[must_use]
pub fn comparison_from(
    baseline: &Architecture,
    candidate: &Architecture,
    base: &ScenarioResult,
    cand: &ScenarioResult,
) -> ComparisonRow {
    let common_idx = base
        .result
        .saturation_index()
        .unwrap_or(0)
        .min(cand.result.points.len().saturating_sub(1));
    let energy_at = |sweep: &SaturationResult| {
        sweep
            .points
            .get(common_idx)
            .map(|p| p.stats.packet_energy_pj())
            .unwrap_or(0.0)
    };
    let latency_at = |sweep: &SaturationResult| {
        sweep
            .points
            .get(common_idx)
            .map(|p| p.stats.average_packet_latency())
            .unwrap_or(0.0)
    };
    ComparisonRow {
        bandwidth_set: base.spec.bandwidth_set.label().to_string(),
        traffic: base.spec.traffic.clone(),
        baseline: baseline.label().to_string(),
        candidate: candidate.label().to_string(),
        baseline_peak_gbps: base.result.sustainable_bandwidth_gbps(),
        candidate_peak_gbps: cand.result.sustainable_bandwidth_gbps(),
        baseline_packet_energy_pj: energy_at(&base.result),
        candidate_packet_energy_pj: energy_at(&cand.result),
        baseline_latency_cycles: latency_at(&base.result),
        candidate_latency_cycles: latency_at(&cand.result),
    }
}

/// Compares two registered architectures across a whole (bandwidth set ×
/// traffic) grid in **one matrix run**: every sweep point of every cell goes
/// into one deduplicated batch on the persistent `pnoc-exec` pool, so short
/// sweeps no longer idle behind long ones and no threads are spawned per
/// call. Rows come back in `sets`-major, `kinds`-minor order.
///
/// # Panics
///
/// Panics if the matrix fails to resolve (cannot normally happen: the
/// handles were themselves resolved against the registries).
#[must_use]
pub fn comparison_rows(
    baseline: &Architecture,
    candidate: &Architecture,
    effort: EffortLevel,
    sets: &[BandwidthSet],
    kinds: &[TrafficKind],
) -> Vec<ComparisonRow> {
    ensure_registered();
    let matrix = ScenarioMatrix::new()
        .architectures([baseline.name(), candidate.name()])
        .traffics(kinds.iter().map(TrafficKind::name))
        .bandwidth_sets(sets.iter().copied())
        .effort(effort);
    let outcome = matrix.run().unwrap_or_else(|error| panic!("{error}"));
    let cell = |matrix: &MatrixResult, arch: &Architecture, kind: &TrafficKind, set| {
        matrix
            .find(arch.name(), kind.name(), set)
            .unwrap_or_else(|| {
                panic!(
                    "matrix result is missing the ({}, {}) cell",
                    arch.name(),
                    kind.name()
                )
            })
            .clone()
    };
    let mut rows = Vec::with_capacity(sets.len() * kinds.len());
    for &set in sets {
        for kind in kinds {
            let base = cell(&outcome, baseline, kind, set);
            let cand = cell(&outcome, candidate, kind, set);
            rows.push(comparison_from(baseline, candidate, &base, &cand));
        }
    }
    rows
}

/// Compares two registered architectures on one scenario at one bandwidth
/// set (a 1×1 [`comparison_rows`] grid).
#[must_use]
pub fn compare(
    baseline: &Architecture,
    candidate: &Architecture,
    effort: EffortLevel,
    set: BandwidthSet,
    kind: &TrafficKind,
) -> ComparisonRow {
    comparison_rows(
        baseline,
        candidate,
        effort,
        &[set],
        std::slice::from_ref(kind),
    )
    .pop()
    .expect("a 1x1 grid yields exactly one row")
}

/// Compares the paper's pair (Firefly baseline vs d-HetPNoC) on one
/// scenario.
#[must_use]
pub fn compare_architectures(
    effort: EffortLevel,
    set: BandwidthSet,
    kind: &TrafficKind,
) -> ComparisonRow {
    compare(
        &Architecture::firefly(),
        &Architecture::dhetpnoc(),
        effort,
        set,
        kind,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_handles_resolve_and_label() {
        let all = Architecture::all();
        assert!(all.len() >= 3, "expected ≥3 architectures, got {all:?}");
        let [firefly, dhet] = Architecture::comparison_pair();
        assert_eq!(firefly.name(), "firefly");
        assert_eq!(firefly.label(), "Firefly");
        assert_eq!(dhet.name(), "d-hetpnoc");
        assert_eq!(dhet.label(), "d-HetPNoC");
    }

    #[test]
    #[should_panic(expected = "unknown architecture")]
    fn unknown_architecture_panics_with_the_registered_names() {
        let _ = Architecture::named("warp-drive");
    }

    #[test]
    #[should_panic(expected = "did you mean 'd-hetpnoc'")]
    fn misspelled_architecture_panics_with_a_suggestion() {
        let _ = Architecture::named("d-hetpnok");
    }

    #[test]
    #[should_panic(expected = "unknown traffic pattern")]
    fn unknown_traffic_pattern_panics() {
        let _ = TrafficKind::named("smoke-signals");
    }

    #[test]
    fn traffic_kinds_have_distinct_labels_and_cover_the_registry() {
        let mut labels: Vec<String> = TrafficKind::synthetic()
            .iter()
            .map(TrafficKind::label)
            .collect();
        labels.extend(TrafficKind::case_studies().iter().map(TrafficKind::label));
        labels.extend(TrafficKind::extended().iter().map(TrafficKind::label));
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before, "labels must be unique");
        assert!(TrafficKind::all().len() >= 7);
    }

    #[test]
    fn quick_comparison_produces_sane_numbers() {
        let row = compare_architectures(
            EffortLevel::Smoke,
            BandwidthSet::Set1,
            &TrafficKind::named("skewed-2"),
        );
        assert_eq!(row.baseline, "Firefly");
        assert_eq!(row.candidate, "d-HetPNoC");
        assert!(row.baseline_peak_gbps > 0.0);
        assert!(row.candidate_peak_gbps > 0.0);
        assert!(row.baseline_packet_energy_pj > 0.0);
        assert!(row.candidate_packet_energy_pj > 0.0);
        // Both architectures share the same aggregate wavelength budget, so
        // neither can be more than ~2× the photonic limit even with
        // intra-cluster traffic counted.
        assert!(row.baseline_peak_gbps < 1600.0);
        assert!(row.candidate_peak_gbps < 1600.0);
    }

    #[test]
    fn grid_comparison_matches_the_single_cell_path() {
        let kind = TrafficKind::named("skewed-3");
        let [firefly, dhet] = Architecture::comparison_pair();
        let grid = comparison_rows(
            &firefly,
            &dhet,
            EffortLevel::Smoke,
            &[BandwidthSet::Set1],
            std::slice::from_ref(&kind),
        );
        let single = compare(
            &firefly,
            &dhet,
            EffortLevel::Smoke,
            BandwidthSet::Set1,
            &kind,
        );
        assert_eq!(grid, vec![single], "batched grid must equal per-cell runs");
    }

    #[test]
    fn saturation_latency_percentiles_are_present_and_ordered() {
        let outcome = scenario_for(
            &Architecture::named("uniform-fabric"),
            &TrafficKind::named("uniform-random"),
            EffortLevel::Smoke,
            BandwidthSet::Set1,
        )
        .run();
        let [p50, p95, p99] =
            latency_percentiles_at_saturation(&outcome).expect("smoke sweep delivers packets");
        assert!(p50 > 0);
        assert!(p50 <= p95 && p95 <= p99, "percentiles must be monotone");
        let max = outcome
            .result
            .saturation_point()
            .and_then(|p| p.metrics.histogram("latency_cycles"))
            .and_then(|h| h.max())
            .expect("sketch recorded");
        assert!(p99 <= max);
    }

    #[test]
    fn run_once_honours_the_architecture_label() {
        let config = EffortLevel::Quick.config(BandwidthSet::Set1);
        let load = config.estimated_saturation_load() * 0.5;
        let kind = TrafficKind::named("uniform-random");
        let firefly = run_once(&Architecture::firefly(), config, &kind, load);
        let dhet = run_once(&Architecture::dhetpnoc(), config, &kind, load);
        assert_eq!(firefly.architecture, "firefly");
        assert_eq!(dhet.architecture, "d-hetpnoc");
    }

    #[test]
    fn extended_patterns_flow_through_the_uniform_test_fabric() {
        let config = EffortLevel::Smoke.config(BandwidthSet::Set1);
        let load = config.estimated_saturation_load() * 0.8;
        let arch = Architecture::named("uniform-fabric");
        for kind in TrafficKind::extended() {
            let stats = run_once(&arch, config, &kind, load);
            assert!(
                stats.delivered_packets > 0,
                "pattern '{}' delivered nothing",
                kind.name()
            );
        }
    }
}
