//! Shared machinery for the throughput / energy experiments: traffic
//! construction, architecture comparison sweeps, and parallel execution of
//! sweep points.

use pnoc_dhetpnoc::network::build_dhetpnoc_system;
use pnoc_firefly::network::build_firefly_system;
use pnoc_noc::topology::ClusterTopology;
use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use pnoc_sim::config::{BandwidthSet, SimConfig};
use pnoc_sim::engine::run_to_completion;
use pnoc_sim::stats::SimStats;
use pnoc_sim::sweep::{default_load_ladder, SaturationResult, SweepPoint};
use pnoc_traffic::gpu::RealApplicationTraffic;
use pnoc_traffic::hotspot::HotspotSkewedTraffic;
use pnoc_traffic::pattern::{PacketShape, SkewLevel};
use pnoc_traffic::skewed::SkewedTraffic;
use pnoc_traffic::uniform::UniformRandomTraffic;
use serde::{Deserialize, Serialize};

/// How much simulation effort to spend (paper scale vs quick smoke runs for
/// benches and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EffortLevel {
    /// Full paper methodology: 10 000 measured cycles, 16 VCs, 8-point load
    /// ladder.
    Paper,
    /// Reduced runs for Criterion benches and smoke tests.
    Quick,
}

impl EffortLevel {
    /// The simulation configuration for this effort level.
    #[must_use]
    pub fn config(self, set: BandwidthSet) -> SimConfig {
        match self {
            EffortLevel::Paper => SimConfig::paper_default(set),
            EffortLevel::Quick => {
                let mut c = SimConfig::fast(set);
                c.sim_cycles = 1_200;
                c.warmup_cycles = 300;
                c
            }
        }
    }

    /// The offered-load ladder for this effort level.
    #[must_use]
    pub fn load_ladder(self, config: &SimConfig) -> Vec<f64> {
        let full = default_load_ladder(config.estimated_saturation_load());
        match self {
            EffortLevel::Paper => full,
            EffortLevel::Quick => vec![full[1], full[3], full[5]],
        }
    }
}

/// The traffic scenarios of the evaluation chapter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TrafficKind {
    /// Uniform-random traffic.
    Uniform,
    /// Skewed traffic at one of the three skew levels.
    Skewed(SkewLevel),
    /// Hotspot-coupled skewed traffic (fraction of traffic to the hotspot).
    Hotspot {
        /// Fraction of all traffic sent to the hotspot core.
        fraction: f64,
        /// Skew level of the remaining traffic.
        skew: SkewLevel,
    },
    /// Real-application (GPU + memory clusters) traffic.
    RealApplication,
}

impl TrafficKind {
    /// The scenarios of Figures 3-3 / 3-4 (uniform + three skews).
    pub const SYNTHETIC: [TrafficKind; 4] = [
        TrafficKind::Uniform,
        TrafficKind::Skewed(SkewLevel::Skewed1),
        TrafficKind::Skewed(SkewLevel::Skewed2),
        TrafficKind::Skewed(SkewLevel::Skewed3),
    ];

    /// The case studies of Figure 3-5 (four hotspot mixes + real application).
    #[must_use]
    pub fn case_studies() -> Vec<TrafficKind> {
        vec![
            TrafficKind::Hotspot {
                fraction: 0.10,
                skew: SkewLevel::Skewed2,
            },
            TrafficKind::Hotspot {
                fraction: 0.10,
                skew: SkewLevel::Skewed3,
            },
            TrafficKind::Hotspot {
                fraction: 0.20,
                skew: SkewLevel::Skewed2,
            },
            TrafficKind::Hotspot {
                fraction: 0.20,
                skew: SkewLevel::Skewed3,
            },
            TrafficKind::RealApplication,
        ]
    }

    /// Human-readable label used in report rows.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            TrafficKind::Uniform => "uniform-random".to_string(),
            TrafficKind::Skewed(s) => s.label().to_string(),
            TrafficKind::Hotspot { fraction, skew } => format!(
                "hotspot-{}pct-{}",
                (fraction * 100.0).round() as u32,
                skew.label()
            ),
            TrafficKind::RealApplication => "real-application".to_string(),
        }
    }

    /// Builds the traffic model for this scenario at the given load.
    #[must_use]
    pub fn build(&self, config: &SimConfig, load: OfferedLoad) -> Box<dyn TrafficModel + Send> {
        let topology = ClusterTopology::paper_default();
        let shape = PacketShape::new(
            config.bandwidth_set.packet_flits(),
            config.bandwidth_set.flit_bits(),
        );
        let seed = config.seed;
        match self {
            TrafficKind::Uniform => {
                Box::new(UniformRandomTraffic::new(topology, shape, load, seed))
            }
            TrafficKind::Skewed(skew) => {
                Box::new(SkewedTraffic::new(topology, shape, *skew, load, seed))
            }
            TrafficKind::Hotspot { fraction, skew } => Box::new(HotspotSkewedTraffic::new(
                topology,
                shape,
                *skew,
                pnoc_noc::ids::CoreId(0),
                *fraction,
                load,
                seed,
            )),
            TrafficKind::RealApplication => {
                Box::new(RealApplicationTraffic::paper_mapping(topology, shape, load, seed))
            }
        }
    }
}

/// Which architecture to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Architecture {
    /// The Firefly baseline with uniform static allocation.
    Firefly,
    /// The proposed d-HetPNoC with dynamic bandwidth allocation.
    DhetPnoc,
}

impl Architecture {
    /// Both architectures, baseline first.
    pub const BOTH: [Architecture; 2] = [Architecture::Firefly, Architecture::DhetPnoc];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Architecture::Firefly => "Firefly",
            Architecture::DhetPnoc => "d-HetPNoC",
        }
    }
}

/// Runs one simulation of one architecture at one offered load.
#[must_use]
pub fn run_once(
    architecture: Architecture,
    config: SimConfig,
    kind: TrafficKind,
    load: f64,
) -> SimStats {
    let traffic = kind.build(&config, OfferedLoad::new(load));
    match architecture {
        Architecture::Firefly => {
            let mut system = build_firefly_system(config, traffic);
            run_to_completion(&mut system)
        }
        Architecture::DhetPnoc => {
            let mut system = build_dhetpnoc_system(config, traffic);
            run_to_completion(&mut system)
        }
    }
}

/// Sweeps the offered load for one architecture and traffic scenario,
/// running the sweep points in parallel.
#[must_use]
pub fn saturation_sweep(
    architecture: Architecture,
    config: SimConfig,
    kind: TrafficKind,
    loads: &[f64],
) -> SaturationResult {
    let mut points: Vec<(usize, SweepPoint)> = Vec::with_capacity(loads.len());
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = loads
            .iter()
            .enumerate()
            .map(|(i, &load)| {
                scope.spawn(move |_| {
                    (
                        i,
                        SweepPoint {
                            offered_load: load,
                            stats: run_once(architecture, config, kind, load),
                        },
                    )
                })
            })
            .collect();
        for handle in handles {
            points.push(handle.join().expect("sweep worker panicked"));
        }
    })
    .expect("crossbeam scope failed");
    points.sort_by_key(|(i, _)| *i);
    SaturationResult {
        points: points.into_iter().map(|(_, p)| p).collect(),
    }
}

/// The outcome of comparing both architectures on one scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Bandwidth set of the experiment.
    pub bandwidth_set: String,
    /// Traffic scenario label.
    pub traffic: String,
    /// Firefly peak aggregate bandwidth, Gb/s.
    pub firefly_peak_gbps: f64,
    /// d-HetPNoC peak aggregate bandwidth, Gb/s.
    pub dhet_peak_gbps: f64,
    /// Firefly packet energy at saturation, pJ.
    pub firefly_packet_energy_pj: f64,
    /// d-HetPNoC packet energy at saturation, pJ.
    pub dhet_packet_energy_pj: f64,
    /// Firefly average latency at saturation, cycles.
    pub firefly_latency_cycles: f64,
    /// d-HetPNoC average latency at saturation, cycles.
    pub dhet_latency_cycles: f64,
}

impl ComparisonRow {
    /// Peak-bandwidth improvement of d-HetPNoC over Firefly, percent.
    #[must_use]
    pub fn bandwidth_gain_percent(&self) -> f64 {
        if self.firefly_peak_gbps == 0.0 {
            0.0
        } else {
            (self.dhet_peak_gbps - self.firefly_peak_gbps) / self.firefly_peak_gbps * 100.0
        }
    }

    /// Packet-energy reduction of d-HetPNoC relative to Firefly, percent
    /// (positive = d-HetPNoC dissipates less).
    #[must_use]
    pub fn energy_saving_percent(&self) -> f64 {
        if self.firefly_packet_energy_pj == 0.0 {
            0.0
        } else {
            (self.firefly_packet_energy_pj - self.dhet_packet_energy_pj)
                / self.firefly_packet_energy_pj
                * 100.0
        }
    }
}

/// Compares both architectures on one scenario at one bandwidth set.
///
/// Peak bandwidth is each architecture's own sustainable (saturation)
/// bandwidth. Packet energy and latency are compared at a **common operating
/// point** — the baseline's saturation load — so that the energy difference
/// reflects how each architecture handles the same traffic (shorter buffer
/// residence under d-HetPNoC, Section 3.4.1.2) rather than how far past
/// saturation each one happens to be driven.
#[must_use]
pub fn compare_architectures(
    effort: EffortLevel,
    set: BandwidthSet,
    kind: TrafficKind,
) -> ComparisonRow {
    let config = effort.config(set);
    let loads = effort.load_ladder(&config);
    let firefly = saturation_sweep(Architecture::Firefly, config, kind, &loads);
    let dhet = saturation_sweep(Architecture::DhetPnoc, config, kind, &loads);
    let common_idx = firefly
        .saturation_index()
        .unwrap_or(0)
        .min(dhet.points.len().saturating_sub(1));
    let energy_at = |sweep: &SaturationResult| {
        sweep
            .points
            .get(common_idx)
            .map(|p| p.stats.packet_energy_pj())
            .unwrap_or(0.0)
    };
    let latency_at = |sweep: &SaturationResult| {
        sweep
            .points
            .get(common_idx)
            .map(|p| p.stats.average_packet_latency())
            .unwrap_or(0.0)
    };
    ComparisonRow {
        bandwidth_set: set.label().to_string(),
        traffic: kind.label(),
        firefly_peak_gbps: firefly.sustainable_bandwidth_gbps(),
        dhet_peak_gbps: dhet.sustainable_bandwidth_gbps(),
        firefly_packet_energy_pj: energy_at(&firefly),
        dhet_packet_energy_pj: energy_at(&dhet),
        firefly_latency_cycles: latency_at(&firefly),
        dhet_latency_cycles: latency_at(&dhet),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_kinds_have_distinct_labels() {
        let mut labels: Vec<String> = TrafficKind::SYNTHETIC.iter().map(TrafficKind::label).collect();
        labels.extend(TrafficKind::case_studies().iter().map(TrafficKind::label));
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before, "labels must be unique");
    }

    #[test]
    fn quick_comparison_produces_sane_numbers() {
        let row = compare_architectures(
            EffortLevel::Quick,
            BandwidthSet::Set1,
            TrafficKind::Skewed(SkewLevel::Skewed2),
        );
        assert!(row.firefly_peak_gbps > 0.0);
        assert!(row.dhet_peak_gbps > 0.0);
        assert!(row.firefly_packet_energy_pj > 0.0);
        assert!(row.dhet_packet_energy_pj > 0.0);
        // Both architectures share the same aggregate wavelength budget, so
        // neither can be more than ~2× the photonic limit even with
        // intra-cluster traffic counted.
        assert!(row.firefly_peak_gbps < 1600.0);
        assert!(row.dhet_peak_gbps < 1600.0);
    }

    #[test]
    fn run_once_honours_the_architecture_label() {
        let config = EffortLevel::Quick.config(BandwidthSet::Set1);
        let load = config.estimated_saturation_load() * 0.5;
        let firefly = run_once(Architecture::Firefly, config, TrafficKind::Uniform, load);
        let dhet = run_once(Architecture::DhetPnoc, config, TrafficKind::Uniform, load);
        assert_eq!(firefly.architecture, "firefly");
        assert_eq!(dhet.architecture, "d-hetpnoc");
    }
}
