//! Micro-benchmarks of the dynamic-bandwidth-allocation machinery: token
//! circulation, allocation convergence and fabric queries.

use criterion::{criterion_group, criterion_main, Criterion};
use pnoc_dhetpnoc::dba::DbaController;
use pnoc_dhetpnoc::fabric::DhetFabric;
use pnoc_noc::ids::ClusterId;
use pnoc_noc::topology::ClusterTopology;
use pnoc_noc::traffic_model::OfferedLoad;
use pnoc_sim::config::{BandwidthSet, SimConfig};
use pnoc_sim::system::PhotonicFabric;
use pnoc_traffic::demand::DemandMatrix;
use pnoc_traffic::pattern::{PacketShape, SkewLevel};
use pnoc_traffic::skewed::SkewedTraffic;
use std::hint::black_box;

fn skewed_demand() -> DemandMatrix {
    let traffic = SkewedTraffic::new(
        ClusterTopology::paper_default(),
        PacketShape::new(64, 32),
        SkewLevel::Skewed3,
        OfferedLoad::new(0.01),
        7,
    );
    DemandMatrix::from_model(&traffic, 16)
}

fn bench(c: &mut Criterion) {
    c.bench_function("dba/converge_from_scratch", |b| {
        b.iter(|| {
            let mut controller = DbaController::new(16, 48, 1, 8, 1);
            controller.set_targets(&[8; 16]);
            controller.converge(64);
            black_box(controller.allocation_snapshot())
        })
    });

    c.bench_function("dba/token_tick", |b| {
        let mut controller = DbaController::new(16, 48, 1, 8, 1);
        controller.set_targets(&[8; 16]);
        b.iter(|| black_box(controller.tick()))
    });

    c.bench_function("dba/fabric_construction_with_skewed_demand", |b| {
        let config = SimConfig::paper_default(BandwidthSet::Set1);
        let demand = skewed_demand();
        b.iter(|| black_box(DhetFabric::new(&config, demand.clone())))
    });

    c.bench_function("dba/wavelengths_for_query", |b| {
        let config = SimConfig::paper_default(BandwidthSet::Set1);
        let fabric = DhetFabric::new(&config, skewed_demand());
        b.iter(|| {
            let mut total = 0usize;
            for s in 0..16 {
                for d in 0..16 {
                    if s != d {
                        total += fabric.wavelengths_for(ClusterId(s), ClusterId(d));
                    }
                }
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
