//! Criterion bench for the Figure 1-1 GPU speedup model. Also prints the
//! regenerated figure rows once so that `cargo bench` output contains the
//! series the paper reports.

use criterion::{criterion_group, criterion_main, Criterion};
use pnoc_bench::experiments::fig1_1;
use pnoc_traffic::gpu::GpuSpeedupModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig1_1::run().render());
    let model = GpuSpeedupModel::figure_1_1();
    c.bench_function("fig1_1/speedup_model_evaluation", |b| {
        b.iter(|| {
            let rows = black_box(&model).rows();
            black_box(rows.len())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
