//! Criterion bench for the Figure 3-4 packet-energy comparison: measures the
//! energy-accounting overhead of a saturation run and prints the quick-scale
//! packet-energy rows.

use criterion::{criterion_group, criterion_main, Criterion};
use pnoc_bench::runner::{compare_architectures, run_once, Architecture, EffortLevel, TrafficKind};
use pnoc_sim::config::BandwidthSet;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    for kind in [
        TrafficKind::named("uniform-random"),
        TrafficKind::named("skewed-3"),
    ] {
        let row = compare_architectures(EffortLevel::Quick, BandwidthSet::Set1, &kind);
        println!(
            "fig3_4 (quick, BW set 1) {:<16} firefly {:9.1} pJ   d-hetpnoc {:9.1} pJ   saving {:+.2}%",
            row.traffic,
            row.baseline_packet_energy_pj,
            row.candidate_packet_energy_pj,
            row.energy_saving_percent()
        );
    }

    c.bench_function("fig3_4/packet_energy_accounting_run", |b| {
        let config = EffortLevel::Quick.config(BandwidthSet::Set2);
        let load = config.estimated_saturation_load();
        let architecture = Architecture::dhetpnoc();
        let kind = TrafficKind::named("skewed-2");
        b.iter(|| {
            let stats = run_once(&architecture, config, &kind, load);
            black_box(stats.packet_energy_pj())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
