//! Criterion bench for the Figure 3-3 peak-bandwidth comparison. The bench
//! measures a reduced-scale saturation run for both architectures on skewed
//! traffic, and prints the quick-scale Figure 3-3 rows for inspection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnoc_bench::runner::{compare_architectures, run_once, Architecture, EffortLevel, TrafficKind};
use pnoc_sim::config::BandwidthSet;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    // Print the quick-scale comparison rows once.
    for kind in TrafficKind::synthetic() {
        let row = compare_architectures(EffortLevel::Quick, BandwidthSet::Set1, &kind);
        println!(
            "fig3_3 (quick, BW set 1) {:<16} firefly {:7.1} Gb/s   d-hetpnoc {:7.1} Gb/s   gain {:+.2}%",
            row.traffic,
            row.baseline_peak_gbps,
            row.candidate_peak_gbps,
            row.bandwidth_gain_percent()
        );
    }

    let mut group = c.benchmark_group("fig3_3/saturation_run");
    group.sample_size(10);
    for architecture in Architecture::comparison_pair() {
        group.bench_with_input(
            BenchmarkId::from_parameter(architecture.label()),
            &architecture,
            |b, arch| {
                let config = EffortLevel::Quick.config(BandwidthSet::Set1);
                let load = config.estimated_saturation_load();
                let kind = TrafficKind::named("skewed-3");
                b.iter(|| black_box(run_once(arch, config, &kind, load)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
