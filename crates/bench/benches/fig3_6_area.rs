//! Criterion bench for the Figure 3-6 area model (equations 5–24); prints
//! the regenerated area table once.

use criterion::{criterion_group, criterion_main, Criterion};
use pnoc_bench::experiments::fig3_6;
use pnoc_photonics::area::AreaModel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", fig3_6::run().render());
    let model = AreaModel::paper_default();
    c.bench_function("fig3_6/area_model_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for wavelengths in [64usize, 128, 256, 384, 512] {
                total += black_box(&model).dynamic_report(wavelengths).area_mm2;
                total += black_box(&model).firefly_report(wavelengths).area_mm2;
            }
            black_box(total)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
