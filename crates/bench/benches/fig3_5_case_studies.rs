//! Criterion bench for the Figure 3-5 case studies (hotspot-skewed and
//! real-application traffic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnoc_bench::runner::{run_once, Architecture, EffortLevel, TrafficKind};
use pnoc_sim::config::BandwidthSet;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_5/case_study_run");
    group.sample_size(10);
    let cases = [
        TrafficKind::named("hotspot-10pct-skewed-3"),
        TrafficKind::named("real-application"),
    ];
    for kind in cases {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, kind| {
                let config = EffortLevel::Quick.config(BandwidthSet::Set1);
                let load = config.estimated_saturation_load();
                let architecture = Architecture::dhetpnoc();
                b.iter(|| black_box(run_once(&architecture, config, kind, load)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
