//! Criterion bench for the Figure 3-5 case studies (hotspot-skewed and
//! real-application traffic).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnoc_bench::runner::{run_once, Architecture, EffortLevel, TrafficKind};
use pnoc_sim::config::BandwidthSet;
use pnoc_traffic::pattern::SkewLevel;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_5/case_study_run");
    group.sample_size(10);
    let cases = [
        (
            "hotspot-10pct-skewed-3",
            TrafficKind::Hotspot {
                fraction: 0.10,
                skew: SkewLevel::Skewed3,
            },
        ),
        ("real-application", TrafficKind::RealApplication),
    ];
    for (label, kind) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            let config = EffortLevel::Quick.config(BandwidthSet::Set1);
            let load = config.estimated_saturation_load();
            b.iter(|| black_box(run_once(Architecture::DhetPnoc, config, kind, load)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
