//! Micro-benchmarks of the simulation engine core: per-cycle step cost at
//! zero, mid and saturation load for both architectures (where the idle
//! switch/cluster gating and scratch-buffer reuse show up directly), and a
//! closed-loop DAG-drain run through the event-aware scheduler.

use criterion::{criterion_group, criterion_main, Criterion};
use pnoc_bench::runner::ensure_registered;
use pnoc_dhetpnoc::fabric::DhetFabric;
use pnoc_firefly::fabric::FireflyFabric;
use pnoc_noc::topology::ClusterTopology;
use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use pnoc_sim::config::{BandwidthSet, SimConfig};
use pnoc_sim::engine::CycleNetwork;
use pnoc_sim::scenario::{Effort, ScenarioSpec};
use pnoc_sim::sweep::SweepMode;
use pnoc_sim::system::{PhotonicFabric, PhotonicSystem};
use pnoc_traffic::demand::DemandMatrix;
use pnoc_traffic::pattern::{PacketShape, SkewLevel};
use pnoc_traffic::skewed::SkewedTraffic;
use std::hint::black_box;

fn traffic(load: f64) -> SkewedTraffic {
    SkewedTraffic::new(
        ClusterTopology::paper_default(),
        PacketShape::new(64, 32),
        SkewLevel::Skewed3,
        OfferedLoad::new(load),
        7,
    )
}

/// Steps `system` forever from cycle 0, one cycle per benchmark iteration.
fn bench_steps<F, T>(c: &mut Criterion, id: &str, mut system: PhotonicSystem<F, T>)
where
    F: PhotonicFabric + Send,
    T: TrafficModel + Send,
{
    let mut cycle = 0u64;
    c.bench_function(id, |b| {
        b.iter(|| {
            system.step(cycle);
            cycle += 1;
            black_box(&system);
        })
    });
}

fn bench(c: &mut Criterion) {
    let config = SimConfig::paper_default(BandwidthSet::Set1);

    // Zero load: every switch and cluster is idle, so a step should be
    // little more than the occupancy-counter scan.
    for (label, load) in [("zero", 0.0), ("mid", 0.01), ("saturation", 0.08)] {
        let firefly = PhotonicSystem::new(config, FireflyFabric::new(&config), traffic(load));
        bench_steps(c, &format!("engine/step_firefly_{label}_load"), firefly);

        let demand = DemandMatrix::from_model(&traffic(load), 16);
        let dhet = PhotonicSystem::new(config, DhetFabric::new(&config, demand), traffic(load));
        bench_steps(c, &format!("engine/step_dhetpnoc_{label}_load"), dhet);
    }

    // Closed-loop DAG drain: a full allreduce workload run to completion
    // under the event-aware scheduler (release gaps and the drained tail go
    // through the fast-forward path).
    ensure_registered();
    let scenario = ScenarioSpec::closed_loop("d-hetpnoc", "allreduce:8")
        .with_effort(Effort::Quick)
        .resolve()
        .expect("allreduce workload scenario");
    c.bench_function("engine/dag_drain_allreduce_8", |b| {
        b.iter(|| black_box(scenario.run_with_mode(SweepMode::Sequential)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
