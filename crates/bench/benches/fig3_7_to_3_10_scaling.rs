//! Criterion bench for the wavelength-scaling experiments behind Figures
//! 3-7 … 3-10: one reduced-scale saturation run per bandwidth set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pnoc_bench::runner::{run_once, Architecture, EffortLevel, TrafficKind};
use pnoc_sim::config::BandwidthSet;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_7_to_3_10/bandwidth_set_scaling");
    group.sample_size(10);
    for set in BandwidthSet::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(set.label()), &set, |b, &set| {
            let config = EffortLevel::Quick.config(set);
            let load = config.estimated_saturation_load();
            let architecture = Architecture::dhetpnoc();
            let kind = TrafficKind::named("skewed-3");
            b.iter(|| black_box(run_once(&architecture, config, &kind, load)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
