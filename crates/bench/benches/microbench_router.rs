//! Micro-benchmarks of the electrical router pipeline and the arbiters — the
//! hot path of the cycle-accurate simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use pnoc_noc::arbiter::{Arbiter, MatrixArbiter, RoundRobinArbiter};
use pnoc_noc::flit::{Flit, FlitKind, FlitPayload};
use pnoc_noc::ids::{CoreId, PacketId, PortId, RouterId, VcId};
use pnoc_noc::packet::BandwidthClass;
use pnoc_noc::router::{ElectricalRouter, RouterSpec};
use std::hint::black_box;

fn make_flit(packet: u64, dst: usize) -> Flit {
    Flit {
        packet: PacketId(packet),
        kind: FlitKind::Single,
        payload: FlitPayload::Data,
        src: CoreId(0),
        dst: CoreId(dst),
        seq: 0,
        packet_len: 1,
        bits: 32,
        class: BandwidthClass::MediumHigh,
        created_cycle: 0,
        injected_cycle: 0,
        vc: VcId(0),
    }
}

fn bench(c: &mut Criterion) {
    c.bench_function("router/step_5port_16vc", |b| {
        let mut router = ElectricalRouter::new(RouterId(0), RouterSpec::new(5, 16, 64));
        router.set_route_fn(Box::new(|dst| PortId(dst.0 % 5)));
        let mut cycle = 0u64;
        let mut packet = 0u64;
        b.iter(|| {
            // Keep the router loaded with one flit per port.
            for port in 0..5 {
                if let Some(vc) = router.free_input_vc(PortId(port)) {
                    packet += 1;
                    let mut flit = make_flit(packet, (port + 1) % 5);
                    flit.vc = vc;
                    let _ = router.accept(PortId(port), vc, flit, cycle);
                }
            }
            let grants = router.step(cycle, |_, _, _| true);
            cycle += 1;
            black_box(grants.len())
        })
    });

    c.bench_function("arbiter/round_robin_16", |b| {
        let mut arb = RoundRobinArbiter::new(16);
        let requests = [true; 16];
        b.iter(|| black_box(arb.grant(&requests)))
    });

    c.bench_function("arbiter/matrix_16", |b| {
        let mut arb = MatrixArbiter::new(16);
        let requests = [true; 16];
        b.iter(|| black_box(arb.grant(&requests)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
