//! Property and unit tests for the persistent executor: exactly-once
//! execution, index-correct results, panic propagation, bitwise
//! 1-thread == sequential, scopes, and shutdown/drain.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

use pnoc_exec::Pool;
use proptest::prelude::*;

/// Deterministic per-index payload (splitmix64) so index mix-ups are loud.
fn payload(index: usize) -> u64 {
    let mut z = (index as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every job runs exactly once and its result lands at the submitted
    /// index, for arbitrary batch sizes and parallelism limits.
    #[test]
    fn batch_runs_exactly_once_at_right_index(n in 0usize..150, limit in 1usize..6) {
        let pool = Pool::new();
        let items: Vec<usize> = (0..n).collect();
        let counters: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let results = pool.run_batch_with_limit(limit, &items, |index, &item| {
            counters[index].fetch_add(1, Ordering::SeqCst);
            assert_eq!(index, item, "job observed the wrong index");
            payload(item)
        });
        prop_assert_eq!(results.len(), n);
        for (index, result) in results.into_iter().enumerate() {
            prop_assert_eq!(result, payload(index));
            prop_assert_eq!(counters[index].load(Ordering::SeqCst), 1);
        }
        pool.shutdown();
    }
}

/// A 1-limit batch must be bitwise-identical to the sequential loop — it is
/// the same loop, never touching the pool.
#[test]
fn one_thread_batch_is_bitwise_sequential() {
    let pool = Pool::new();
    let items: Vec<f64> = (0..64).map(|i| 0.1 + i as f64 * 0.37).collect();
    let f = |x: &f64| (x.sin() * 1e6).sqrt() + x.powi(3) / 7.0;
    let sequential: Vec<u64> = items.iter().map(|x| f(x).to_bits()).collect();
    let pooled: Vec<u64> = pool.run_batch_with_limit(1, &items, |_, x| f(x).to_bits());
    assert_eq!(sequential, pooled);
    // And with real workers the values still match bitwise, because each
    // job is a pure function of its input.
    let parallel: Vec<u64> = pool.run_batch_with_limit(4, &items, |_, x| f(x).to_bits());
    assert_eq!(sequential, parallel);
    pool.shutdown();
}

/// A panicking job surfaces its payload on the submitting thread, and the
/// pool stays usable afterwards.
#[test]
fn batch_panic_propagates_and_pool_survives() {
    let pool = Pool::new();
    let items: Vec<usize> = (0..40).collect();
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        pool.run_batch_with_limit(4, &items, |_, &item| {
            assert!(item != 17, "injected failure at 17");
            item * 2
        })
    }));
    let payload = outcome.expect_err("panic must propagate to the submitter");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .unwrap_or_else(|| "<non-string payload>".to_owned());
    assert!(
        message.contains("injected failure"),
        "unexpected payload: {message}"
    );
    // Pool is still healthy.
    let results = pool.run_batch_with_limit(4, &items, |_, &item| item + 1);
    assert_eq!(results, (1..=40).collect::<Vec<_>>());
    pool.shutdown();
}

/// Concurrent batches on one pool don't cross results.
#[test]
fn concurrent_batches_do_not_interfere() {
    let pool = Pool::new();
    let barrier = Barrier::new(4);
    std::thread::scope(|s| {
        for lane in 0u64..4 {
            let pool = &pool;
            let barrier = &barrier;
            s.spawn(move || {
                barrier.wait();
                let items: Vec<u64> = (0..200).map(|i| i + lane * 1000).collect();
                let results = pool.run_batch_with_limit(3, &items, |_, &x| payload(x as usize));
                for (i, r) in results.into_iter().enumerate() {
                    assert_eq!(r, payload((i as u64 + lane * 1000) as usize));
                }
            });
        }
    });
    pool.shutdown();
}

/// Nested batches (a batch submitted from inside a batch job) complete
/// without deadlock because submitters participate inline.
#[test]
fn nested_batches_complete() {
    let pool = Pool::new();
    let outer: Vec<usize> = (0..8).collect();
    let results = pool.run_batch_with_limit(2, &outer, |_, &o| {
        let inner: Vec<usize> = (0..16).map(|i| i + o * 100).collect();
        pool.run_batch_with_limit(2, &inner, |_, &x| payload(x))
            .iter()
            .fold(0u64, |acc, &x| acc.wrapping_add(x))
    });
    for (o, got) in results.into_iter().enumerate() {
        let want: u64 = (0..16)
            .map(|i| payload(i + o * 100))
            .fold(0u64, |acc, x| acc.wrapping_add(x));
        assert_eq!(got, want);
    }
    pool.shutdown();
}

/// Scope jobs all run before `scope` returns, may borrow the stack, and may
/// spawn transitively.
#[test]
fn scope_joins_all_jobs_including_nested() {
    let seen: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    pnoc_exec::scope(|s| {
        for i in 0..24 {
            let seen = &seen;
            s.spawn(move || {
                seen.lock().unwrap().push(i);
            });
        }
        // A job that spawns another job while running.
        let seen_ref = &seen;
        s.spawn(move || {
            seen_ref.lock().unwrap().push(1000);
        });
    });
    let mut got = seen.into_inner().unwrap();
    got.sort_unstable();
    let mut want: Vec<usize> = (0..24).collect();
    want.push(1000);
    assert_eq!(got, want);
}

/// A panic in a scope job is re-raised by `scope` after all jobs joined.
#[test]
fn scope_propagates_job_panics() {
    let ran = AtomicUsize::new(0);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        pnoc_exec::scope(|s| {
            for i in 0..8 {
                let ran = &ran;
                s.spawn(move || {
                    ran.fetch_add(1, Ordering::SeqCst);
                    assert!(i != 3, "scope job failure");
                });
            }
        });
    }));
    assert!(outcome.is_err(), "scope must re-raise the job panic");
    assert_eq!(
        ran.load(Ordering::SeqCst),
        8,
        "all jobs joined before unwinding"
    );
}

/// Shutdown drains queued work, joins workers, and later submissions run
/// inline (degraded sequential mode) instead of being refused.
#[test]
fn shutdown_drains_and_degrades_to_inline() {
    let pool = Pool::new();
    let items: Vec<usize> = (0..50).collect();
    let before = pool.run_batch_with_limit(4, &items, |_, &x| x * 3);
    assert!(
        pool.stats().workers >= 1,
        "batch with limit > 1 spawns workers"
    );
    pool.shutdown();
    assert!(pool.is_shut_down());
    let after = pool.run_batch_with_limit(4, &items, |_, &x| x * 3);
    assert_eq!(before, after);
    assert_eq!(after[49], 147);
    let ran = std::sync::Arc::new(AtomicUsize::new(0));
    pool.spawn({
        let ran = std::sync::Arc::clone(&ran);
        move || {
            ran.fetch_add(1, Ordering::SeqCst);
        }
    });
    assert_eq!(
        ran.load(Ordering::SeqCst),
        1,
        "post-shutdown spawn runs inline"
    );
}

/// Empty batches and single-item batches short-circuit correctly.
#[test]
fn degenerate_batches() {
    let pool = Pool::new();
    let empty: Vec<u32> = Vec::new();
    let out: Vec<u32> = pool.run_batch_with_limit(4, &empty, |_, &x| x);
    assert!(out.is_empty());
    let one = [41u32];
    let out: Vec<u32> = pool.run_batch_with_limit(4, &one, |_, &x| x + 1);
    assert_eq!(out, vec![42]);
    pool.shutdown();
}
