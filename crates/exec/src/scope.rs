//! Scoped jobs on the persistent pool.
//!
//! [`scope`] lets jobs borrow from the caller's stack (lifetime `'env`)
//! while running on long-lived pool workers. Soundness rests on the join
//! protocol: `scope` does not return — not even by unwinding — until the
//! scope's queue is empty **and** no spawned job is still executing. Jobs
//! are queued under one mutex together with the active count, so the exit
//! predicate (`queue empty && active == 0`) is checked against a consistent
//! snapshot; a job that spawns further jobs is itself active, keeping the
//! predicate false until its children are visible.

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::pool::{global, resolve_worker_limit};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct ScopeState {
    queue: VecDeque<Job>,
    active: usize,
}

struct ScopeCore {
    state: Mutex<ScopeState>,
    idle: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl ScopeCore {
    fn new() -> Self {
        ScopeCore {
            state: Mutex::new(ScopeState {
                queue: VecDeque::new(),
                active: 0,
            }),
            idle: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    /// Pop-and-run scope jobs until the queue is empty. Popping and entering
    /// the active count happen under one lock acquisition, so the exit
    /// predicate can never observe a claimed-but-uncounted job.
    fn drain(&self) {
        loop {
            let job = {
                let mut state = self.state.lock().expect("scope state poisoned");
                match state.queue.pop_front() {
                    Some(job) => {
                        state.active += 1;
                        job
                    }
                    None => break,
                }
            };
            let outcome = catch_unwind(AssertUnwindSafe(job));
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().expect("scope panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            let now_idle = {
                let mut state = self.state.lock().expect("scope state poisoned");
                state.active -= 1;
                state.active == 0 && state.queue.is_empty()
            };
            if now_idle {
                self.idle.notify_all();
            }
        }
    }

    fn wait_idle(&self) {
        let mut state = self.state.lock().expect("scope state poisoned");
        while state.active != 0 || !state.queue.is_empty() {
            let (next_state, _) = self
                .idle
                .wait_timeout(state, Duration::from_millis(100))
                .expect("scope state poisoned");
            state = next_state;
        }
    }
}

/// Handle passed to the [`scope`] closure; spawns jobs that may borrow
/// anything outliving the scope.
pub struct Scope<'env> {
    core: Arc<ScopeCore>,
    // Invariant over 'env so the borrow checker cannot shrink borrows handed
    // to spawned jobs.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Spawn a job onto the pool. The job may borrow `'env` data; it is
    /// guaranteed to finish before the enclosing [`scope`] call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(f);
        // SAFETY: lifetime erasure only. `scope` joins every spawned job
        // (queue empty + active == 0) before returning or unwinding, so the
        // job cannot outlive 'env. Box<dyn Trait + 'a> and
        // Box<dyn Trait + 'static> share one layout (fat pointer).
        let job: Job = unsafe { std::mem::transmute(job) };
        let pool = global();
        self.core
            .state
            .lock()
            .expect("scope state poisoned")
            .queue
            .push_back(job);
        if pool.is_shut_down() {
            // Degraded mode: no workers left, run the queue inline now.
            self.core.drain();
            return;
        }
        pool.ensure_workers(resolve_worker_limit(usize::MAX));
        let core = Arc::clone(&self.core);
        pool.inject(Box::new(move || core.drain()));
    }
}

/// Run `f` with a [`Scope`] handle, then run/join every job it spawned
/// (directly or transitively) before returning. The first panic from a
/// spawned job — or from `f` itself — is re-raised afterwards, matching
/// `std::thread::scope` semantics.
pub fn scope<'env, T>(f: impl FnOnce(&Scope<'env>) -> T) -> T {
    let handle = Scope {
        core: Arc::new(ScopeCore::new()),
        _env: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&handle)));
    // Join before unwinding in every case: spawned jobs borrow 'env.
    handle.core.drain();
    handle.core.wait_idle();
    match result {
        Ok(value) => {
            if let Some(payload) = handle
                .core
                .panic
                .lock()
                .expect("scope panic slot poisoned")
                .take()
            {
                resume_unwind(payload);
            }
            value
        }
        Err(payload) => resume_unwind(payload),
    }
}
