#![doc = include_str!("exec.md")]
#![warn(missing_docs)]

mod batch;
mod pool;
mod scope;

pub use pool::{
    global, resolve_worker_limit, set_worker_override, worker_override, Pool, PoolStats,
};
pub use scope::{scope, Scope};

/// Run `f` over every element of `items` on the global pool and return the
/// results in submission order.
///
/// Each job writes its result directly into a dedicated per-index slot, so
/// results land at their submitted index with no shared collector lock and no
/// post-hoc sort. The effective parallelism is
/// [`resolve_worker_limit`]`(items.len())`; when that resolves to 1 the batch
/// runs inline on the calling thread without touching the pool, which makes
/// the single-thread path trivially bitwise-identical to a sequential loop.
///
/// If any job panics the first payload is re-raised on the calling thread
/// after every in-flight job has drained.
pub fn run_batch<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    global().run_batch(items, f)
}

/// Ensure the global pool has spawned its workers and return the cumulative
/// time (seconds) spent spawning them. Useful to front-load worker startup
/// before timing-sensitive work and to report `pool_startup_seconds`.
pub fn warm_up() -> f64 {
    let pool = global();
    pool.ensure_workers(resolve_worker_limit(usize::MAX));
    pool.startup_seconds()
}
