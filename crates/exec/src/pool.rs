//! The persistent worker pool: per-worker LIFO deques, a shared injector for
//! external submissions, random-victim stealing, and a graceful
//! shutdown/drain path.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::time::{Duration, Instant};

use crate::batch;

/// Upper bound on spawned workers, far above any realistic `--threads` value.
const MAX_WORKERS: usize = 256;

/// How long an idle worker sleeps before re-checking the queues. The condvar
/// wake protocol makes lost wakeups impossible; the timeout is purely a
/// belt-and-braces backstop.
const IDLE_PARK: Duration = Duration::from_millis(200);

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Explicit worker-count override (0 = unset). Takes precedence over the
/// `RAYON_NUM_THREADS` environment variable and detected parallelism.
static WORKER_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Set an explicit worker-count override for subsequent batch submissions
/// (equivalent to the repro CLI's `--threads N`). `threads == 0` clears the
/// override. The persistent pool grows lazily to the largest limit observed
/// and never shrinks; a lower override simply bounds per-batch parallelism.
pub fn set_worker_override(threads: usize) {
    WORKER_OVERRIDE.store(threads, Ordering::SeqCst);
}

/// Current explicit override (0 = unset).
pub fn worker_override() -> usize {
    WORKER_OVERRIDE.load(Ordering::SeqCst)
}

/// Resolve the worker limit for a batch of `jobs` items.
///
/// Precedence: explicit [`set_worker_override`] value, then the
/// `RAYON_NUM_THREADS` environment variable, then detected hardware
/// parallelism — capped at the job count so tiny batches never pay for spare
/// workers.
pub fn resolve_worker_limit(jobs: usize) -> usize {
    let override_threads = WORKER_OVERRIDE.load(Ordering::SeqCst);
    let configured = if override_threads > 0 {
        override_threads
    } else if let Ok(value) = std::env::var("RAYON_NUM_THREADS") {
        value
            .trim()
            .parse::<usize>()
            .ok()
            .filter(|&n| n > 0)
            .unwrap_or(1)
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    configured.min(jobs.max(1)).min(MAX_WORKERS)
}

/// Counters describing pool activity since creation.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolStats {
    /// Workers spawned so far.
    pub workers: usize,
    /// Jobs executed to completion (including panicked jobs).
    pub jobs_run: u64,
    /// Jobs whose closure panicked. Batch panics are propagated to the
    /// submitter as well; detached `spawn` panics are only counted.
    pub jobs_panicked: u64,
}

struct WorkerQueue {
    jobs: Mutex<VecDeque<Job>>,
}

struct Shared {
    /// Per-worker deques. Owners push/pop the back (LIFO); thieves pop the
    /// front (FIFO), so the oldest — typically largest — work migrates first.
    queues: Mutex<Vec<Arc<WorkerQueue>>>,
    /// Overflow queue for submissions from non-worker threads.
    injector: Mutex<VecDeque<Job>>,
    /// Number of queued-but-not-started jobs across all queues.
    pending: AtomicUsize,
    sleep: Mutex<()>,
    wake: Condvar,
    shutting_down: AtomicBool,
    jobs_run: AtomicU64,
    jobs_panicked: AtomicU64,
}

thread_local! {
    /// Identity of the pool worker running on this thread, if any. Lets
    /// submissions from inside a job land on the worker's own LIFO deque.
    static CURRENT_WORKER: RefCell<Option<(Weak<Shared>, Arc<WorkerQueue>)>> =
        const { RefCell::new(None) };
}

/// A persistent work-stealing thread pool.
///
/// Workers are spawned lazily on first use (and grown when a larger limit is
/// requested) and then reused for the life of the pool — no per-batch thread
/// spawn/teardown. Most callers want the process-wide [`global`] pool;
/// standalone pools exist for tests and for [`Pool::shutdown`] coverage.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    startup_seconds: Mutex<f64>,
}

impl Default for Pool {
    fn default() -> Self {
        Self::new()
    }
}

impl Pool {
    /// Create an empty pool; workers are spawned on demand.
    pub fn new() -> Self {
        Pool {
            shared: Arc::new(Shared {
                queues: Mutex::new(Vec::new()),
                injector: Mutex::new(VecDeque::new()),
                pending: AtomicUsize::new(0),
                sleep: Mutex::new(()),
                wake: Condvar::new(),
                shutting_down: AtomicBool::new(false),
                jobs_run: AtomicU64::new(0),
                jobs_panicked: AtomicU64::new(0),
            }),
            handles: Mutex::new(Vec::new()),
            startup_seconds: Mutex::new(0.0),
        }
    }

    /// Grow the pool to at least `target` workers (no-op if already there or
    /// shutting down). Records cumulative spawn time for
    /// [`Pool::startup_seconds`].
    pub fn ensure_workers(&self, target: usize) {
        let target = target.min(MAX_WORKERS);
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        let mut handles = self.handles.lock().expect("pool handle list poisoned");
        if handles.len() >= target {
            return;
        }
        let started = Instant::now();
        let mut queues = self.shared.queues.lock().expect("pool queue list poisoned");
        for index in handles.len()..target {
            let queue = Arc::new(WorkerQueue {
                jobs: Mutex::new(VecDeque::new()),
            });
            queues.push(Arc::clone(&queue));
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("pnoc-exec-{index}"))
                .spawn(move || worker_loop(shared, queue, index as u64))
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        drop(queues);
        *self.startup_seconds.lock().expect("startup timer poisoned") +=
            started.elapsed().as_secs_f64();
    }

    /// Cumulative seconds spent spawning workers so far.
    pub fn startup_seconds(&self) -> f64 {
        *self.startup_seconds.lock().expect("startup timer poisoned")
    }

    /// Snapshot of activity counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self
                .handles
                .lock()
                .expect("pool handle list poisoned")
                .len(),
            jobs_run: self.shared.jobs_run.load(Ordering::SeqCst),
            jobs_panicked: self.shared.jobs_panicked.load(Ordering::SeqCst),
        }
    }

    /// True once [`Pool::shutdown`] has been called. A shut-down pool runs
    /// all further submissions inline on the caller, so it degrades to
    /// sequential execution rather than refusing work.
    pub fn is_shut_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Submit a detached job. Runs on a pool worker; panics are caught and
    /// counted (see [`PoolStats::jobs_panicked`]), mirroring detached-spawn
    /// semantics. If the pool has been shut down the job runs inline.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        if self.is_shut_down() {
            let outcome = catch_unwind(AssertUnwindSafe(job));
            self.shared.jobs_run.fetch_add(1, Ordering::SeqCst);
            if outcome.is_err() {
                self.shared.jobs_panicked.fetch_add(1, Ordering::SeqCst);
            }
            return;
        }
        self.ensure_workers(resolve_worker_limit(usize::MAX));
        self.inject(Box::new(job));
    }

    /// Queue a job: onto the current worker's LIFO deque when called from
    /// inside this pool, otherwise onto the shared injector.
    pub(crate) fn inject(&self, job: Job) {
        // Count before publishing so `pending` never under-counts a popped
        // job (workers decrement only after a successful pop).
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        let unrouted = CURRENT_WORKER.with(move |current| {
            if let Some((shared, queue)) = current.borrow().as_ref() {
                if let Some(shared) = shared.upgrade() {
                    if Arc::ptr_eq(&shared, &self.shared) {
                        queue
                            .jobs
                            .lock()
                            .expect("worker deque poisoned")
                            .push_back(job);
                        return None;
                    }
                }
            }
            Some(job)
        });
        if let Some(job) = unrouted {
            self.shared
                .injector
                .lock()
                .expect("pool injector poisoned")
                .push_back(job);
        }
        let _guard = self.shared.sleep.lock().expect("pool sleep lock poisoned");
        self.shared.wake.notify_one();
    }

    /// Run an indexed batch on this pool. See [`crate::run_batch`].
    pub fn run_batch<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let limit = resolve_worker_limit(items.len());
        self.run_batch_with_limit(limit, items, f)
    }

    /// Run an indexed batch with an explicit parallelism limit (test hook;
    /// production callers go through [`resolve_worker_limit`]).
    pub fn run_batch_with_limit<T, R, F>(&self, limit: usize, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        batch::run(self, limit, items, f)
    }

    /// Drain queued work, stop all workers, and join them. Jobs already
    /// queued still run; submissions after shutdown run inline on the caller.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        {
            let _guard = self.shared.sleep.lock().expect("pool sleep lock poisoned");
            self.shared.wake.notify_all();
        }
        let handles: Vec<_> = self
            .handles
            .lock()
            .expect("pool handle list poisoned")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// The process-wide pool backing [`crate::run_batch`] and [`crate::scope`].
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(Pool::new)
}

fn worker_loop(shared: Arc<Shared>, queue: Arc<WorkerQueue>, seed: u64) {
    CURRENT_WORKER.with(|current| {
        *current.borrow_mut() = Some((Arc::downgrade(&shared), Arc::clone(&queue)));
    });
    // splitmix64 state for random victim selection; seeded per worker so
    // thieves scatter instead of convoying on one victim.
    let mut rng = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(0x243f_6a88_85a3_08d3);
    loop {
        if let Some(job) = next_job(&shared, &queue, &mut rng) {
            shared.pending.fetch_sub(1, Ordering::SeqCst);
            let outcome = catch_unwind(AssertUnwindSafe(job));
            shared.jobs_run.fetch_add(1, Ordering::SeqCst);
            if outcome.is_err() {
                shared.jobs_panicked.fetch_add(1, Ordering::SeqCst);
            }
            continue;
        }
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let guard = shared.sleep.lock().expect("pool sleep lock poisoned");
        if shared.pending.load(Ordering::SeqCst) == 0
            && !shared.shutting_down.load(Ordering::SeqCst)
        {
            let _ = shared.wake.wait_timeout(guard, IDLE_PARK);
        }
    }
}

fn next_job(shared: &Shared, own: &WorkerQueue, rng: &mut u64) -> Option<Job> {
    // Own deque first, LIFO end: freshest work, warmest caches, and nested
    // batch runners execute before older siblings.
    if let Some(job) = own.jobs.lock().expect("worker deque poisoned").pop_back() {
        return Some(job);
    }
    if let Some(job) = shared
        .injector
        .lock()
        .expect("pool injector poisoned")
        .pop_front()
    {
        return Some(job);
    }
    // Steal from a random victim, FIFO end.
    let victims: Vec<Arc<WorkerQueue>> = shared
        .queues
        .lock()
        .expect("pool queue list poisoned")
        .clone();
    if victims.is_empty() {
        return None;
    }
    *rng ^= *rng << 13;
    *rng ^= *rng >> 7;
    *rng ^= *rng << 17;
    let start = (*rng as usize) % victims.len();
    for offset in 0..victims.len() {
        let victim = &victims[(start + offset) % victims.len()];
        if std::ptr::eq(Arc::as_ptr(victim), own) {
            continue;
        }
        if let Some(job) = victim
            .jobs
            .lock()
            .expect("worker deque poisoned")
            .pop_front()
        {
            return Some(job);
        }
    }
    None
}
