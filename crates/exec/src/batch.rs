//! Indexed batch execution on a persistent pool.
//!
//! A batch borrows the caller's stack (`items`, the closure, and the result
//! slots), so its central obligation is: **no runner may touch that stack
//! after the submitting call returns**. The proof hinges on one packed
//! atomic word (`BatchCore::word`):
//!
//! * low 32 bits — next unclaimed index (monotonic, saturates at `n`),
//! * high 32 bits — number of claims currently executing.
//!
//! Claiming an index and becoming "active" is a single CAS, finishing is a
//! single `fetch_sub`, and the submitter's completion predicate
//! (`next >= n && active == 0`) is a single load. There is no window in
//! which a runner holds an index without being visible in the active count,
//! so the submitter cannot return while any runner can still dereference the
//! stack. Runner jobs left in pool queues after completion hold only an
//! `Arc<BatchCore>`; their claims fail immediately and they exit without
//! touching the (now dangling) data pointer.

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

use crate::pool::Pool;

const LOW_MASK: u64 = 0xffff_ffff;
const ACTIVE_ONE: u64 = 1 << 32;

/// Borrowed view of the submitter's stack, type-erased behind `BatchCore`.
struct BatchData<'a, T, R, F> {
    items: &'a [T],
    f: &'a F,
    /// One lock-free slot per index; each claimed job writes exactly one.
    slots: &'a [OnceLock<R>],
}

struct BatchCore {
    word: AtomicU64,
    n: u64,
    data: *const (),
    run: unsafe fn(*const (), usize),
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    gate: Mutex<()>,
    done: Condvar,
}

// SAFETY: `data` points at `BatchData`, whose fields are `&[T]`, `&F`, and
// `&[OnceLock<R>]` with `T: Sync`, `F: Sync`, `R: Send` enforced by `run`.
// The pointer is only dereferenced between a successful claim and the
// matching finish, and the submitter blocks until no such window can open
// again (see module docs).
unsafe impl Send for BatchCore {}
unsafe impl Sync for BatchCore {}

unsafe fn run_one<T, R, F>(data: *const (), index: usize)
where
    F: Fn(usize, &T) -> R,
{
    let data = unsafe { &*data.cast::<BatchData<'_, T, R, F>>() };
    let result = (data.f)(index, &data.items[index]);
    // Exactly-once is guaranteed by the claim CAS; `set` can only fail if
    // that invariant broke, which would also corrupt results silently.
    assert!(
        data.slots[index].set(result).is_ok(),
        "batch index {index} claimed twice"
    );
}

impl BatchCore {
    fn is_complete(word: u64, n: u64) -> bool {
        (word & LOW_MASK) >= n && (word >> 32) == 0
    }

    /// Atomically claim the next index and enter the active count.
    fn claim(&self) -> Option<usize> {
        let mut current = self.word.load(Ordering::SeqCst);
        loop {
            let next = current & LOW_MASK;
            if next >= self.n {
                return None;
            }
            match self.word.compare_exchange_weak(
                current,
                current + 1 + ACTIVE_ONE,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return Some(next as usize),
                Err(now) => current = now,
            }
        }
    }

    /// Forbid further claims (used on panic) without disturbing the active
    /// count: set the low bits to `n` in one CAS loop.
    fn close(&self) {
        let mut current = self.word.load(Ordering::SeqCst);
        loop {
            if (current & LOW_MASK) >= self.n {
                return;
            }
            let target = (current & !LOW_MASK) | self.n;
            match self.word.compare_exchange_weak(
                current,
                target,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => return,
                Err(now) => current = now,
            }
        }
    }

    /// Leave the active count; wake the submitter if this was the last job.
    fn finish_one(&self) {
        let after = self.word.fetch_sub(ACTIVE_ONE, Ordering::SeqCst) - ACTIVE_ONE;
        if Self::is_complete(after, self.n) {
            // Taking the gate orders this notify after the submitter's
            // predicate check, so the wakeup cannot be lost.
            let _gate = self.gate.lock().expect("batch gate poisoned");
            self.done.notify_all();
        }
    }

    /// Claim-and-run until no indices remain. Runs on pool workers and,
    /// crucially, inline on the submitting thread — so a batch always makes
    /// progress even when every worker is busy (nested batches cannot
    /// deadlock) and `limit == 1` never touches the pool.
    fn run_to_exhaustion(&self) {
        while let Some(index) = self.claim() {
            let outcome =
                catch_unwind(AssertUnwindSafe(|| unsafe { (self.run)(self.data, index) }));
            if let Err(payload) = outcome {
                let mut slot = self.panic.lock().expect("batch panic slot poisoned");
                if slot.is_none() {
                    *slot = Some(payload);
                }
                drop(slot);
                self.close();
            }
            self.finish_one();
        }
    }

    fn wait_complete(&self) {
        let mut gate = self.gate.lock().expect("batch gate poisoned");
        while !Self::is_complete(self.word.load(Ordering::SeqCst), self.n) {
            let (next_gate, _) = self
                .done
                .wait_timeout(gate, Duration::from_millis(100))
                .expect("batch gate poisoned");
            gate = next_gate;
        }
    }
}

pub(crate) fn run<T, R, F>(pool: &Pool, limit: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    // The sequential inline path: no pool interaction at all, so a 1-thread
    // run is bitwise-identical to a plain loop by construction.
    if limit <= 1 || n == 1 || pool.is_shut_down() {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    assert!(
        n < u32::MAX as usize,
        "batch too large for packed claim word"
    );

    let slots: Vec<OnceLock<R>> = (0..n).map(|_| OnceLock::new()).collect();
    let data = BatchData {
        items,
        f: &f,
        slots: &slots,
    };
    let core = Arc::new(BatchCore {
        word: AtomicU64::new(0),
        n: n as u64,
        data: (&data as *const BatchData<'_, T, R, F>).cast(),
        run: run_one::<T, R, F>,
        panic: Mutex::new(None),
        gate: Mutex::new(()),
        done: Condvar::new(),
    });

    // The submitter participates inline, so `limit` total executors need
    // `limit - 1` queued runners. Idle workers steal them; busy pools just
    // leave them as cheap no-ops once the batch drains.
    let runners = limit.min(n) - 1;
    pool.ensure_workers(limit.min(n));
    for _ in 0..runners {
        let core = Arc::clone(&core);
        pool.inject(Box::new(move || core.run_to_exhaustion()));
    }
    core.run_to_exhaustion();
    core.wait_complete();

    if let Some(payload) = core.panic.lock().expect("batch panic slot poisoned").take() {
        resume_unwind(payload);
    }
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("every index claimed exactly once"))
        .collect()
}
