//! Simulation configuration (Table 3-1 and Table 3-3 of the thesis).

use crate::clock::Clock;
use pnoc_noc::packet::BandwidthClass;
use pnoc_noc::router::RouterSpec;
use pnoc_noc::topology::ClusterTopology;
use serde::{Deserialize, Serialize};

/// The three aggregate-bandwidth design points of Table 3-1 / Table 3-3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BandwidthSet {
    /// 64 total data wavelengths; application bandwidths 12.5–100 Gbps;
    /// 64-flit packets of 32-bit flits.
    Set1,
    /// 256 total data wavelengths; application bandwidths 50–400 Gbps;
    /// 16-flit packets of 128-bit flits.
    Set2,
    /// 512 total data wavelengths; application bandwidths 100–800 Gbps;
    /// 8-flit packets of 256-bit flits.
    Set3,
}

impl BandwidthSet {
    /// All three sets in increasing-bandwidth order.
    pub const ALL: [BandwidthSet; 3] = [BandwidthSet::Set1, BandwidthSet::Set2, BandwidthSet::Set3];

    /// Total number of DWDM data wavelengths in the fabric.
    #[must_use]
    pub fn total_wavelengths(self) -> usize {
        match self {
            BandwidthSet::Set1 => 64,
            BandwidthSet::Set2 => 256,
            BandwidthSet::Set3 => 512,
        }
    }

    /// Number of flits per packet (Table 3-3).
    #[must_use]
    pub fn packet_flits(self) -> u32 {
        match self {
            BandwidthSet::Set1 => 64,
            BandwidthSet::Set2 => 16,
            BandwidthSet::Set3 => 8,
        }
    }

    /// Flit size in bits (Table 3-3).
    #[must_use]
    pub fn flit_bits(self) -> u32 {
        match self {
            BandwidthSet::Set1 => 32,
            BandwidthSet::Set2 => 128,
            BandwidthSet::Set3 => 256,
        }
    }

    /// Total packet size in bits (2048 for every set: 64×32 = 16×128 = 8×256).
    #[must_use]
    pub fn packet_bits(self) -> u64 {
        u64::from(self.packet_flits()) * u64::from(self.flit_bits())
    }

    /// Wavelengths of each Firefly write channel (uniform static allocation:
    /// `total / 16`, Table 3-3).
    ///
    /// Deprecated: this architecture-specific knob now lives in the Firefly
    /// builder's parameter schema (`firefly{radix=...}`; the default radix
    /// of 16 reproduces this value). Architecture-agnostic callers want
    /// [`BandwidthSet::class_wavelengths`] with
    /// [`BandwidthClass::MediumHigh`], which this forwards to.
    #[deprecated(
        since = "0.6.0",
        note = "use the firefly builder's `radix` parameter (pnoc-firefly) or \
                `class_wavelengths(BandwidthClass::MediumHigh)`"
    )]
    #[must_use]
    pub fn firefly_wavelengths_per_channel(self) -> usize {
        self.class_wavelengths(BandwidthClass::MediumHigh)
    }

    /// Maximum wavelengths a d-HetPNoC cluster may hold (Table 3-3:
    /// "maximum channel bandwidth of 8 / 32 / 64 channels").
    ///
    /// Deprecated: this architecture-specific knob now lives in the
    /// d-HetPNoC builder's parameter schema (`d-hetpnoc{max_wavelengths=...}`;
    /// the default of 0 = auto reproduces this value). Architecture-agnostic
    /// callers want [`BandwidthSet::class_wavelengths`] with
    /// [`BandwidthClass::High`], which this forwards to.
    #[deprecated(
        since = "0.6.0",
        note = "use the d-hetpnoc builder's `max_wavelengths` parameter \
                (pnoc-dhetpnoc) or `class_wavelengths(BandwidthClass::High)`"
    )]
    #[must_use]
    pub fn dhet_max_channel_wavelengths(self) -> usize {
        self.class_wavelengths(BandwidthClass::High)
    }

    /// Wavelengths needed by the *lowest* application bandwidth of the set
    /// (12.5 / 50 / 100 Gbps → 1 / 4 / 8 wavelengths at 12.5 Gb/s each).
    #[must_use]
    pub fn min_class_wavelengths(self) -> usize {
        self.total_wavelengths() / 64
    }

    /// Wavelengths demanded by an application of the given bandwidth class
    /// within this set (doubles per class: 1/2/4/8 × the set's minimum).
    #[must_use]
    pub fn class_wavelengths(self, class: BandwidthClass) -> usize {
        self.min_class_wavelengths() * class.multiplier()
    }

    /// Application bandwidth in Gbps for a class within this set (Table 3-1).
    #[must_use]
    pub fn class_bandwidth_gbps(self, class: BandwidthClass, wavelength_rate_gbps: f64) -> f64 {
        self.class_wavelengths(class) as f64 * wavelength_rate_gbps
    }

    /// Human-readable label used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BandwidthSet::Set1 => "BW Set 1 (64 wavelengths)",
            BandwidthSet::Set2 => "BW Set 2 (256 wavelengths)",
            BandwidthSet::Set3 => "BW Set 3 (512 wavelengths)",
        }
    }

    /// Compact machine-readable name (`"set1"`, `"set2"`, `"set3"`), used in
    /// scenario identifiers and serialized specs.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            BandwidthSet::Set1 => "set1",
            BandwidthSet::Set2 => "set2",
            BandwidthSet::Set3 => "set3",
        }
    }

    /// Parses a compact set name (the inverse of [`BandwidthSet::short_name`];
    /// also accepts the bare digit, e.g. `"2"`).
    #[must_use]
    pub fn from_short_name(name: &str) -> Option<Self> {
        match name {
            "set1" | "1" => Some(BandwidthSet::Set1),
            "set2" | "2" => Some(BandwidthSet::Set2),
            "set3" | "3" => Some(BandwidthSet::Set3),
            _ => None,
        }
    }
}

/// Full simulation configuration (Table 3-3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Cluster topology (16 clusters of 4 cores in the paper).
    pub topology: ClusterTopology,
    /// Aggregate-bandwidth design point.
    pub bandwidth_set: BandwidthSet,
    /// System clock.
    pub clock: Clock,
    /// Line rate per DWDM wavelength, Gb/s (12.5).
    pub wavelength_rate_gbps: f64,
    /// Maximum DWDM wavelengths per waveguide (64).
    pub wavelengths_per_waveguide: usize,
    /// Measured simulation cycles (10 000).
    pub sim_cycles: u64,
    /// Warm-up (reset) cycles excluded from measurement (1 000).
    pub warmup_cycles: u64,
    /// Virtual channels per router port (16).
    pub vcs_per_port: usize,
    /// Buffer depth per virtual channel, flits (64).
    pub vc_depth: usize,
    /// Maximum packets waiting in a core's injection queue before new packets
    /// are dropped (models finite source queues; drops indicate saturation).
    pub injection_queue_capacity: usize,
    /// Seed for every pseudo-random decision of the run.
    pub seed: u64,
}

impl SimConfig {
    /// The paper's configuration for a given bandwidth set.
    #[must_use]
    pub fn paper_default(set: BandwidthSet) -> Self {
        Self {
            topology: ClusterTopology::paper_default(),
            bandwidth_set: set,
            clock: Clock::paper_default(),
            wavelength_rate_gbps: 12.5,
            wavelengths_per_waveguide: 64,
            sim_cycles: 10_000,
            warmup_cycles: 1_000,
            vcs_per_port: 16,
            vc_depth: 64,
            injection_queue_capacity: 8,
            seed: 0x2014_50CC,
        }
    }

    /// A reduced configuration for unit tests and doc examples: the same
    /// architecture but fewer cycles, fewer VCs and shallower buffers so that
    /// debug builds stay fast.
    #[must_use]
    pub fn fast(set: BandwidthSet) -> Self {
        Self {
            sim_cycles: 1_500,
            warmup_cycles: 300,
            vcs_per_port: 4,
            vc_depth: 64,
            injection_queue_capacity: 4,
            ..Self::paper_default(set)
        }
    }

    /// Total cycles simulated (warm-up + measurement).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.sim_cycles + self.warmup_cycles
    }

    /// Bits carried per wavelength per clock cycle (5 with the paper numbers).
    #[must_use]
    pub fn bits_per_wavelength_per_cycle(&self) -> f64 {
        self.clock
            .bits_per_wavelength_per_cycle(self.wavelength_rate_gbps)
    }

    /// Router specification of the electrical core switches.
    #[must_use]
    pub fn core_switch_spec(&self) -> RouterSpec {
        RouterSpec::new(
            self.topology.switch_ports(),
            self.vcs_per_port,
            self.vc_depth,
        )
    }

    /// Aggregate photonic data bandwidth of the whole fabric, Gb/s.
    #[must_use]
    pub fn aggregate_photonic_bandwidth_gbps(&self) -> f64 {
        self.bandwidth_set.total_wavelengths() as f64 * self.wavelength_rate_gbps
    }

    /// Static electrical power of the photonic fabric in milli-watts: the
    /// laser sources driving every data wavelength (1.5 mW each, Table 3-4)
    /// plus the thermal tuning holding one modulator ring and one detector
    /// ring on-resonance per active data wavelength (3 mW per ring at the
    /// paper's 2.4 mW/nm × 1.25 nm operating point).
    ///
    /// This burns regardless of traffic — 480 mW for bandwidth set 1 —
    /// which is why energy-per-bit comparisons that only count the dynamic
    /// [`crate::stats::SimStats::packet_energy_pj`] undercount: the sweep
    /// engine reports it next to the dynamic totals as the
    /// `static_power_mw` / `total_energy_pj` gauges on every
    /// [`MetricReport`](crate::metrics::MetricReport).
    #[must_use]
    pub fn static_power_mw(&self) -> f64 {
        let wavelengths = self.bandwidth_set.total_wavelengths();
        let laser = pnoc_photonics::laser::LaserSource::paper_default(wavelengths);
        let tuner = pnoc_photonics::thermal::ThermalTuner::paper_default();
        let tuned_rings = 2 * wavelengths; // one modulator + one detector per λ
        laser.power_mw(wavelengths) + tuner.power_mw() * tuned_rings as f64
    }

    /// A rough estimate of the per-core offered load (packets per core per
    /// cycle) that would exactly saturate the aggregate photonic bandwidth.
    /// Sweeps use multiples of this value.
    #[must_use]
    pub fn estimated_saturation_load(&self) -> f64 {
        let bits_per_cycle =
            self.bandwidth_set.total_wavelengths() as f64 * self.bits_per_wavelength_per_cycle();
        let packets_per_cycle = bits_per_cycle / self.bandwidth_set.packet_bits() as f64;
        packets_per_cycle / self.topology.num_cores() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_set_table_3_3_values() {
        assert_eq!(BandwidthSet::Set1.total_wavelengths(), 64);
        assert_eq!(BandwidthSet::Set2.total_wavelengths(), 256);
        assert_eq!(BandwidthSet::Set3.total_wavelengths(), 512);
        assert_eq!(BandwidthSet::Set1.packet_flits(), 64);
        assert_eq!(BandwidthSet::Set2.packet_flits(), 16);
        assert_eq!(BandwidthSet::Set3.packet_flits(), 8);
        assert_eq!(BandwidthSet::Set1.flit_bits(), 32);
        assert_eq!(BandwidthSet::Set2.flit_bits(), 128);
        assert_eq!(BandwidthSet::Set3.flit_bits(), 256);
        for set in BandwidthSet::ALL {
            assert_eq!(set.packet_bits(), 2048);
        }
    }

    #[test]
    #[allow(deprecated)] // pins the deprecated forwards to the param defaults
    fn firefly_and_dhet_channel_widths() {
        assert_eq!(BandwidthSet::Set1.firefly_wavelengths_per_channel(), 4);
        assert_eq!(BandwidthSet::Set2.firefly_wavelengths_per_channel(), 16);
        assert_eq!(BandwidthSet::Set3.firefly_wavelengths_per_channel(), 32);
        assert_eq!(BandwidthSet::Set1.dhet_max_channel_wavelengths(), 8);
        assert_eq!(BandwidthSet::Set2.dhet_max_channel_wavelengths(), 32);
        assert_eq!(BandwidthSet::Set3.dhet_max_channel_wavelengths(), 64);
    }

    #[test]
    fn class_wavelengths_match_table_3_1() {
        // Set 1: 12.5, 25, 50, 100 Gbps → 1, 2, 4, 8 wavelengths.
        let s1 = BandwidthSet::Set1;
        assert_eq!(s1.class_wavelengths(BandwidthClass::Low), 1);
        assert_eq!(s1.class_wavelengths(BandwidthClass::High), 8);
        assert!((s1.class_bandwidth_gbps(BandwidthClass::High, 12.5) - 100.0).abs() < 1e-9);
        // Set 2: 50..400 Gbps.
        let s2 = BandwidthSet::Set2;
        assert!((s2.class_bandwidth_gbps(BandwidthClass::Low, 12.5) - 50.0).abs() < 1e-9);
        assert!((s2.class_bandwidth_gbps(BandwidthClass::High, 12.5) - 400.0).abs() < 1e-9);
        // Set 3: 100..800 Gbps.
        let s3 = BandwidthSet::Set3;
        assert!((s3.class_bandwidth_gbps(BandwidthClass::Low, 12.5) - 100.0).abs() < 1e-9);
        assert!((s3.class_bandwidth_gbps(BandwidthClass::High, 12.5) - 800.0).abs() < 1e-9);
    }

    #[test]
    #[allow(deprecated)] // the forwards must agree with the class widths
    fn highest_class_fits_dhet_max_channel() {
        for set in BandwidthSet::ALL {
            assert_eq!(
                set.class_wavelengths(BandwidthClass::High),
                set.dhet_max_channel_wavelengths()
            );
            assert_eq!(
                set.class_wavelengths(BandwidthClass::MediumHigh),
                set.firefly_wavelengths_per_channel()
            );
            // The paper's literal Table 3-3 formula for the Firefly width.
            assert_eq!(
                set.class_wavelengths(BandwidthClass::MediumHigh),
                set.total_wavelengths() / 16
            );
        }
    }

    #[test]
    fn paper_config_matches_table_3_3() {
        let c = SimConfig::paper_default(BandwidthSet::Set1);
        assert_eq!(c.topology.num_cores(), 64);
        assert_eq!(c.topology.num_clusters(), 16);
        assert_eq!(c.sim_cycles, 10_000);
        assert_eq!(c.warmup_cycles, 1_000);
        assert_eq!(c.vcs_per_port, 16);
        assert_eq!(c.vc_depth, 64);
        assert!((c.bits_per_wavelength_per_cycle() - 5.0).abs() < 1e-12);
        assert!((c.aggregate_photonic_bandwidth_gbps() - 800.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_load_estimate_is_sane() {
        let c = SimConfig::paper_default(BandwidthSet::Set1);
        let load = c.estimated_saturation_load();
        // 320 bits/cycle across the fabric, 2048-bit packets, 64 cores:
        // ≈ 0.00244 packets/core/cycle.
        assert!((load - 0.00244).abs() < 1e-4, "load {load}");
        // Higher bandwidth sets saturate at proportionally higher loads.
        let c3 = SimConfig::paper_default(BandwidthSet::Set3);
        assert!(c3.estimated_saturation_load() > 7.0 * load);
    }

    #[test]
    fn static_power_counts_lasers_and_tuned_rings() {
        // Set 1: 64 λ × 1.5 mW laser + 128 rings × 3 mW heater = 480 mW.
        let c1 = SimConfig::paper_default(BandwidthSet::Set1);
        assert!((c1.static_power_mw() - 480.0).abs() < 1e-9);
        // Scales linearly with the wavelength count.
        let c3 = SimConfig::paper_default(BandwidthSet::Set3);
        assert!((c3.static_power_mw() - 8.0 * c1.static_power_mw()).abs() < 1e-9);
    }

    #[test]
    fn fast_config_is_smaller_but_same_architecture() {
        let f = SimConfig::fast(BandwidthSet::Set2);
        let p = SimConfig::paper_default(BandwidthSet::Set2);
        assert!(f.sim_cycles < p.sim_cycles);
        assert!(f.vcs_per_port < p.vcs_per_port);
        assert_eq!(f.topology, p.topology);
        assert_eq!(f.bandwidth_set, p.bandwidth_set);
    }
}
