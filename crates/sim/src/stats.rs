//! Simulation statistics: throughput, latency, drops and energy.
//!
//! The two headline metrics of the paper's evaluation are derived here:
//!
//! * **Peak bandwidth** — "measured as average number of bits successfully
//!   arriving at all cores per second" (Section 3.4.1.1). [`SimStats`]
//!   accumulates delivered bits during the measurement window and converts
//!   them with the clock.
//! * **Packet energy / energy per message** — "the energy dissipated in
//!   transferring one packet completely from source to destination at network
//!   saturation" (Section 3.4.1.2): the accumulated [`EnergyBreakdown`]
//!   divided by the number of delivered packets.

use crate::clock::Clock;
use pnoc_photonics::energy::EnergyBreakdown;
use serde::{Deserialize, Serialize};

/// A latency histogram with fixed-width bins (in cycles).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    bin_width: u64,
    bins: Vec<u64>,
    overflow: u64,
}

impl LatencyHistogram {
    /// Creates a histogram of `num_bins` bins of `bin_width` cycles each.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    #[must_use]
    pub fn new(bin_width: u64, num_bins: usize) -> Self {
        assert!(bin_width > 0 && num_bins > 0);
        Self {
            bin_width,
            bins: vec![0; num_bins],
            overflow: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        let idx = (latency / self.bin_width) as usize;
        if idx < self.bins.len() {
            self.bins[idx] += 1;
        } else {
            self.overflow += 1;
        }
    }

    /// Total number of recorded samples.
    #[must_use]
    pub fn samples(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.overflow
    }

    /// Number of samples above the last bin.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// The raw bins.
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The bin width in cycles.
    #[must_use]
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Reassembles a histogram from its serialized parts (the inverse of
    /// reading [`LatencyHistogram::bin_width`], [`LatencyHistogram::bins`]
    /// and [`LatencyHistogram::overflow`]). Returns `None` when the parts
    /// violate the constructor invariants (zero bin width or no bins), so a
    /// decoder can reject a tampered document instead of panicking.
    #[must_use]
    pub fn from_parts(bin_width: u64, bins: Vec<u64>, overflow: u64) -> Option<Self> {
        (bin_width > 0 && !bins.is_empty()).then_some(Self {
            bin_width,
            bins,
            overflow,
        })
    }

    /// Approximate latency below which percentile `p` (0..=100) of samples
    /// fall (`percentile(95.0) == quantile(0.95)`). Returns `None` when the
    /// histogram is empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        self.quantile(p / 100.0)
    }

    /// Merges another histogram into this one, bin by bin.
    ///
    /// # Errors
    ///
    /// Returns [`HistogramMergeError`] — naming both geometries — when the
    /// two histograms disagree on bin width or bin count; `self` is left
    /// untouched in that case. (Histograms built by [`SimStats`] always
    /// share the default geometry and merge cleanly.)
    pub fn merge(&mut self, other: &LatencyHistogram) -> Result<(), HistogramMergeError> {
        if self.bin_width != other.bin_width || self.bins.len() != other.bins.len() {
            return Err(HistogramMergeError {
                left_bin_width: self.bin_width,
                left_num_bins: self.bins.len(),
                right_bin_width: other.bin_width,
                right_num_bins: other.bins.len(),
            });
        }
        for (bin, &extra) in self.bins.iter_mut().zip(&other.bins) {
            *bin += extra;
        }
        self.overflow += other.overflow;
        Ok(())
    }

    /// Approximate latency below which `quantile` (0..=1) of samples fall,
    /// using bin upper edges. Returns `None` when the histogram is empty.
    #[must_use]
    pub fn quantile(&self, quantile: f64) -> Option<u64> {
        let total = self.samples();
        if total == 0 {
            return None;
        }
        let target = (quantile.clamp(0.0, 1.0) * total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, &count) in self.bins.iter().enumerate() {
            acc += count;
            if acc >= target {
                return Some((i as u64 + 1) * self.bin_width);
            }
        }
        Some(self.bins.len() as u64 * self.bin_width)
    }
}

/// Why two [`LatencyHistogram`]s could not be merged: their bin geometries
/// differ, so bin-wise addition would silently misattribute samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramMergeError {
    /// Bin width (cycles) of the receiving histogram.
    pub left_bin_width: u64,
    /// Bin count of the receiving histogram.
    pub left_num_bins: usize,
    /// Bin width (cycles) of the incoming histogram.
    pub right_bin_width: u64,
    /// Bin count of the incoming histogram.
    pub right_num_bins: usize,
}

impl std::fmt::Display for HistogramMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot merge latency histograms with different geometries: \
             {} bins of {} cycles vs {} bins of {} cycles",
            self.left_num_bins, self.left_bin_width, self.right_num_bins, self.right_bin_width
        )
    }
}

impl std::error::Error for HistogramMergeError {}

/// Statistics of one simulation run (measurement window only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Name of the architecture that produced the run.
    pub architecture: String,
    /// Name of the traffic pattern.
    pub traffic: String,
    /// Offered load (packets per core per cycle).
    pub offered_load: f64,
    /// Cycles in the measurement window.
    pub measured_cycles: u64,
    /// Packets created by the traffic generators.
    pub generated_packets: u64,
    /// Packets dropped at the injection queues (source overflow).
    pub dropped_packets: u64,
    /// Packets injected into the network.
    pub injected_packets: u64,
    /// Flits injected into the network.
    pub injected_flits: u64,
    /// Packets fully delivered to their destination core.
    pub delivered_packets: u64,
    /// Flits delivered.
    pub delivered_flits: u64,
    /// Bits delivered (payload of delivered flits).
    pub delivered_bits: u64,
    /// Bits delivered whose source and destination are in different clusters
    /// (i.e. that crossed the photonic fabric).
    pub delivered_photonic_bits: u64,
    /// Sum of packet latencies (creation → tail delivery), cycles.
    pub total_packet_latency: u64,
    /// Maximum packet latency observed, cycles.
    pub max_packet_latency: u64,
    /// Latency histogram (16-cycle bins).
    pub latency_histogram: LatencyHistogram,
    /// Accumulated energy, split by component.
    pub energy: EnergyBreakdown,
    /// Clock used by the run (needed to convert cycles to seconds).
    pub clock: Clock,
}

impl SimStats {
    /// Creates an empty statistics record.
    #[must_use]
    pub fn new(architecture: &str, traffic: &str, offered_load: f64, clock: Clock) -> Self {
        Self {
            architecture: architecture.to_string(),
            traffic: traffic.to_string(),
            offered_load,
            measured_cycles: 0,
            generated_packets: 0,
            dropped_packets: 0,
            injected_packets: 0,
            injected_flits: 0,
            delivered_packets: 0,
            delivered_flits: 0,
            delivered_bits: 0,
            delivered_photonic_bits: 0,
            total_packet_latency: 0,
            max_packet_latency: 0,
            latency_histogram: LatencyHistogram::new(16, 256),
            energy: EnergyBreakdown::default(),
            clock,
        }
    }

    /// Records a delivered packet.
    pub fn record_packet_delivery(&mut self, latency: u64) {
        self.delivered_packets += 1;
        self.total_packet_latency += latency;
        self.max_packet_latency = self.max_packet_latency.max(latency);
        self.latency_histogram.record(latency);
    }

    /// Aggregate accepted bandwidth (all cores) in Gb/s — the paper's
    /// "peak bandwidth" once measured at saturation.
    #[must_use]
    pub fn accepted_bandwidth_gbps(&self) -> f64 {
        self.clock
            .bandwidth_gbps(self.delivered_bits, self.measured_cycles)
    }

    /// Accepted bandwidth per core in Gb/s (the "peak core bandwidth" of
    /// Figures 3-5, 3-7 and 3-10).
    #[must_use]
    pub fn accepted_bandwidth_per_core_gbps(&self, num_cores: usize) -> f64 {
        if num_cores == 0 {
            return 0.0;
        }
        self.accepted_bandwidth_gbps() / num_cores as f64
    }

    /// Offered (generated) bandwidth in Gb/s, assuming each generated packet
    /// carries `packet_bits` bits.
    #[must_use]
    pub fn offered_bandwidth_gbps(&self, packet_bits: u64) -> f64 {
        self.clock
            .bandwidth_gbps(self.generated_packets * packet_bits, self.measured_cycles)
    }

    /// Mean packet latency in cycles.
    #[must_use]
    pub fn average_packet_latency(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.total_packet_latency as f64 / self.delivered_packets as f64
        }
    }

    /// Energy per delivered packet ("packet energy" / "energy per message"),
    /// in pico-joules.
    #[must_use]
    pub fn packet_energy_pj(&self) -> f64 {
        if self.delivered_packets == 0 {
            0.0
        } else {
            self.energy.total_pj() / self.delivered_packets as f64
        }
    }

    /// Fraction of generated packets that were dropped at the source queues.
    #[must_use]
    pub fn drop_rate(&self) -> f64 {
        if self.generated_packets == 0 {
            0.0
        } else {
            self.dropped_packets as f64 / self.generated_packets as f64
        }
    }

    /// Fraction of injected packets that have been delivered.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected_packets == 0 {
            0.0
        } else {
            self.delivered_packets as f64 / self.injected_packets as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SimStats {
        SimStats::new("test-arch", "uniform", 0.01, Clock::paper_default())
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = LatencyHistogram::new(10, 10);
        for lat in [5, 15, 25, 95, 1000] {
            h.record(lat);
        }
        assert_eq!(h.samples(), 5);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.quantile(0.2), Some(10));
        assert_eq!(h.quantile(0.6), Some(30));
        assert!(h.quantile(1.0).unwrap() >= 100);
        assert_eq!(LatencyHistogram::new(10, 10).quantile(0.5), None);
        assert_eq!(h.percentile(20.0), h.quantile(0.2));
        assert_eq!(h.percentile(60.0), Some(30));
    }

    #[test]
    fn histogram_merge_adds_bins_and_rejects_mismatched_geometries() {
        let mut a = LatencyHistogram::new(10, 10);
        let mut b = LatencyHistogram::new(10, 10);
        for lat in [5, 15] {
            a.record(lat);
        }
        for lat in [15, 2000] {
            b.record(lat);
        }
        a.merge(&b).expect("same geometry");
        assert_eq!(a.samples(), 4);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.bins()[1], 2);

        let untouched = a.clone();
        let narrow = LatencyHistogram::new(5, 10);
        let error = a.merge(&narrow).expect_err("different bin width");
        assert_eq!(error.left_bin_width, 10);
        assert_eq!(error.right_bin_width, 5);
        assert!(error.to_string().contains("different geometries"));
        assert_eq!(a, untouched, "failed merge must not mutate");

        let short = LatencyHistogram::new(10, 4);
        let error = a.merge(&short).expect_err("different bin count");
        assert_eq!(error.left_num_bins, 10);
        assert_eq!(error.right_num_bins, 4);
    }

    #[test]
    fn bandwidth_from_delivered_bits() {
        let mut s = stats();
        s.measured_cycles = 10_000;
        s.delivered_bits = 3_200_000;
        // 3.2 Mbit over 4 µs = 800 Gb/s.
        assert!((s.accepted_bandwidth_gbps() - 800.0).abs() < 1e-6);
        assert!((s.accepted_bandwidth_per_core_gbps(64) - 12.5).abs() < 1e-6);
    }

    #[test]
    fn latency_accounting() {
        let mut s = stats();
        s.record_packet_delivery(10);
        s.record_packet_delivery(30);
        assert_eq!(s.delivered_packets, 2);
        assert!((s.average_packet_latency() - 20.0).abs() < 1e-12);
        assert_eq!(s.max_packet_latency, 30);
    }

    #[test]
    fn packet_energy_divides_total_by_packets() {
        let mut s = stats();
        s.energy.launch_pj = 100.0;
        s.energy.electrical_pj = 300.0;
        s.record_packet_delivery(1);
        s.record_packet_delivery(1);
        assert!((s.packet_energy_pj() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn rates_handle_zero_denominators() {
        let s = stats();
        assert_eq!(s.accepted_bandwidth_gbps(), 0.0);
        assert_eq!(s.average_packet_latency(), 0.0);
        assert_eq!(s.packet_energy_pj(), 0.0);
        assert_eq!(s.drop_rate(), 0.0);
        assert_eq!(s.delivery_ratio(), 0.0);
    }

    #[test]
    fn drop_and_delivery_ratios() {
        let mut s = stats();
        s.generated_packets = 10;
        s.dropped_packets = 2;
        s.injected_packets = 8;
        s.delivered_packets = 4;
        assert!((s.drop_rate() - 0.2).abs() < 1e-12);
        assert!((s.delivery_ratio() - 0.5).abs() < 1e-12);
    }
}
