//! The closed-loop workload engine: executing a flow-level
//! [`Workload`](pnoc_workload::dag::Workload) DAG on a simulated network.
//!
//! Open-loop sweeps (the [`crate::sweep`] ladder) inject packets at a fixed
//! rate forever and measure steady state. This module runs the other kind of
//! experiment: a **finite** set of flows with dependencies is injected
//! closed-loop, deliveries are observed through the engine's
//! [`SimEvent`](crate::metrics::SimEvent) stream, dependent flows are
//! released as their prerequisites complete, and the run terminates when the
//! DAG drains (see [`crate::engine::run_until_with`]). The metrics that come
//! out are the ones that matter for closed-loop workloads: per-flow
//! **flow-completion time** quantiles and per-collective **makespans**.
//!
//! # How the loop closes
//!
//! A [`WorkloadDriver`] owns the shared flow state and hands out two views
//! of it:
//!
//! * a [`TrafficModel`] (via [`WorkloadDriver::traffic`]) that the network
//!   polls each cycle — it emits the next packet of the frontmost released
//!   flow at each source core, **paced** so a core never generates while its
//!   injection queue is full (closed-loop flows must not be load-shed; a
//!   dropped packet would leave its flow waiting forever), and
//! * a [`FlowProbe`] (via [`WorkloadDriver::probe`]) that watches the event
//!   stream: `PacketInjected`/`PacketDropped` maintain the pacing window,
//!   and `PacketDelivered` advances per-flow delivery counts, completes
//!   flows, records their completion time and releases their dependents.
//!
//! Everything is deterministic — no RNG is involved anywhere in the flow
//! path — so a workload point run in the parallel matrix queue is
//! bitwise-identical to the same point run sequentially, the same guarantee
//! the open-loop sweep engine gives.
//!
//! Flows sharing a (source, destination) pair are credited in release
//! order: delivery counts are attributed to the earliest incomplete flow of
//! the pair. Totals (and therefore the drain condition) are exact; if the
//! network reorders packets across two same-pair flows, their individual
//! completion cycles are approximations at sub-flow granularity.

use crate::config::SimConfig;
use crate::engine::run_until_with;
use crate::metrics::{MetricReport, MetricValue, MetricsProbe, Probe, QuantileSketch, SimEvent};
use crate::params::ResolvedParams;
use crate::registry::ArchitectureBuilder;
use crate::sweep::{SweepPoint, SweepPointSpec};
use pnoc_noc::ids::{ClusterId, CoreId};
use pnoc_noc::packet::{BandwidthClass, PacketDescriptor};
use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use pnoc_workload::dag::Workload;
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, VecDeque};
use std::sync::{Arc, Mutex};

/// How many simulated cycles a closed-loop run may take before it is
/// declared stuck, expressed as a multiple of the configuration's
/// (open-loop) measurement window. Generous: a drained DAG ends the run
/// long before the cap; the cap only bounds a genuinely wedged workload.
pub const DRAIN_CYCLE_CAP_FACTOR: u64 = 100;

/// The per-packet term of the drain cap: a workload whose flows all funnel
/// through one core (incast, parameter-server fan-in) is limited by that
/// core's one-flit-per-cycle ejection port, so the cap must grow with
/// `total packets × flits per packet`. The factor leaves an order of
/// magnitude of slack for reservation overhead and dependency serialization.
pub const DRAIN_CYCLE_CAP_PACKET_FACTOR: u64 = 8;

/// The shared, mutex-guarded state of one closed-loop run.
struct FlowState {
    /// Remaining unmet dependencies per flow.
    remaining_deps: Vec<usize>,
    /// Flows waiting on each flow's completion.
    dependents: Vec<Vec<usize>>,
    /// Packets each flow occupies on the wire.
    packets_total: Vec<u64>,
    /// Packets generated so far per flow (drops are re-credited).
    packets_generated: Vec<u64>,
    /// Packets delivered so far per flow.
    packets_delivered: Vec<u64>,
    /// Cycle each flow became eligible to inject.
    released_at: Vec<Option<u64>>,
    /// Cycle each flow's last packet arrived.
    completed_at: Vec<Option<u64>>,
    /// Released-but-not-fully-generated flows, FIFO per source core.
    ready: Vec<VecDeque<usize>>,
    /// Released flows awaiting delivery attribution, FIFO per (src, dst).
    open_by_pair: BTreeMap<(usize, usize), VecDeque<usize>>,
    /// Dependency-satisfied flows waiting on their `release_cycle`.
    timed: BinaryHeap<Reverse<(u64, usize)>>,
    /// Tracked injection-queue occupancy per core (generated − injected −
    /// dropped); generation pauses at the configured capacity.
    in_queue: Vec<u64>,
    /// The flow that generated each core's most recent packet (drop
    /// re-crediting).
    last_generated: Vec<Option<usize>>,
    /// Completed flows so far.
    completed: usize,
    /// Packets dropped and re-credited for retransmission (zero under the
    /// pacing window; counted defensively).
    retransmitted: u64,
    /// Flow-completion-time sketch (completion − release, cycles).
    fct: QuantileSketch,
    /// Next cycle whose timed releases have not been activated yet.
    activated_through: u64,
}

impl FlowState {
    fn new(workload: &Workload, config: &SimConfig) -> Self {
        let cores = config.topology.num_cores();
        let packet_bits = config.bandwidth_set.packet_bits();
        let flows = workload.flows();
        let mut dependents = vec![Vec::new(); flows.len()];
        for flow in flows {
            for &dep in &flow.deps {
                dependents[dep.0].push(flow.id.0);
            }
        }
        let mut state = Self {
            remaining_deps: flows.iter().map(|f| f.deps.len()).collect(),
            dependents,
            packets_total: flows.iter().map(|f| f.packets(packet_bits)).collect(),
            packets_generated: vec![0; flows.len()],
            packets_delivered: vec![0; flows.len()],
            released_at: vec![None; flows.len()],
            completed_at: vec![None; flows.len()],
            ready: vec![VecDeque::new(); cores],
            open_by_pair: BTreeMap::new(),
            timed: BinaryHeap::new(),
            in_queue: vec![0; cores],
            last_generated: vec![None; cores],
            completed: 0,
            retransmitted: 0,
            fct: QuantileSketch::new(),
            activated_through: 0,
        };
        for flow in flows {
            if flow.deps.is_empty() {
                state.timed.push(Reverse((flow.release_cycle, flow.id.0)));
            }
        }
        state
    }

    /// Moves every timed flow due at or before `cycle` into the per-core
    /// ready queues (and the per-pair attribution queues), in (cycle, flow
    /// id) order — deterministic regardless of completion interleaving.
    fn activate_due(&mut self, cycle: u64, workload: &Workload) {
        if cycle < self.activated_through {
            return;
        }
        while let Some(&Reverse((due, flow_idx))) = self.timed.peek() {
            if due > cycle {
                break;
            }
            self.timed.pop();
            let flow = &workload.flows()[flow_idx];
            self.released_at[flow_idx] = Some(cycle.max(due));
            self.ready[flow.src.0].push_back(flow_idx);
            self.open_by_pair
                .entry((flow.src.0, flow.dst.0))
                .or_default()
                .push_back(flow_idx);
        }
        self.activated_through = cycle + 1;
    }

    /// Marks `flow_idx` complete at `cycle`, records its completion time and
    /// schedules any dependents whose last prerequisite this was.
    fn complete(&mut self, flow_idx: usize, cycle: u64, workload: &Workload) {
        self.completed_at[flow_idx] = Some(cycle);
        self.completed += 1;
        let released = self.released_at[flow_idx].unwrap_or(0);
        self.fct.record(cycle.saturating_sub(released));
        let dependents = std::mem::take(&mut self.dependents[flow_idx]);
        for &dependent in &dependents {
            self.remaining_deps[dependent] -= 1;
            if self.remaining_deps[dependent] == 0 {
                let release = workload.flows()[dependent].release_cycle.max(cycle + 1);
                self.timed.push(Reverse((release, dependent)));
                // The dependent may be due before `activated_through` if its
                // prerequisite completed this very cycle; re-open activation.
                self.activated_through = self.activated_through.min(release);
            }
        }
        self.dependents[flow_idx] = dependents;
    }

    fn drained(&self, total_flows: usize) -> bool {
        self.completed == total_flows
    }
}

/// Static per-cluster-pair byte volumes of a workload (drives the demand
/// tables d-HetPNoC allocates wavelengths from).
struct PairDemand {
    /// Bytes exchanged between each ordered cluster pair.
    volume: Vec<Vec<u64>>,
    /// Total bytes leaving each cluster for other clusters.
    outbound: Vec<u64>,
    clusters: usize,
}

impl PairDemand {
    fn new(workload: &Workload, config: &SimConfig) -> Self {
        let clusters = config.topology.num_clusters();
        let mut volume = vec![vec![0u64; clusters]; clusters];
        let mut outbound = vec![0u64; clusters];
        for flow in workload.flows() {
            let src = config.topology.cluster_of(flow.src).0;
            let dst = config.topology.cluster_of(flow.dst).0;
            if src != dst {
                volume[src][dst] += flow.bytes;
                outbound[src] += flow.bytes;
            }
        }
        Self {
            volume,
            outbound,
            clusters,
        }
    }

    fn share(&self, src: ClusterId, dst: ClusterId) -> f64 {
        if src.0 >= self.clusters || dst.0 >= self.clusters || self.outbound[src.0] == 0 {
            return 0.0;
        }
        self.volume[src.0][dst.0] as f64 / self.outbound[src.0] as f64
    }

    fn class(&self, src: ClusterId, dst: ClusterId) -> BandwidthClass {
        // Classify relative to the uniform share (1/(clusters−1)): pairs
        // carrying multiples of the average demand advertise higher classes.
        let uniform = 1.0 / (self.clusters.saturating_sub(1).max(1)) as f64;
        let share = self.share(src, dst);
        if share >= 4.0 * uniform {
            BandwidthClass::High
        } else if share >= 2.0 * uniform {
            BandwidthClass::MediumHigh
        } else if share >= 0.5 * uniform {
            BandwidthClass::MediumLow
        } else {
            BandwidthClass::Low
        }
    }
}

/// The closed-loop driver of one workload run: builds the paired traffic
/// model and probe, owns the drain condition and the cycle cap.
pub struct WorkloadDriver {
    workload: Arc<Workload>,
    state: Arc<Mutex<FlowState>>,
    config: SimConfig,
}

impl WorkloadDriver {
    /// Creates a driver for one run of `workload` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if the workload is empty, touches cores outside the
    /// configured topology, or fails
    /// [`Workload::validate`](pnoc_workload::dag::Workload::validate) —
    /// scenario resolution ([`crate::scenario::ScenarioSpec::resolve`])
    /// checks these upfront and returns typed errors instead.
    #[must_use]
    pub fn new(workload: Arc<Workload>, config: &SimConfig) -> Self {
        assert!(!workload.is_empty(), "cannot drive an empty workload");
        let max_core = workload.max_core().expect("non-empty");
        assert!(
            max_core < config.topology.num_cores(),
            "workload '{}' touches core {max_core}, topology has {} cores",
            workload.name(),
            config.topology.num_cores()
        );
        workload
            .validate()
            .unwrap_or_else(|error| panic!("workload '{}' invalid: {error}", workload.name()));
        let state = Arc::new(Mutex::new(FlowState::new(&workload, config)));
        Self {
            workload,
            state,
            config: *config,
        }
    }

    /// The paced closed-loop traffic model (hand to the architecture
    /// builder).
    #[must_use]
    pub fn traffic(&self) -> Box<dyn TrafficModel + Send> {
        Box::new(FlowTraffic {
            workload: Arc::clone(&self.workload),
            state: Arc::clone(&self.state),
            demand: PairDemand::new(&self.workload, &self.config),
            topology: self.config.topology,
            shape: (
                self.config.bandwidth_set.packet_flits(),
                self.config.bandwidth_set.flit_bits(),
            ),
            capacity: self.config.injection_queue_capacity as u64,
        })
    }

    /// The flow-observing probe (attach to the engine next to the standard
    /// [`MetricsProbe`]).
    #[must_use]
    pub fn probe(&self) -> FlowProbe {
        FlowProbe {
            workload: Arc::clone(&self.workload),
            state: Arc::clone(&self.state),
        }
    }

    /// Whether every flow of the DAG has completed.
    #[must_use]
    pub fn drained(&self) -> bool {
        self.state
            .lock()
            .expect("flow state poisoned")
            .drained(self.workload.len())
    }

    /// The safety cap on closed-loop cycles: the larger of
    /// [`DRAIN_CYCLE_CAP_FACTOR`] × the open-loop measurement window and
    /// [`DRAIN_CYCLE_CAP_PACKET_FACTOR`] × the workload's total flit count
    /// (the serial-ejection lower bound of fan-in workloads).
    #[must_use]
    pub fn max_cycles(&self) -> u64 {
        let effort_cap = self
            .config
            .sim_cycles
            .saturating_mul(DRAIN_CYCLE_CAP_FACTOR);
        let packet_bits = self.config.bandwidth_set.packet_bits();
        let total_flits = self
            .workload
            .total_packets(packet_bits)
            .saturating_mul(u64::from(self.config.bandwidth_set.packet_flits()));
        effort_cap
            .max(total_flits.saturating_mul(DRAIN_CYCLE_CAP_PACKET_FACTOR))
            .max(1)
    }
}

/// The closed-loop [`TrafficModel`]: emits the next packet of the frontmost
/// released flow at each core, paced by the tracked injection-queue
/// occupancy so closed-loop traffic is never load-shed.
struct FlowTraffic {
    workload: Arc<Workload>,
    state: Arc<Mutex<FlowState>>,
    demand: PairDemand,
    topology: pnoc_noc::topology::ClusterTopology,
    shape: (u32, u32),
    capacity: u64,
}

impl TrafficModel for FlowTraffic {
    fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor> {
        let mut state = self.state.lock().expect("flow state poisoned");
        state.activate_due(cycle, &self.workload);
        if state.in_queue[src.0] >= self.capacity {
            return None; // queue full: generating now would drop
        }
        let &flow_idx = state.ready[src.0].front()?;
        state.packets_generated[flow_idx] += 1;
        if state.packets_generated[flow_idx] == state.packets_total[flow_idx] {
            state.ready[src.0].pop_front();
        }
        state.in_queue[src.0] += 1;
        state.last_generated[src.0] = Some(flow_idx);
        let flow = &self.workload.flows()[flow_idx];
        Some(PacketDescriptor {
            src,
            dst: flow.dst,
            num_flits: self.shape.0,
            flit_bits: self.shape.1,
            class: self.demand.class(
                self.topology.cluster_of(src),
                self.topology.cluster_of(flow.dst),
            ),
            created_cycle: cycle,
        })
    }

    fn offered_load(&self) -> OfferedLoad {
        // Closed-loop: the load is whatever the DAG admits; report zero so
        // open-loop rate math never misreads it.
        OfferedLoad::ZERO
    }

    fn set_offered_load(&mut self, _load: OfferedLoad) {}

    fn demand_class(&self, src: ClusterId, dst: ClusterId) -> BandwidthClass {
        self.demand.class(src, dst)
    }

    fn volume_share(&self, src: ClusterId, dst: ClusterId) -> f64 {
        self.demand.share(src, dst)
    }

    fn name(&self) -> String {
        format!("workload:{}", self.workload.name())
    }

    fn next_generation_cycle(&self, now: u64) -> Option<u64> {
        let state = self.state.lock().expect("flow state poisoned");
        // A released flow can emit on its very next poll.
        if state.ready.iter().any(|q| !q.is_empty()) {
            return Some(now + 1);
        }
        // Otherwise the earliest timed release bounds the next emission; the
        // engine lands exactly on `due`, so `released_at = cycle.max(due)`
        // matches a per-cycle run bitwise. With no timed flow left either,
        // only a delivery could release work — and the engine only consults
        // this answer when the network is fully drained, so nothing will
        // ever happen again (a wedged DAG fast-forwards to the cycle cap).
        state
            .timed
            .peek()
            .map(|&Reverse((due, _))| due.max(now + 1))
    }
}

/// The flow-observing [`Probe`]: closes the loop (pacing window, delivery
/// attribution, dependency release) and reports the closed-loop metrics.
pub struct FlowProbe {
    workload: Arc<Workload>,
    state: Arc<Mutex<FlowState>>,
}

impl Probe for FlowProbe {
    fn on_event(&mut self, cycle: u64, event: &SimEvent) {
        let mut state = self.state.lock().expect("flow state poisoned");
        match *event {
            SimEvent::PacketInjected { src } => {
                state.in_queue[src.0] = state.in_queue[src.0].saturating_sub(1);
            }
            SimEvent::PacketDropped { src } => {
                // Cannot happen under the pacing window, but if it ever
                // does, re-credit the packet so the flow still completes.
                state.in_queue[src.0] = state.in_queue[src.0].saturating_sub(1);
                if let Some(flow_idx) = state.last_generated[src.0] {
                    state.packets_generated[flow_idx] =
                        state.packets_generated[flow_idx].saturating_sub(1);
                    state.retransmitted += 1;
                    if state.ready[src.0].front() != Some(&flow_idx) {
                        state.ready[src.0].push_front(flow_idx);
                    }
                }
            }
            SimEvent::PacketDelivered { src, dst, .. } => {
                let pair = (src.0, dst.0);
                // Credit the earliest incomplete flow of the pair.
                let Some(flow_idx) = state
                    .open_by_pair
                    .get(&pair)
                    .and_then(|queue| queue.front().copied())
                else {
                    return;
                };
                state.packets_delivered[flow_idx] += 1;
                if state.packets_delivered[flow_idx] == state.packets_total[flow_idx] {
                    state
                        .open_by_pair
                        .get_mut(&pair)
                        .expect("just present")
                        .pop_front();
                    state.complete(flow_idx, cycle, &self.workload);
                }
            }
            _ => {}
        }
    }

    fn report(&self) -> MetricReport {
        let state = self.state.lock().expect("flow state poisoned");
        let mut report = MetricReport::new();
        report.insert(
            "flows_total",
            MetricValue::Counter(self.workload.len() as u64),
        );
        report.insert(
            "flows_completed",
            MetricValue::Counter(state.completed as u64),
        );
        report.insert(
            "flow_bytes_total",
            MetricValue::Counter(self.workload.total_bytes()),
        );
        report.insert(
            "flow_packets_total",
            MetricValue::Counter(state.packets_total.iter().sum()),
        );
        report.insert(
            "flow_retransmitted_packets",
            MetricValue::Counter(state.retransmitted),
        );
        report.insert(
            "workload_drained",
            MetricValue::Gauge(if state.drained(self.workload.len()) {
                1.0
            } else {
                0.0
            }),
        );
        report.insert(
            "flow_completion_cycles",
            MetricValue::Histogram(state.fct.clone()),
        );
        // Whole-workload makespan: first release to last completion.
        let first_release = state.released_at.iter().flatten().min().copied();
        let last_completion = state.completed_at.iter().flatten().max().copied();
        let makespan = match (first_release, last_completion) {
            (Some(start), Some(end)) => end.saturating_sub(start) as f64,
            _ => 0.0,
        };
        report.insert("workload_makespan_cycles", MetricValue::Gauge(makespan));
        // Per-collective makespans, one gauge per label (first release of
        // the phase to its last completion).
        let mut spans: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for flow in self.workload.flows() {
            let (Some(released), Some(completed)) =
                (state.released_at[flow.id.0], state.completed_at[flow.id.0])
            else {
                continue;
            };
            let span = spans
                .entry(flow.collective.as_str())
                .or_insert((released, completed));
            span.0 = span.0.min(released);
            span.1 = span.1.max(completed);
        }
        let members: BTreeMap<String, MetricValue> = spans
            .into_iter()
            .map(|(label, (start, end))| {
                let label = if label.is_empty() { "flows" } else { label };
                (
                    label.to_string(),
                    MetricValue::Gauge(end.saturating_sub(start) as f64),
                )
            })
            .collect();
        report.insert("collective_makespan_cycles", MetricValue::Family(members));
        report
    }
}

/// Builds the network of one closed-loop workload point, runs it to
/// DAG-drain (or the cycle cap) with the standard [`MetricsProbe`] plus the
/// [`FlowProbe`] attached, and returns the sweep point carrying both metric
/// sets merged.
///
/// The spec's configuration is used with its warm-up zeroed (closed-loop
/// runs measure from cycle 0). Deterministic: depends only on the
/// architecture, the spec, the workload and the fault plan (pass
/// [`FaultPlan::empty`](pnoc_faults::FaultPlan::empty) for a healthy run).
///
/// # Panics
///
/// Panics if `faults` is non-empty and the built network does not support
/// fault injection.
#[must_use]
pub fn run_workload_point(
    architecture: &dyn ArchitectureBuilder,
    params: &ResolvedParams,
    spec: &SweepPointSpec,
    workload: &Arc<Workload>,
    faults: &pnoc_faults::FaultPlan,
) -> SweepPoint {
    let mut config = spec.config;
    config.warmup_cycles = 0;
    let driver = WorkloadDriver::new(Arc::clone(workload), &config);
    let mut network = architecture.build(config, params, driver.traffic());
    crate::sweep::install_faults(&mut *network, faults, architecture.name());
    let mut metrics_probe = MetricsProbe::for_config(&config);
    let mut flow_probe = driver.probe();
    let max_cycles = driver.max_cycles();
    let stats = run_until_with(
        &mut *network,
        &mut [&mut metrics_probe, &mut flow_probe],
        |_cycle| driver.drained(),
        max_cycles,
    );
    let mut metrics = metrics_probe.report();
    metrics
        .merge(&flow_probe.report())
        .expect("flow metrics use distinct names");
    crate::sweep::attach_power_gauges(&mut metrics, &config, &stats);
    if !faults.is_empty() {
        crate::sweep::attach_fault_gauges(&mut metrics, &*network);
    }
    network.contribute_metrics(&mut metrics);
    SweepPoint {
        offered_load: spec.offered_load.value(),
        stats,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BandwidthSet;
    use crate::registry::UniformFabricArchitecture;
    use crate::sweep::derive_point_seed;
    use pnoc_workload::collectives::{incast, parameter_server, ring_allreduce};

    fn smoke_config() -> SimConfig {
        let mut config = SimConfig::fast(BandwidthSet::Set1);
        config.sim_cycles = 600;
        config.warmup_cycles = 0;
        config
    }

    fn point_spec_for(config: &SimConfig) -> SweepPointSpec {
        SweepPointSpec {
            index: 0,
            offered_load: OfferedLoad::ZERO,
            seed: derive_point_seed(config.seed, 0),
            config: *config,
        }
    }

    fn run(workload: Workload) -> SweepPoint {
        let config = smoke_config();
        run_workload_point(
            &UniformFabricArchitecture,
            &UniformFabricArchitecture.default_params(),
            &point_spec_for(&config),
            &Arc::new(workload),
            &pnoc_faults::FaultPlan::empty(),
        )
    }

    #[test]
    fn incast_drains_and_reports_flow_metrics() {
        let workload = incast(8, 1024);
        let flows = workload.len() as u64;
        let packets = workload.total_packets(2048);
        let point = run(workload);
        assert_eq!(point.metrics.gauge("workload_drained"), Some(1.0));
        assert_eq!(point.metrics.counter("flows_completed"), Some(flows));
        assert_eq!(point.metrics.counter("flow_packets_total"), Some(packets));
        assert_eq!(point.stats.delivered_packets, packets);
        assert_eq!(point.stats.dropped_packets, 0, "pacing must prevent drops");
        let fct = point
            .metrics
            .histogram("flow_completion_cycles")
            .expect("recorded");
        assert_eq!(fct.count(), flows);
        assert!(fct.min().unwrap() > 0);
        assert!(point.metrics.gauge("workload_makespan_cycles").unwrap() > 0.0);
    }

    #[test]
    fn ring_allreduce_serializes_its_steps() {
        let nodes = 4;
        let workload = ring_allreduce(nodes, 1024);
        let steps = 2 * (nodes as u64 - 1);
        let point = run(workload);
        assert_eq!(point.metrics.gauge("workload_drained"), Some(1.0));
        // 2(n−1) dependent steps cannot finish faster than 2(n−1) single-
        // packet delivery latencies; the makespan must reflect the chain.
        let fct = point
            .metrics
            .histogram("flow_completion_cycles")
            .expect("recorded");
        let makespan = point.metrics.gauge("workload_makespan_cycles").unwrap();
        assert!(
            makespan >= steps as f64 * fct.min().unwrap() as f64,
            "makespan {makespan} vs {steps} serialized steps of ≥{} cycles",
            fct.min().unwrap()
        );
        let spans = point
            .metrics
            .family("collective_makespan_cycles")
            .expect("present");
        assert!(spans.contains_key("reduce-scatter"));
        assert!(spans.contains_key("all-gather"));
    }

    #[test]
    fn parameter_server_barrier_orders_the_phases() {
        let point = run(parameter_server(6, 2048));
        assert_eq!(point.metrics.gauge("workload_drained"), Some(1.0));
        let spans = point
            .metrics
            .family("collective_makespan_cycles")
            .expect("present");
        let gauge = |label: &str| match spans.get(label) {
            Some(MetricValue::Gauge(v)) => *v,
            other => panic!("expected a gauge for '{label}', got {other:?}"),
        };
        assert!(gauge("push") > 0.0);
        assert!(gauge("pull") > 0.0);
    }

    #[test]
    fn closed_loop_runs_are_deterministic() {
        let a = run(ring_allreduce(4, 4096));
        let b = run(ring_allreduce(4, 4096));
        assert_eq!(a, b, "closed-loop runs must be reproducible");
    }

    #[test]
    fn timed_releases_hold_flows_back() {
        let mut workload = Workload::new("timed");
        workload.add_flow(
            pnoc_workload::flow::Flow::new(
                pnoc_workload::flow::FlowId(0),
                CoreId(0),
                CoreId(5),
                256,
            )
            .released_at(200),
        );
        let point = run(workload);
        assert_eq!(point.metrics.gauge("workload_drained"), Some(1.0));
        // The single flow could not complete before its release cycle.
        assert!(point.stats.measured_cycles > 200);
    }

    #[test]
    #[should_panic(expected = "touches core")]
    fn oversized_workloads_are_rejected() {
        let config = smoke_config();
        let _ = WorkloadDriver::new(Arc::new(incast(65, 64)), &config);
    }
}
