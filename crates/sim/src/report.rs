//! Plain-text table rendering.
//!
//! The experiment harness regenerates every table and figure of the paper as
//! plain-text tables on stdout (and as serialisable rows). This module holds
//! the small formatting helper shared by all experiments.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row, padding rows shorter than the header with empty cells.
    ///
    /// # Errors
    ///
    /// Returns [`RowLengthError`] — without mutating the table — when the
    /// row has more cells than the header: a too-long row is a bug in the
    /// caller (a column was added to the data but not the header), and
    /// silently dropping the extra cells would hide it.
    pub fn try_add_row(&mut self, cells: &[String]) -> Result<(), RowLengthError> {
        if cells.len() > self.header.len() {
            return Err(RowLengthError {
                table: self.title.clone(),
                expected: self.header.len(),
                got: cells.len(),
            });
        }
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        Ok(())
    }

    /// Adds a row. Rows shorter than the header are padded with empty cells.
    /// Over-long rows are kept **in full** — every cell is rendered under an
    /// unnamed column — and the mismatch is logged to stderr; use
    /// [`Table::try_add_row`] to handle the mismatch instead.
    pub fn add_row(&mut self, cells: &[String]) {
        if let Err(error) = self.try_add_row(cells) {
            eprintln!("[table] warning: {error}; keeping all cells");
            self.rows.push(cells.to_vec());
        }
    }

    /// Convenience helper adding a row of displayable values.
    pub fn add_display_row(&mut self, cells: &[&dyn std::fmt::Display]) {
        let row: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.add_row(&row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Table title.
    #[must_use]
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The column headers (used by tests and by JSON export).
    #[must_use]
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The rows as raw strings (used by tests and by JSON export).
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table as column-aligned text. Rows wider than the header
    /// (kept by [`Table::add_row`] after a logged length mismatch) render
    /// their extra cells under empty-named columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths: Vec<usize> = vec![0; ncols];
        for (i, head) in self.header.iter().enumerate() {
            widths[i] = head.len();
        }
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "== {} ==", self.title);
        }
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, &width) in widths.iter().enumerate().take(ncols) {
                let cell = cells.get(i).map(String::as_str).unwrap_or("");
                let _ = write!(line, "| {cell:width$} ");
            }
            line.push('|');
            line
        };
        let header_line = render_row(&self.header, &widths);
        let sep: String = "-".repeat(header_line.len());
        let _ = writeln!(out, "{header_line}");
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", render_row(row, &widths));
        }
        out
    }
}

/// A row handed to [`Table::try_add_row`] had more cells than the header has
/// columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowLengthError {
    /// Title of the table the row was destined for.
    pub table: String,
    /// Number of header columns.
    pub expected: usize,
    /// Number of cells in the offending row.
    pub got: usize,
}

impl std::fmt::Display for RowLengthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "row with {} cells does not fit table '{}' with {} columns",
            self.got, self.table, self.expected
        )
    }
}

impl std::error::Error for RowLengthError {}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with a fixed number of decimals, used by experiment rows.
#[must_use]
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

/// Formats a percentage difference between `new` and `baseline`
/// (positive = `new` is larger).
#[must_use]
pub fn fmt_pct_change(new: f64, baseline: f64) -> String {
    if baseline == 0.0 {
        return "n/a".to_string();
    }
    format!("{:+.2}%", (new - baseline) / baseline * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.add_row(&["alpha".to_string(), "1".to_string()]);
        t.add_row(&["b".to_string(), "123456".to_string()]);
        let out = t.render();
        assert!(out.contains("== Demo =="));
        assert!(out.contains("| name  | value  |"));
        assert!(out.contains("| alpha | 1      |"));
        assert!(out.contains("| b     | 123456 |"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn short_rows_are_padded_and_long_rows_keep_every_cell() {
        let mut t = Table::new("demo", &["a", "b", "c"]);
        t.add_row(&["1".to_string()]);
        // An over-long row is a caller bug: logged, but no cell is dropped.
        t.add_row(&[
            "1".to_string(),
            "2".to_string(),
            "3".to_string(),
            "4".to_string(),
        ]);
        assert_eq!(t.rows()[0].len(), 3);
        assert_eq!(t.rows()[1].len(), 4, "no cells may be dropped");
        assert!(t.render().contains('4'), "extra cells must render");
    }

    #[test]
    fn try_add_row_rejects_over_long_rows_without_mutating() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.try_add_row(&["1".to_string()]).expect("short rows pad");
        let error = t
            .try_add_row(&["1".to_string(), "2".to_string(), "3".to_string()])
            .expect_err("three cells into two columns");
        assert_eq!(error.expected, 2);
        assert_eq!(error.got, 3);
        assert_eq!(error.table, "demo");
        assert!(error.to_string().contains("does not fit"));
        assert_eq!(t.num_rows(), 1, "failed insert must not add a row");
    }

    #[test]
    fn percent_change_formatting() {
        assert_eq!(fmt_pct_change(110.0, 100.0), "+10.00%");
        assert_eq!(fmt_pct_change(95.0, 100.0), "-5.00%");
        assert_eq!(fmt_pct_change(1.0, 0.0), "n/a");
        assert_eq!(fmt_f(1.23456, 2), "1.23");
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new("X", &["c"]);
        t.add_display_row(&[&42]);
        assert_eq!(format!("{t}"), t.render());
    }
}
