//! The architecture registry: the open-ended catalogue of simulatable
//! network architectures.
//!
//! Historically every architecture crate exposed its own `build_*_system`
//! constructor and its own saturation-sweep driver, and the benchmark harness
//! hard-coded a closed two-variant enum. The registry inverts that
//! dependency: an architecture implements [`ArchitectureBuilder`] — a name
//! plus a `build(config, traffic) → network` constructor — and registers
//! itself into the process-global [`ArchitectureRegistry`]. Everything
//! downstream (the generic sweep driver in [`crate::sweep`], the experiment
//! harness, the `repro` binary) resolves architectures by name, so adding an
//! architecture touches only the crate that defines it.
//!
//! The [`UniformFabric`](crate::system::UniformFabric) test fabric registers
//! here out of the box under the name `"uniform-fabric"`; the Firefly
//! baseline and d-HetPNoC register from their own crates (see
//! `pnoc_firefly::register_firefly_architecture` and
//! `pnoc_dhetpnoc::register_dhetpnoc_architecture`, both invoked by the
//! umbrella crate's `install_architectures`).

use crate::config::SimConfig;
use crate::engine::CycleNetwork;
use crate::params::{ArchParamError, ArchParams, ParamSchema, ResolvedParams};
use crate::system::{PhotonicSystem, UniformFabric};
use pnoc_noc::suggest::unknown_name_message;
use pnoc_noc::traffic_model::TrafficModel;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// The failure of resolving an architecture by name: carries the offending
/// name, the full sorted catalogue of registered architectures, and (when one
/// is within typo distance) the nearest registered name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownArchitectureError {
    /// The name that failed to resolve.
    pub name: String,
    /// Every name registered at the time of the lookup, sorted.
    pub registered: Vec<String>,
}

impl UnknownArchitectureError {
    /// The registered name closest to the unknown one, if any is plausibly a
    /// typo of it.
    #[must_use]
    pub fn suggestion(&self) -> Option<&str> {
        pnoc_noc::suggest::nearest_name(&self.name, self.registered.iter().map(String::as_str))
    }
}

impl std::fmt::Display for UnknownArchitectureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&unknown_name_message(
            "architecture",
            &self.name,
            &self.registered,
        ))
    }
}

impl std::error::Error for UnknownArchitectureError {}

/// How an architecture provisions its photonic resources. Cost models (e.g.
/// the electro-optic area model) differ between the two styles, so the
/// builder declares its style instead of experiments special-casing names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Provisioning {
    /// Resources are provisioned once, at design time (Firefly-style fixed
    /// per-cluster channels).
    Static,
    /// Resources are (re)allocated at run time (d-HetPNoC-style dynamic
    /// bandwidth allocation), which needs the larger ring complement.
    Dynamic,
}

/// A factory for one network architecture.
///
/// Implementations must be cheap to construct and thread-safe: during a
/// parallel sweep the same builder instance is shared across worker threads,
/// each calling [`ArchitectureBuilder::build`] to obtain its own private
/// network instance.
///
/// An architecture is a **parameter space**, not a single design point: it
/// declares its tunable knobs as a [`ParamSchema`] and builds from a
/// schema-validated [`ResolvedParams`] set (see [`crate::params`]). An
/// architecture with no knobs keeps the default empty schema and ignores
/// the params argument.
pub trait ArchitectureBuilder: Send + Sync {
    /// Stable registry key, also used as the architecture label in
    /// statistics (e.g. `"firefly"`, `"d-hetpnoc"`).
    fn name(&self) -> &str;

    /// Human-readable display label (defaults to [`ArchitectureBuilder::name`]).
    fn label(&self) -> String {
        self.name().to_string()
    }

    /// Resource-provisioning style, consumed by the cost models (defaults to
    /// [`Provisioning::Dynamic`]).
    fn provisioning(&self) -> Provisioning {
        Provisioning::Dynamic
    }

    /// The architecture's declared parameter space (defaults to the empty
    /// schema: no tunable parameters).
    fn param_schema(&self) -> ParamSchema {
        ParamSchema::new()
    }

    /// The architecture's parameters at their declared defaults (an empty
    /// set for an empty schema). Convenience for callers that build a
    /// network directly without a `name{key=value,...}` spec.
    fn default_params(&self) -> ResolvedParams {
        self.param_schema()
            .validate(self.name(), &ArchParams::new())
            .expect("schema defaults validate against their own bounds")
    }

    /// Builds a ready-to-run network for the given configuration, resolved
    /// parameters and traffic source. `params` is always a full resolved set
    /// for this architecture's schema (validate overrides with
    /// [`ParamSchema::validate`], or start from
    /// [`ArchitectureBuilder::default_params`]).
    ///
    /// The configuration is the architecture's **effective** configuration:
    /// callers that start from a scenario-level base configuration must pass
    /// it through [`ArchitectureBuilder::effective_config`] first.
    fn build(
        &self,
        config: SimConfig,
        params: &ResolvedParams,
        traffic: Box<dyn TrafficModel + Send>,
    ) -> Box<dyn CycleNetwork>;

    /// Rewrites a scenario-level base configuration into the configuration
    /// this architecture actually simulates under the given parameters. The
    /// default is the identity — a flat architecture simulates exactly the
    /// scenario's configuration. Composite architectures override this to
    /// scale the geometry (the hierarchy layer multiplies the cluster count
    /// by its pod count), so traffic models, workload sizing, fault-plan
    /// validation and metrics probes all see the full composed topology.
    fn effective_config(&self, config: SimConfig, params: &ResolvedParams) -> SimConfig {
        let _ = params;
        config
    }

    /// An optional placement map for closed-loop workloads: `map[rank]` is
    /// the core that workload participant `rank` runs on, for a workload of
    /// `ranks` participants on this architecture's effective topology
    /// (`config` is the **effective** configuration, already passed through
    /// [`ArchitectureBuilder::effective_config`]). `None` (the default)
    /// keeps the generators' native dense placement (rank `i` on core `i`).
    /// The hierarchy layer overrides this with a round-robin-across-pods map
    /// so collective workloads exercise the cross-pod spine instead of
    /// packing into pod 0.
    ///
    /// A returned map must be injective over `0..ranks` and every entry must
    /// be a valid core of the effective topology — [`crate::scenario`]
    /// enforces this with a panic, since a registered builder producing an
    /// invalid map is a programming error, not a user error.
    fn workload_placement(
        &self,
        config: &SimConfig,
        params: &ResolvedParams,
        ranks: usize,
    ) -> Option<Vec<usize>> {
        let _ = (config, params, ranks);
        None
    }
}

/// Builder for the trivially uniform test fabric
/// ([`UniformFabric`]): every cluster statically owns
/// `total wavelengths / clusters` wavelengths.
///
/// Declares one parameter, `wavelengths`: the total data-wavelength budget
/// split evenly over the clusters, with `0` (the default) meaning "use the
/// bandwidth set's budget". Mostly useful for exercising the parameter
/// machinery without pulling in the architecture crates.
#[derive(Debug, Clone, Copy, Default)]
pub struct UniformFabricArchitecture;

impl ArchitectureBuilder for UniformFabricArchitecture {
    fn name(&self) -> &str {
        "uniform-fabric"
    }

    fn label(&self) -> String {
        "Uniform fabric".to_string()
    }

    fn provisioning(&self) -> Provisioning {
        Provisioning::Static
    }

    fn param_schema(&self) -> ParamSchema {
        ParamSchema::new().int(
            "wavelengths",
            0,
            0,
            4096,
            "total data wavelengths split evenly over the clusters \
             (0 = the bandwidth set's budget)",
        )
    }

    fn build(
        &self,
        config: SimConfig,
        params: &ResolvedParams,
        traffic: Box<dyn TrafficModel + Send>,
    ) -> Box<dyn CycleNetwork> {
        let wavelengths = match params.int("wavelengths") {
            0 => config.bandwidth_set.total_wavelengths(),
            n => n as usize,
        };
        let fabric = UniformFabric::new(
            "uniform-fabric",
            wavelengths,
            config.topology.num_clusters(),
        );
        Box::new(PhotonicSystem::new(config, fabric, traffic))
    }
}

/// A name-keyed collection of architecture builders.
#[derive(Default, Clone)]
pub struct ArchitectureRegistry {
    builders: BTreeMap<String, Arc<dyn ArchitectureBuilder>>,
}

impl std::fmt::Debug for ArchitectureRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArchitectureRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl ArchitectureRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a builder under its own name, replacing (and returning) any
    /// previous builder of the same name.
    pub fn register(
        &mut self,
        builder: Arc<dyn ArchitectureBuilder>,
    ) -> Option<Arc<dyn ArchitectureBuilder>> {
        self.builders.insert(builder.name().to_string(), builder)
    }

    /// Looks up a builder by name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<dyn ArchitectureBuilder>> {
        self.builders.get(name).cloned()
    }

    /// All registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.builders.keys().cloned().collect()
    }

    /// Number of registered architectures.
    #[must_use]
    pub fn len(&self) -> usize {
        self.builders.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.builders.is_empty()
    }
}

fn global() -> &'static Mutex<ArchitectureRegistry> {
    static GLOBAL: OnceLock<Mutex<ArchitectureRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let mut registry = ArchitectureRegistry::new();
        registry.register(Arc::new(UniformFabricArchitecture));
        Mutex::new(registry)
    })
}

/// Registers a builder into the process-global registry, replacing (and
/// returning) any previous builder of the same name.
pub fn register_architecture(
    builder: Arc<dyn ArchitectureBuilder>,
) -> Option<Arc<dyn ArchitectureBuilder>> {
    global()
        .lock()
        .expect("architecture registry poisoned")
        .register(builder)
}

/// Looks up a builder in the process-global registry.
///
/// # Errors
///
/// Returns [`UnknownArchitectureError`] — which lists every registered name
/// and suggests the nearest match — when no builder of that name is
/// registered.
pub fn lookup_architecture(
    name: &str,
) -> Result<Arc<dyn ArchitectureBuilder>, UnknownArchitectureError> {
    let registry = global().lock().expect("architecture registry poisoned");
    registry.get(name).ok_or_else(|| UnknownArchitectureError {
        name: name.to_string(),
        registered: registry.names(),
    })
}

/// Why a `name{key=value,...}` architecture spec failed to resolve against
/// the process-global registry.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchSpecError {
    /// The bare name is not registered (lists the catalogue, suggests the
    /// nearest name).
    Unknown(UnknownArchitectureError),
    /// The spec is malformed or its parameters do not validate against the
    /// architecture's declared schema.
    Params(ArchParamError),
}

impl std::fmt::Display for ArchSpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchSpecError::Unknown(e) => e.fmt(f),
            ArchSpecError::Params(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ArchSpecError {}

impl From<UnknownArchitectureError> for ArchSpecError {
    fn from(error: UnknownArchitectureError) -> Self {
        ArchSpecError::Unknown(error)
    }
}

impl From<ArchParamError> for ArchSpecError {
    fn from(error: ArchParamError) -> Self {
        ArchSpecError::Params(error)
    }
}

/// Resolves a full `name{key=value,...}` architecture spec against the
/// process-global registry: parses the spec, looks the name up, and
/// validates the parameter overrides against the builder's declared schema.
/// Returns the builder together with the fully resolved parameter set
/// (overrides applied, defaults filled in).
///
/// ```
/// use pnoc_sim::registry::resolve_architecture_spec;
///
/// let (builder, params) =
///     resolve_architecture_spec("uniform-fabric{wavelengths=32}").unwrap();
/// assert_eq!(builder.name(), "uniform-fabric");
/// assert_eq!(params.int("wavelengths"), 32);
/// ```
///
/// # Errors
///
/// * [`ArchSpecError::Params`] on a malformed spec or parameters that do
///   not validate (unknown key / bad value / out of bounds — each message
///   lists the declared catalogue and suggests the nearest key),
/// * [`ArchSpecError::Unknown`] when the bare name is not registered.
pub fn resolve_architecture_spec(
    spec: &str,
) -> Result<(Arc<dyn ArchitectureBuilder>, ResolvedParams), ArchSpecError> {
    let (name, overrides) = ArchParams::split_spec(spec)?;
    let builder = lookup_architecture(&name)?;
    let params = builder.param_schema().validate(&name, &overrides)?;
    Ok((builder, params))
}

/// Names registered in the process-global registry, sorted.
#[must_use]
pub fn registered_architectures() -> Vec<String> {
    global()
        .lock()
        .expect("architecture registry poisoned")
        .names()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BandwidthSet;
    use crate::engine::run_to_completion;
    use crate::stats::SimStats;

    struct NullNetwork {
        config: SimConfig,
    }

    impl CycleNetwork for NullNetwork {
        fn step(&mut self, _cycle: u64) {}

        fn begin_measurement(&mut self, _cycle: u64) {}

        fn stats(&self) -> SimStats {
            SimStats::new("null", "none", 0.0, self.config.clock)
        }

        fn config(&self) -> &SimConfig {
            &self.config
        }

        fn architecture(&self) -> &str {
            "null"
        }
    }

    struct NullArchitecture;

    impl ArchitectureBuilder for NullArchitecture {
        fn name(&self) -> &str {
            "null"
        }

        fn build(
            &self,
            config: SimConfig,
            _params: &ResolvedParams,
            _traffic: Box<dyn TrafficModel + Send>,
        ) -> Box<dyn CycleNetwork> {
            Box::new(NullNetwork { config })
        }
    }

    #[test]
    fn registry_registers_and_resolves_by_name() {
        let mut registry = ArchitectureRegistry::new();
        assert!(registry.is_empty());
        assert!(registry.register(Arc::new(NullArchitecture)).is_none());
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.names(), vec!["null".to_string()]);
        assert!(registry.get("null").is_some());
        assert!(registry.get("missing").is_none());
        // Re-registration replaces and hands back the previous builder.
        let previous = registry.register(Arc::new(NullArchitecture));
        assert_eq!(previous.expect("was registered").name(), "null");
    }

    #[test]
    fn global_registry_ships_the_uniform_test_fabric() {
        let builder = lookup_architecture("uniform-fabric").expect("uniform-fabric is built in");
        assert_eq!(builder.name(), "uniform-fabric");
        assert!(registered_architectures().contains(&"uniform-fabric".to_string()));
    }

    #[test]
    fn unknown_architecture_error_lists_names_and_suggests_the_nearest() {
        let Err(error) = lookup_architecture("uniform-fabrik") else {
            panic!("'uniform-fabrik' must not resolve");
        };
        assert_eq!(error.name, "uniform-fabrik");
        assert!(error.registered.contains(&"uniform-fabric".to_string()));
        assert_eq!(error.suggestion(), Some("uniform-fabric"));
        let message = error.to_string();
        assert!(message.contains("unknown architecture 'uniform-fabrik'"));
        assert!(message.contains("did you mean 'uniform-fabric'?"));
    }

    /// Deterministic one-destination traffic for driving a registry-built
    /// network end to end.
    struct SingleFlow {
        shape: (u32, u32),
        load: pnoc_noc::traffic_model::OfferedLoad,
    }

    impl TrafficModel for SingleFlow {
        fn next_packet(
            &mut self,
            cycle: u64,
            src: pnoc_noc::ids::CoreId,
        ) -> Option<pnoc_noc::packet::PacketDescriptor> {
            cycle
                .is_multiple_of(400)
                .then(|| pnoc_noc::packet::PacketDescriptor {
                    src,
                    dst: pnoc_noc::ids::CoreId((src.0 + 4) % 64),
                    num_flits: self.shape.0,
                    flit_bits: self.shape.1,
                    class: pnoc_noc::packet::BandwidthClass::MediumHigh,
                    created_cycle: cycle,
                })
        }

        fn offered_load(&self) -> pnoc_noc::traffic_model::OfferedLoad {
            self.load
        }

        fn set_offered_load(&mut self, load: pnoc_noc::traffic_model::OfferedLoad) {
            self.load = load;
        }

        fn demand_class(
            &self,
            _src: pnoc_noc::ids::ClusterId,
            _dst: pnoc_noc::ids::ClusterId,
        ) -> pnoc_noc::packet::BandwidthClass {
            pnoc_noc::packet::BandwidthClass::MediumHigh
        }

        fn volume_share(
            &self,
            _src: pnoc_noc::ids::ClusterId,
            _dst: pnoc_noc::ids::ClusterId,
        ) -> f64 {
            1.0 / 15.0
        }

        fn name(&self) -> String {
            "single-flow".to_string()
        }
    }

    fn single_flow(config: &SimConfig) -> Box<SingleFlow> {
        Box::new(SingleFlow {
            shape: (
                config.bandwidth_set.packet_flits(),
                config.bandwidth_set.flit_bits(),
            ),
            load: pnoc_noc::traffic_model::OfferedLoad::new(1.0 / 400.0),
        })
    }

    #[test]
    fn uniform_fabric_builder_produces_a_working_network() {
        let mut config = SimConfig::fast(BandwidthSet::Set1);
        config.sim_cycles = 1_000;
        config.warmup_cycles = 200;
        let builder = UniformFabricArchitecture;
        let params = builder.default_params();
        let mut network = builder.build(config, &params, single_flow(&config));
        let stats = run_to_completion(&mut *network);
        assert!(stats.delivered_packets > 0);
        assert_eq!(stats.architecture, "uniform-fabric");
    }

    #[test]
    fn uniform_fabric_declares_and_honours_the_wavelengths_parameter() {
        let builder = UniformFabricArchitecture;
        let schema = builder.param_schema();
        assert_eq!(schema.len(), 1);
        assert_eq!(schema.get("wavelengths").unwrap().kind.label(), "int");
        // The default (0 = auto) resolves to the bandwidth set's budget.
        assert_eq!(builder.default_params().int("wavelengths"), 0);

        let mut config = SimConfig::fast(BandwidthSet::Set1);
        config.sim_cycles = 1_000;
        config.warmup_cycles = 200;
        let starved = schema
            .validate(
                "uniform-fabric",
                &crate::params::ArchParams::new().set("wavelengths", 16),
            )
            .expect("within bounds");
        let mut narrow = builder.build(config, &starved, single_flow(&config));
        let mut wide = builder.build(config, &builder.default_params(), single_flow(&config));
        let narrow_stats = run_to_completion(&mut *narrow);
        let wide_stats = run_to_completion(&mut *wide);
        assert!(narrow_stats.delivered_packets > 0);
        assert!(
            narrow_stats.average_packet_latency() > wide_stats.average_packet_latency(),
            "a quarter of the wavelengths must cost latency ({} vs {})",
            narrow_stats.average_packet_latency(),
            wide_stats.average_packet_latency()
        );
    }

    #[test]
    fn architecture_specs_resolve_with_overrides_and_defaults() {
        let (builder, params) =
            resolve_architecture_spec("uniform-fabric{wavelengths=32}").expect("valid spec");
        assert_eq!(builder.name(), "uniform-fabric");
        assert_eq!(params.int("wavelengths"), 32);
        assert_eq!(params.canonical(), "{wavelengths=32}");

        let (_, defaults) = resolve_architecture_spec("uniform-fabric").expect("bare name");
        assert_eq!(defaults.int("wavelengths"), 0);
    }

    #[test]
    fn architecture_spec_errors_display_catalogue_and_suggestions() {
        // Unknown architecture name: same rich error as lookup_architecture.
        let Err(error) = resolve_architecture_spec("uniform-fabrik{wavelengths=1}") else {
            panic!("misspelled name must not resolve");
        };
        assert!(matches!(error, ArchSpecError::Unknown(_)));
        assert!(error.to_string().contains("did you mean 'uniform-fabric'?"));

        // Unknown parameter key: catalogue + nearest-key suggestion,
        // mirroring the UnknownArchitectureError contract.
        let Err(error) = resolve_architecture_spec("uniform-fabric{wavelenths=1}") else {
            panic!("misspelled key must not validate");
        };
        let message = error.to_string();
        assert!(
            message.contains("unknown parameter 'wavelenths' for architecture 'uniform-fabric'"),
            "{message}"
        );
        assert!(message.contains("[wavelengths]"), "{message}");
        assert!(message.contains("did you mean 'wavelengths'?"), "{message}");

        // Out of bounds: the admissible range is rendered.
        let Err(error) = resolve_architecture_spec("uniform-fabric{wavelengths=100000}") else {
            panic!("100000 is outside 0..=4096");
        };
        assert!(matches!(
            error,
            ArchSpecError::Params(ArchParamError::OutOfBounds { .. })
        ));
        assert!(error.to_string().contains("0..=4096"), "{error}");

        // Malformed spec text.
        let Err(error) = resolve_architecture_spec("uniform-fabric{wavelengths") else {
            panic!("unbalanced brace must not parse");
        };
        assert!(matches!(
            error,
            ArchSpecError::Params(ArchParamError::Malformed { .. })
        ));
    }
}
