#![doc = include_str!("scenario.md")]

use crate::config::{BandwidthSet, SimConfig};
use crate::metrics::{MetricMergeError, MetricReport, MetricRow, MetricSink};
use crate::params::{ArchParamError, ArchParams, ResolvedParams};
use crate::registry::{lookup_architecture, ArchitectureBuilder, UnknownArchitectureError};
use crate::sweep::{
    default_load_ladder, derive_point_seed, point_spec, run_point, run_sweep, SaturationResult,
    SweepMode, SweepPoint, SweepPointSpec,
};
use crate::workload::run_workload_point;
use pnoc_faults::{FaultError, FaultPlan};
use pnoc_noc::traffic_model::TrafficModel;
use pnoc_traffic::factory::{
    lookup_traffic_factory, registered_traffic_patterns, TrafficFactory, TrafficSpec,
    UnknownPatternError,
};
use pnoc_traffic::pattern::PacketShape;
use pnoc_workload::dag::Workload;
use pnoc_workload::registry::{UnknownWorkloadError, WorkloadRef, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// The base RNG seed every scenario starts from unless overridden
/// (the same value as [`SimConfig::paper_default`]).
pub const DEFAULT_SEED: u64 = 0x2014_50CC;

/// How much simulation effort a scenario spends: the paper's full
/// methodology, a reduced configuration for smoke runs and Criterion
/// benches, or a minimal configuration for unit tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Effort {
    /// Full paper methodology: 10 000 measured cycles, 16 VCs, the 8-point
    /// load ladder.
    Paper,
    /// Reduced runs for `repro --quick` and Criterion benches: 1 200 measured
    /// cycles, a 3-point ladder.
    Quick,
    /// Minimal runs for unit and integration tests: 600 measured cycles, a
    /// 3-point ladder.
    Smoke,
}

impl Effort {
    /// Every effort level, heaviest first.
    pub const ALL: [Effort; 3] = [Effort::Paper, Effort::Quick, Effort::Smoke];

    /// The simulation configuration for this effort level.
    #[must_use]
    pub fn config(self, set: BandwidthSet) -> SimConfig {
        match self {
            Effort::Paper => SimConfig::paper_default(set),
            Effort::Quick => {
                let mut c = SimConfig::fast(set);
                c.sim_cycles = 1_200;
                c.warmup_cycles = 300;
                c
            }
            Effort::Smoke => {
                let mut c = SimConfig::fast(set);
                c.sim_cycles = 600;
                c.warmup_cycles = 150;
                c
            }
        }
    }

    /// The default offered-load ladder for this effort level.
    #[must_use]
    pub fn load_ladder(self, config: &SimConfig) -> Vec<f64> {
        let full = default_load_ladder(config.estimated_saturation_load());
        match self {
            Effort::Paper => full,
            Effort::Quick | Effort::Smoke => vec![full[1], full[3], full[5]],
        }
    }

    /// Label used in reports, JSON output and the `--scenario` shorthand.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Effort::Paper => "paper",
            Effort::Quick => "quick",
            Effort::Smoke => "smoke",
        }
    }

    /// Parses an effort label (the inverse of [`Effort::label`]).
    #[must_use]
    pub fn parse(name: &str) -> Option<Effort> {
        Effort::ALL.into_iter().find(|e| e.label() == name)
    }
}

/// A typed, serializable specification of one saturation-sweep experiment:
/// which architecture, which traffic pattern, which bandwidth set, how much
/// effort, which base seed, and (optionally) an explicit offered-load
/// ladder.
///
/// Specs are plain data. Resolution against the registries — and therefore
/// name validation — happens in [`ScenarioSpec::resolve`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Registry name of the architecture (`"firefly"`, `"d-hetpnoc"`, ...).
    /// A full `name{key=value,...}` spec is also accepted; embedded
    /// overrides merge into (and are overridden by) `arch_params` at
    /// resolve time.
    pub architecture: String,
    /// Raw architecture-parameter overrides, validated against the
    /// architecture's declared [`ParamSchema`](crate::params::ParamSchema)
    /// by [`ScenarioSpec::resolve`]. Empty means "all defaults".
    pub arch_params: ArchParams,
    /// Registry name of the traffic pattern (`"tornado"`, `"skewed-3"`, ...).
    /// Unused (and conventionally empty) when `workload` is set.
    pub traffic: String,
    /// Aggregate-bandwidth design point.
    pub bandwidth_set: BandwidthSet,
    /// Simulation effort level (configuration scale + default ladder).
    pub effort: Effort,
    /// Base RNG seed; every ladder point derives its own seed from it via
    /// [`derive_point_seed`].
    pub seed: u64,
    /// Explicit offered-load ladder in packets per core per cycle. Empty
    /// means "use the effort level's default ladder". Ignored for workload
    /// scenarios (a closed-loop run has no offered-load axis).
    pub ladder: Vec<f64>,
    /// Closed-loop workload reference (`NAME[:SIZE]`, validated against the
    /// workload registry). When set, the scenario runs the workload DAG to
    /// drain instead of an open-loop saturation sweep: one point, no load
    /// ladder, flow-completion-time and makespan metrics on the point's
    /// report.
    pub workload: Option<String>,
    /// Fault plan injected into every point of the scenario: a preset name
    /// (`"single-link"`, see [`pnoc_faults::preset_catalogue`]) or a literal
    /// plan in the canonical grammar
    /// (`"link-fail@c150-450:sw1,laser-dim@c200:fabric/2"`), validated
    /// against the registry and topology by [`ScenarioSpec::resolve`].
    /// `None` (and the `"none"` preset, which resolves to the empty plan)
    /// mean a healthy run, bitwise-identical to a spec without the field.
    pub faults: Option<String>,
}

impl ScenarioSpec {
    /// Creates a spec with the default bandwidth set ([`BandwidthSet::Set1`]),
    /// [`Effort::Quick`], the [`DEFAULT_SEED`] and the default ladder.
    #[must_use]
    pub fn new(architecture: impl Into<String>, traffic: impl Into<String>) -> Self {
        Self {
            architecture: architecture.into(),
            arch_params: ArchParams::new(),
            traffic: traffic.into(),
            bandwidth_set: BandwidthSet::Set1,
            effort: Effort::Quick,
            seed: DEFAULT_SEED,
            ladder: Vec::new(),
            workload: None,
            faults: None,
        }
    }

    /// Creates a **closed-loop** spec: `workload_ref` is a `NAME[:SIZE]`
    /// workload-registry reference (e.g. `"allreduce:64"`); defaults
    /// otherwise as in [`ScenarioSpec::new`].
    #[must_use]
    pub fn closed_loop(architecture: impl Into<String>, workload_ref: impl Into<String>) -> Self {
        Self::new(architecture, "").with_workload(workload_ref)
    }

    /// Sets (or clears) the closed-loop workload reference.
    #[must_use]
    pub fn with_workload(mut self, workload_ref: impl Into<String>) -> Self {
        let workload_ref = workload_ref.into();
        self.workload = (!workload_ref.is_empty()).then_some(workload_ref);
        self
    }

    /// Sets (or, with an empty string, clears) the fault plan: a preset
    /// name or a literal plan in the canonical grammar. Not validated here —
    /// that is [`ScenarioSpec::resolve`]'s job.
    #[must_use]
    pub fn with_faults(mut self, plan: impl Into<String>) -> Self {
        let plan = plan.into();
        self.faults = (!plan.is_empty()).then_some(plan);
        self
    }

    /// Replaces the architecture-parameter overrides wholesale.
    #[must_use]
    pub fn with_arch_params(mut self, params: ArchParams) -> Self {
        self.arch_params = params;
        self
    }

    /// Sets one architecture-parameter override (validated against the
    /// architecture's schema at resolve time).
    #[must_use]
    pub fn with_arch_param(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.arch_params.insert(key, value);
        self
    }

    /// Sets the bandwidth set.
    #[must_use]
    pub fn with_bandwidth_set(mut self, set: BandwidthSet) -> Self {
        self.bandwidth_set = set;
        self
    }

    /// Sets the effort level.
    #[must_use]
    pub fn with_effort(mut self, effort: Effort) -> Self {
        self.effort = effort;
        self
    }

    /// Sets the base RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets an explicit offered-load ladder (pass an empty vector to restore
    /// the effort level's default ladder).
    #[must_use]
    pub fn with_ladder(mut self, ladder: Vec<f64>) -> Self {
        self.ladder = ladder;
        self
    }

    /// Parses the `ARCH:TRAFFIC[:SET[:EFFORT]]` shorthand used by
    /// `repro --scenario` (e.g. `d-hetpnoc:tornado:set2`). The architecture
    /// part may carry parameter overrides — `firefly{radix=8}:uniform` —
    /// which land in [`ScenarioSpec::arch_params`]. Omitted parts default
    /// as in [`ScenarioSpec::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::Malformed`] on a wrong number of `:`-separated
    /// parts, a malformed parameter block, or an unknown bandwidth-set /
    /// effort label. Registry names and parameter values are *not* validated
    /// here — that is [`ScenarioSpec::resolve`]'s job.
    pub fn parse_shorthand(text: &str) -> Result<Self, ScenarioError> {
        let malformed = |reason: &str| ScenarioError::Malformed {
            input: text.to_string(),
            reason: reason.to_string(),
        };
        // A trailing `#faults=PLAN` suffix carries the fault plan (the `#`
        // keeps fault-plan `:`s out of the shorthand's `:`-separated parts).
        let (text_main, faults) = match text.split_once('#') {
            Some((main, suffix)) => {
                let plan = suffix
                    .strip_prefix("faults=")
                    .ok_or_else(|| malformed("the only supported '#' suffix is '#faults=PLAN'"))?;
                if plan.is_empty() {
                    return Err(malformed("'#faults=' needs a preset name or a plan"));
                }
                (main, Some(plan.to_string()))
            }
            None => (text, None),
        };
        let parts: Vec<&str> = text_main.split(':').collect();
        if !(2..=4).contains(&parts.len()) || parts.iter().any(|p| p.is_empty()) {
            return Err(malformed(
                "expected ARCH:TRAFFIC[:SET[:EFFORT]] with non-empty parts",
            ));
        }
        let (architecture, arch_params) =
            ArchParams::split_spec(parts[0]).map_err(|error| ScenarioError::Malformed {
                input: text.to_string(),
                reason: error.to_string(),
            })?;
        let mut spec = ScenarioSpec::new(architecture, parts[1]).with_arch_params(arch_params);
        if let Some(&set) = parts.get(2) {
            spec.bandwidth_set = BandwidthSet::from_short_name(set)
                .ok_or_else(|| malformed("bandwidth set must be one of set1, set2, set3"))?;
        }
        if let Some(&effort) = parts.get(3) {
            spec.effort = Effort::parse(effort)
                .ok_or_else(|| malformed("effort must be one of paper, quick, smoke"))?;
        }
        spec.faults = faults;
        Ok(spec)
    }

    /// The compact `arch:traffic:set:effort` identifier used in reports and
    /// log lines; parameter overrides render inline in the architecture
    /// part (`firefly{radix=8}:uniform-random:set1:quick`). For open-loop
    /// scenarios this is exactly the shorthand accepted by
    /// [`ScenarioSpec::parse_shorthand`]; workload scenarios render their
    /// `NAME[:SIZE]` reference with the size separator as `@`
    /// (`d-hetpnoc:allreduce@64:set1:quick`) — unambiguous in the
    /// `:`-separated structure, but **not** parseable back through
    /// `parse_shorthand` (re-run a workload with `--workload NAME[:SIZE]`
    /// or a serialized spec instead).
    #[must_use]
    pub fn id(&self) -> String {
        // The architecture field may itself embed a param block; merge it
        // with the explicit overrides (explicit wins, as in resolve()) so
        // the id renders exactly one brace block and stays re-parseable.
        let arch = match ArchParams::split_spec(&self.architecture) {
            Ok((name, embedded)) => {
                let mut merged = embedded;
                for (key, value) in self.arch_params.iter() {
                    merged.insert(key, value);
                }
                merged.render_spec(&name)
            }
            // A malformed architecture field cannot resolve anyway; render
            // it verbatim so the error context still shows what was asked.
            Err(_) => self.arch_params.render_spec(&self.architecture),
        };
        let middle = match &self.workload {
            Some(workload) => workload.replace(':', "@"),
            None => self.traffic.clone(),
        };
        let mut id = format!(
            "{arch}:{middle}:{}:{}",
            self.bandwidth_set.short_name(),
            self.effort.label()
        );
        // The fault plan rides as a `#faults=` suffix (echoed as written,
        // like every other spec field; parse_shorthand strips it back off).
        if let Some(faults) = &self.faults {
            id.push_str("#faults=");
            id.push_str(faults);
        }
        id
    }

    /// The full simulation configuration of this scenario: the effort level's
    /// configuration for the bandwidth set, with the spec's base seed.
    #[must_use]
    pub fn config(&self) -> SimConfig {
        let mut config = self.effort.config(self.bandwidth_set);
        config.seed = self.seed;
        config
    }

    /// The offered-load ladder of this scenario: the explicit ladder when one
    /// was given, the effort level's default ladder otherwise. A workload
    /// scenario has no offered-load axis: it contributes exactly one
    /// closed-loop point, reported at load 0.
    #[must_use]
    pub fn loads(&self) -> Vec<f64> {
        if self.workload.is_some() {
            vec![0.0]
        } else if self.ladder.is_empty() {
            self.effort.load_ladder(&self.config())
        } else {
            self.ladder.clone()
        }
    }

    /// Validates the spec against the process-global registries
    /// (architecture plus either traffic or workload) and returns the
    /// resolved, runnable [`Scenario`]. Workload scenarios also build their
    /// flow DAG here, eagerly — resolution is the last point where a
    /// malformed workload can fail with a typed error.
    ///
    /// # Errors
    ///
    /// * [`ScenarioError::UnknownArchitecture`] / [`ScenarioError::UnknownTraffic`]
    ///   / [`ScenarioError::UnknownWorkload`] when a name is not registered —
    ///   the error lists the registered catalogue and suggests the nearest
    ///   name,
    /// * [`ScenarioError::InvalidArchParams`] when the architecture
    ///   parameters are malformed or do not validate against the declared
    ///   schema (unknown key / bad value / out of bounds — the message lists
    ///   the declared keys and suggests the nearest one),
    /// * [`ScenarioError::Malformed`] when a workload reference does not
    ///   parse as `NAME[:SIZE]`,
    /// * [`ScenarioError::WorkloadTooLarge`] when a workload's participant
    ///   count does not fit the topology,
    /// * [`ScenarioError::InvalidLoad`] when an explicit ladder entry is not
    ///   a positive finite load.
    pub fn resolve(&self) -> Result<Scenario, ScenarioError> {
        // The architecture field may itself be a `name{key=value,...}` spec
        // (hand-built specs, matrix axis entries); embedded overrides merge
        // under the explicit `arch_params` field.
        let (arch_name, embedded) = ArchParams::split_spec(&self.architecture)?;
        let mut overrides = embedded;
        for (key, value) in self.arch_params.iter() {
            overrides.insert(key, value);
        }
        let architecture = lookup_architecture(&arch_name)?;
        let params = architecture
            .param_schema()
            .validate(&arch_name, &overrides)?;
        // Everything topology-sized below (workload capacity, fault-plan
        // bounds) is checked against the architecture's *effective*
        // configuration: composite architectures simulate a larger topology
        // than the scenario-level base.
        let effective = architecture.effective_config(self.config(), &params);
        let payload = match &self.workload {
            Some(reference) => {
                // A scenario is either open- or closed-loop: a spec naming
                // both a traffic pattern and a workload is ambiguous about
                // what it runs, so reject it instead of silently ignoring
                // the traffic field.
                if !self.traffic.is_empty() {
                    return Err(ScenarioError::Malformed {
                        input: self.id(),
                        reason: format!(
                            "scenario sets both traffic '{}' and workload '{reference}'; \
                             a closed-loop spec must leave traffic empty",
                            self.traffic
                        ),
                    });
                }
                let parsed =
                    WorkloadRef::parse(reference).map_err(|reason| ScenarioError::Malformed {
                        input: reference.clone(),
                        reason,
                    })?;
                let (factory, size) = parsed.resolve()?;
                let num_cores = effective.topology.num_cores();
                if size < 2 || size > num_cores {
                    return Err(ScenarioError::WorkloadTooLarge {
                        scenario: self.id(),
                        size,
                        num_cores,
                    });
                }
                let workload = factory.build(&WorkloadSpec::new(size));
                workload.validate().unwrap_or_else(|error| {
                    panic!(
                        "registered workload factory '{}' built an invalid workload: {error}",
                        factory.name()
                    )
                });
                // Architecture-aware placement: the generators emit a dense
                // rank-on-core-`i` workload; an architecture may spread the
                // ranks over its effective topology (the hierarchy layer
                // round-robins ranks across pods). The map is a pure
                // function of (architecture, params, size), so placement
                // never varies between runs of the same canonical id.
                let workload = match architecture.workload_placement(&effective, &params, size) {
                    Some(map) => {
                        assert_eq!(
                            map.len(),
                            size,
                            "architecture '{arch_name}' returned a placement map for {} ranks, \
                             expected {size}",
                            map.len()
                        );
                        let mut seen = vec![false; num_cores];
                        for &core in &map {
                            assert!(
                                core < num_cores && !std::mem::replace(&mut seen[core], true),
                                "architecture '{arch_name}' produced an invalid placement map: \
                                 core {core} is out of range or assigned twice"
                            );
                        }
                        workload.remap_cores(&map)
                    }
                    None => workload,
                };
                ScenarioPayload::Workload(Arc::new(workload))
            }
            None => {
                let traffic = lookup_traffic_factory(&self.traffic)?;
                if let Some(&load) = self.ladder.iter().find(|l| !l.is_finite() || **l <= 0.0) {
                    return Err(ScenarioError::InvalidLoad {
                        scenario: self.id(),
                        load,
                    });
                }
                ScenarioPayload::Traffic(traffic)
            }
        };
        let faults = match &self.faults {
            Some(text) => {
                let invalid = |error: FaultError| ScenarioError::InvalidFaults {
                    scenario: self.id(),
                    error,
                };
                let plan = FaultPlan::resolve(text).map_err(invalid)?;
                plan.validate(effective.topology.num_clusters())
                    .map_err(invalid)?;
                plan
            }
            None => FaultPlan::empty(),
        };
        Ok(Scenario {
            spec: self.clone(),
            architecture,
            params,
            payload,
            faults,
        })
    }
}

impl std::fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id())
    }
}

/// Why a [`ScenarioSpec`] could not be resolved or parsed.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The architecture name is not in the architecture registry.
    UnknownArchitecture(UnknownArchitectureError),
    /// The traffic-pattern name is not in the traffic registry.
    UnknownTraffic(UnknownPatternError),
    /// The workload name is not in the workload registry.
    UnknownWorkload(UnknownWorkloadError),
    /// The architecture parameters are malformed or do not validate against
    /// the architecture's declared schema.
    InvalidArchParams(ArchParamError),
    /// A workload's participant count does not fit the topology (or is
    /// below the 2-node minimum of every collective).
    WorkloadTooLarge {
        /// Identifier of the offending scenario.
        scenario: String,
        /// The requested participant count.
        size: usize,
        /// Cores available in the topology.
        num_cores: usize,
    },
    /// An explicit ladder entry is not a positive finite offered load.
    InvalidLoad {
        /// Identifier of the offending scenario.
        scenario: String,
        /// The offending load value.
        load: f64,
    },
    /// The fault plan does not parse, names an unknown preset, or targets a
    /// switch outside the topology.
    InvalidFaults {
        /// Identifier of the offending scenario.
        scenario: String,
        /// The underlying fault-plan error (carries the kind/preset
        /// catalogue and a nearest-name suggestion where applicable).
        error: FaultError,
    },
    /// A `--scenario` shorthand or serialized spec could not be parsed.
    Malformed {
        /// The input that failed to parse.
        input: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::UnknownArchitecture(e) => e.fmt(f),
            ScenarioError::UnknownTraffic(e) => e.fmt(f),
            ScenarioError::UnknownWorkload(e) => e.fmt(f),
            ScenarioError::InvalidArchParams(e) => e.fmt(f),
            ScenarioError::WorkloadTooLarge {
                scenario,
                size,
                num_cores,
            } => write!(
                f,
                "scenario '{scenario}' asks for a {size}-node workload; \
                 sizes must be between 2 and the topology's {num_cores} cores"
            ),
            ScenarioError::InvalidLoad { scenario, load } => write!(
                f,
                "scenario '{scenario}' has invalid ladder load {load}; \
                 loads must be positive and finite"
            ),
            ScenarioError::InvalidFaults { scenario, error } => {
                write!(
                    f,
                    "scenario '{scenario}' has an invalid fault plan: {error}"
                )
            }
            ScenarioError::Malformed { input, reason } => {
                write!(f, "cannot parse scenario '{input}': {reason}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<UnknownArchitectureError> for ScenarioError {
    fn from(error: UnknownArchitectureError) -> Self {
        ScenarioError::UnknownArchitecture(error)
    }
}

impl From<UnknownPatternError> for ScenarioError {
    fn from(error: UnknownPatternError) -> Self {
        ScenarioError::UnknownTraffic(error)
    }
}

impl From<UnknownWorkloadError> for ScenarioError {
    fn from(error: UnknownWorkloadError) -> Self {
        ScenarioError::UnknownWorkload(error)
    }
}

impl From<ArchParamError> for ScenarioError {
    fn from(error: ArchParamError) -> Self {
        ScenarioError::InvalidArchParams(error)
    }
}

/// What a resolved scenario simulates: an open-loop traffic factory swept
/// over the load ladder, or a closed-loop workload DAG run to drain.
#[derive(Clone)]
enum ScenarioPayload {
    /// Open-loop: one saturation sweep over the ladder.
    Traffic(Arc<dyn TrafficFactory>),
    /// Closed-loop: one DAG-drain run (the eagerly built workload is shared
    /// by every job that deduplicates onto it).
    Workload(Arc<Workload>),
}

/// A validated scenario: the spec plus the registry entries it resolved to
/// and the schema-validated architecture parameters.
#[derive(Clone)]
pub struct Scenario {
    spec: ScenarioSpec,
    architecture: Arc<dyn ArchitectureBuilder>,
    params: ResolvedParams,
    payload: ScenarioPayload,
    faults: FaultPlan,
}

impl std::fmt::Debug for Scenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scenario")
            .field("spec", &self.spec)
            .finish()
    }
}

impl Scenario {
    /// The spec this scenario was resolved from.
    #[must_use]
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The resolved architecture builder.
    #[must_use]
    pub fn architecture(&self) -> &Arc<dyn ArchitectureBuilder> {
        &self.architecture
    }

    /// The schema-validated architecture parameters (overrides applied,
    /// defaults filled in).
    #[must_use]
    pub fn arch_params(&self) -> &ResolvedParams {
        &self.params
    }

    /// The resolved, topology-validated fault plan (empty for a healthy
    /// scenario).
    #[must_use]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// The **effective** simulation configuration of this scenario: the
    /// spec's base configuration rewritten by the resolved architecture
    /// (see [`ArchitectureBuilder::effective_config`]). This is what every
    /// point actually simulates — for flat architectures it equals
    /// [`ScenarioSpec::config`]; for composite architectures the topology is
    /// scaled (e.g. multiplied by the pod count).
    #[must_use]
    pub fn config(&self) -> SimConfig {
        self.architecture
            .effective_config(self.spec.config(), &self.params)
    }

    /// Runs the scenario's saturation sweep with the ladder points in
    /// parallel (bitwise-identical to a sequential run).
    #[must_use]
    pub fn run(&self) -> ScenarioResult {
        self.run_with_mode(SweepMode::Parallel)
    }

    /// The canonical identity of this scenario after registry resolution:
    /// the resolved architecture name with the **full** resolved parameter
    /// set (defaults filled in), the resolved payload name (the registry's
    /// canonical traffic name, or the generated workload name with its size
    /// separator rendered as `@`), the bandwidth set and the effort level.
    ///
    /// Unlike [`ScenarioSpec::id`], which echoes the spec as written, two
    /// spellings that simulate identically (aliases such as `uniform` vs
    /// `uniform-random`, or a default named explicitly such as
    /// `firefly{radix=16}`) render the **same** canonical id. This is the
    /// scenario component of every cache key (see [`point_cache_key`]), so
    /// its exact rendering is pinned by golden tests in `pnoc-bench` — a
    /// drift must fail a test, not poison the cache.
    #[must_use]
    pub fn canonical_id(&self) -> String {
        let payload = match &self.payload {
            ScenarioPayload::Traffic(factory) => factory.name().to_string(),
            ScenarioPayload::Workload(workload) => workload.name().replace(':', "@"),
        };
        let mut id = format!(
            "{}{}:{payload}:{}:{}",
            self.architecture.name(),
            self.params.canonical(),
            self.spec.bandwidth_set.short_name(),
            self.spec.effort.label()
        );
        // The *resolved* plan in canonical rendering: preset names and
        // their literal spellings share one id, and the empty plan (absent
        // field, `"none"`, or an empty preset) adds no suffix — so a cached
        // healthy result is never served for a faulted scenario and vice
        // versa.
        if !self.faults.is_empty() {
            id.push_str("#faults=");
            id.push_str(&self.faults.render());
        }
        id
    }

    /// The resolved closed-loop workload, when this is a workload scenario.
    #[must_use]
    pub fn workload(&self) -> Option<&Arc<Workload>> {
        match &self.payload {
            ScenarioPayload::Workload(workload) => Some(workload),
            ScenarioPayload::Traffic(_) => None,
        }
    }

    /// Runs the scenario with an explicit execution mode (used by
    /// determinism tests and the `repro --bench-sweep` harness). Open-loop
    /// scenarios sweep their ladder; closed-loop scenarios run their single
    /// DAG-drain point (for which both modes are the same single
    /// simulation).
    #[must_use]
    pub fn run_with_mode(&self, mode: SweepMode) -> ScenarioResult {
        let config = self.config();
        let loads = self.spec.loads();
        let started = Instant::now();
        let result = match &self.payload {
            ScenarioPayload::Traffic(factory) => {
                let factory = Arc::clone(factory);
                let make = move |point: &SweepPointSpec| build_traffic(factory.as_ref(), point);
                run_sweep(
                    self.architecture.as_ref(),
                    &self.params,
                    &make,
                    &config,
                    &loads,
                    mode,
                    &self.faults,
                )
            }
            ScenarioPayload::Workload(workload) => SaturationResult {
                points: vec![run_workload_point(
                    self.architecture.as_ref(),
                    &self.params,
                    &point_spec(&config, 0, loads[0]),
                    workload,
                    &self.faults,
                )],
            },
        };
        ScenarioResult {
            spec: self.spec.clone(),
            point_seeds: (0..loads.len())
                .map(|i| derive_point_seed(config.seed, i))
                .collect(),
            result,
            wall_clock_seconds: started.elapsed().as_secs_f64(),
        }
    }
}

/// Builds the traffic model of one sweep point from the point's
/// configuration (geometry, topology, derived seed, offered load).
fn build_traffic(
    factory: &dyn TrafficFactory,
    point: &SweepPointSpec,
) -> Box<dyn TrafficModel + Send> {
    let shape = PacketShape::new(
        point.config.bandwidth_set.packet_flits(),
        point.config.bandwidth_set.flit_bits(),
    );
    factory.build(&TrafficSpec::new(
        point.config.topology,
        shape,
        point.offered_load,
        point.seed,
    ))
}

/// The outcome of running one scenario: the spec it came from, the measured
/// saturation sweep, the derived per-point seeds, and how long it took.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The spec that produced this result.
    pub spec: ScenarioSpec,
    /// The measured sweep, one point per ladder entry (in ladder order).
    pub result: SaturationResult,
    /// The seed each ladder point simulated with
    /// (`derive_point_seed(spec.seed, index)`).
    pub point_seeds: Vec<u64>,
    /// Wall-clock seconds of the run that produced this result. For matrix
    /// runs this is the elapsed time of the whole batch, since the flattened
    /// work queue shares workers across scenarios.
    pub wall_clock_seconds: f64,
}

impl ScenarioResult {
    /// Whether two results are bitwise-identical in everything the
    /// simulation determines — spec, per-point seeds, the full sweep and
    /// every per-point metric report — ignoring only the wall-clock
    /// measurement.
    #[must_use]
    pub fn bitwise_eq(&self, other: &ScenarioResult) -> bool {
        self.spec == other.spec
            && self.point_seeds == other.point_seeds
            && self.result == other.result
    }

    /// The exportable [`MetricRow`] of ladder point `index` (`id` is the
    /// precomputed [`ScenarioSpec::id`], passed in so batch exporters
    /// compute it once per scenario).
    fn metric_row(&self, id: &str, index: usize) -> MetricRow {
        let point = &self.result.points[index];
        MetricRow {
            scenario: id.to_string(),
            point_index: index,
            offered_load: point.offered_load,
            seed: self.point_seeds.get(index).copied().unwrap_or(0),
            report: point.metrics.clone(),
        }
    }

    /// The per-point metrics as exportable [`MetricRow`]s, in ladder order.
    #[must_use]
    pub fn metric_rows(&self) -> Vec<MetricRow> {
        let id = self.spec.id();
        (0..self.result.points.len())
            .map(|index| self.metric_row(&id, index))
            .collect()
    }

    /// Merges the metric reports of every ladder point into one
    /// scenario-level report (counters add, gauges keep the peak, latency
    /// sketches merge bin-wise). Deterministic: the merge runs in ladder
    /// order regardless of which threads simulated the points.
    ///
    /// # Errors
    ///
    /// Returns [`MetricMergeError`] if two points disagree on a metric's
    /// kind (cannot happen for reports produced by the sweep engine).
    pub fn merged_metrics(&self) -> Result<MetricReport, MetricMergeError> {
        let mut merged = MetricReport::new();
        for point in &self.result.points {
            merged.merge(&point.metrics)?;
        }
        Ok(merged)
    }
}

/// A batch of scenarios expanded from a cross-product of architectures ×
/// traffic patterns × bandwidth sets, all at one effort level and base seed.
///
/// [`ScenarioMatrix::run`] flattens every *(scenario, ladder point)* pair
/// into one batch on the persistent `pnoc-exec` pool — better load balance
/// than per-sweep parallelism — deduplicates identical points, and
/// reassembles per-scenario
/// results that are bitwise-identical to running each scenario alone.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMatrix {
    architectures: Vec<String>,
    arch_param_axes: Vec<(String, Vec<String>)>,
    traffics: Vec<String>,
    workloads: Vec<String>,
    bandwidth_sets: Vec<BandwidthSet>,
    fault_plans: Vec<String>,
    effort: Effort,
    seed: u64,
    ladder: Vec<f64>,
}

impl Default for ScenarioMatrix {
    fn default() -> Self {
        Self::new()
    }
}

impl ScenarioMatrix {
    /// Creates an empty matrix: no architectures or traffic patterns yet,
    /// [`BandwidthSet::Set1`], [`Effort::Quick`], the [`DEFAULT_SEED`] and
    /// the default ladder.
    #[must_use]
    pub fn new() -> Self {
        Self {
            architectures: Vec::new(),
            arch_param_axes: Vec::new(),
            traffics: Vec::new(),
            workloads: Vec::new(),
            bandwidth_sets: vec![BandwidthSet::Set1],
            fault_plans: Vec::new(),
            effort: Effort::Quick,
            seed: DEFAULT_SEED,
            ladder: Vec::new(),
        }
    }

    /// Sets the architecture axis by name.
    #[must_use]
    pub fn architectures<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.architectures = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the architecture axis to every registered architecture.
    #[must_use]
    pub fn all_architectures(mut self) -> Self {
        self.architectures = crate::registry::registered_architectures();
        self
    }

    /// Adds an architecture-parameter axis: every expanded scenario crosses
    /// the given values of `key` (raw value strings, validated against each
    /// architecture's schema at resolve time). Calling the method again with
    /// another key adds a further axis; the cross-product of all axes
    /// applies to **every** entry of the architecture axis, so a matrix
    /// mixing architectures whose schemas do not all declare `key` fails
    /// fast at [`ScenarioMatrix::run`]. Axis values override any override
    /// of the same key embedded in an architecture entry
    /// (`"firefly{radix=8}"`).
    ///
    /// ```
    /// use pnoc_sim::scenario::{Effort, ScenarioMatrix};
    ///
    /// let matrix = ScenarioMatrix::new()
    ///     .architectures(["uniform-fabric"])
    ///     .arch_params("wavelengths", ["16", "64"])
    ///     .traffics(["uniform-random"])
    ///     .effort(Effort::Smoke);
    /// assert_eq!(matrix.specs().len(), 2);
    /// ```
    #[must_use]
    pub fn arch_params<I, S>(mut self, key: impl Into<String>, values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.arch_param_axes
            .push((key.into(), values.into_iter().map(Into::into).collect()));
        self
    }

    /// Sets the traffic-pattern axis by name.
    #[must_use]
    pub fn traffics<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.traffics = names.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the traffic axis to every registered traffic pattern.
    #[must_use]
    pub fn all_traffics(mut self) -> Self {
        self.traffics = registered_traffic_patterns();
        self
    }

    /// Sets the closed-loop workload axis by `NAME[:SIZE]` reference. The
    /// expanded workload scenarios cross with the architecture and
    /// bandwidth-set axes (but not the traffic axis — a scenario is either
    /// open- or closed-loop) and run in the same flattened work queue.
    #[must_use]
    pub fn workloads<I, S>(mut self, references: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.workloads = references.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the fault-plan axis. Every entry is a preset name or canonical
    /// plan text (see `pnoc-faults`), crossed against every open-loop *and*
    /// closed-loop scenario in the matrix. The empty string and `"none"`
    /// both mean a healthy run and dedup onto the fault-free scenario.
    #[must_use]
    pub fn fault_plans<I, S>(mut self, plans: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.fault_plans = plans.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the bandwidth-set axis.
    #[must_use]
    pub fn bandwidth_sets<I>(mut self, sets: I) -> Self
    where
        I: IntoIterator<Item = BandwidthSet>,
    {
        self.bandwidth_sets = sets.into_iter().collect();
        self
    }

    /// Sets the bandwidth-set axis to all three design points.
    #[must_use]
    pub fn all_bandwidth_sets(self) -> Self {
        self.bandwidth_sets(BandwidthSet::ALL)
    }

    /// Sets the effort level of every expanded scenario.
    #[must_use]
    pub fn effort(mut self, effort: Effort) -> Self {
        self.effort = effort;
        self
    }

    /// Sets the base seed of every expanded scenario.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets an explicit offered-load ladder for every expanded scenario.
    #[must_use]
    pub fn ladder(mut self, ladder: Vec<f64>) -> Self {
        self.ladder = ladder;
        self
    }

    /// Expands the cross-product into scenario specs (architecture-major,
    /// then parameter combination, then traffic, then bandwidth set;
    /// closed-loop workload scenarios follow each parameter combination's
    /// open-loop block, in the same axis order), dropping exact duplicates.
    ///
    /// Architecture entries may embed parameter overrides
    /// (`"firefly{radix=8}"`); an entry whose parameter block does not parse
    /// is kept verbatim so that [`ScenarioMatrix::run`] fails fast with the
    /// parse error instead of silently dropping the entry.
    #[must_use]
    pub fn specs(&self) -> Vec<ScenarioSpec> {
        // Cross-product of the parameter axes, in declaration order
        // (no axes → one empty combination).
        let mut combos: Vec<ArchParams> = vec![ArchParams::new()];
        for (key, values) in &self.arch_param_axes {
            combos = combos
                .iter()
                .flat_map(|combo| {
                    values
                        .iter()
                        .map(move |value| combo.clone().set(key, value))
                })
                .collect();
        }
        let mut out: Vec<ScenarioSpec> = Vec::new();
        let mut push = |spec: ScenarioSpec| {
            if !out.contains(&spec) {
                out.push(spec);
            }
        };
        // The fault axis: no entries means one healthy run; empty/"none"
        // entries normalise to the fault-free spec (faults: None) so they
        // dedup onto it.
        let fault_axis: Vec<Option<String>> = if self.fault_plans.is_empty() {
            vec![None]
        } else {
            self.fault_plans
                .iter()
                .map(|plan| (!plan.is_empty() && plan != "none").then(|| plan.clone()))
                .collect()
        };
        for architecture in &self.architectures {
            let (name, embedded) = ArchParams::split_spec(architecture)
                .unwrap_or_else(|_| (architecture.clone(), ArchParams::new()));
            for combo in &combos {
                let mut arch_params = embedded.clone();
                for (key, value) in combo.iter() {
                    arch_params.insert(key, value);
                }
                for traffic in &self.traffics {
                    for &set in &self.bandwidth_sets {
                        for faults in &fault_axis {
                            push(ScenarioSpec {
                                architecture: name.clone(),
                                arch_params: arch_params.clone(),
                                traffic: traffic.clone(),
                                bandwidth_set: set,
                                effort: self.effort,
                                seed: self.seed,
                                ladder: self.ladder.clone(),
                                workload: None,
                                faults: faults.clone(),
                            });
                        }
                    }
                }
                for workload in &self.workloads {
                    for &set in &self.bandwidth_sets {
                        for faults in &fault_axis {
                            let mut spec =
                                ScenarioSpec::closed_loop(name.clone(), workload.clone())
                                    .with_arch_params(arch_params.clone())
                                    .with_bandwidth_set(set)
                                    .with_effort(self.effort)
                                    .with_seed(self.seed);
                            spec.faults = faults.clone();
                            push(spec);
                        }
                    }
                }
            }
        }
        out
    }

    /// Runs the whole matrix through one flattened, deduplicated, parallel
    /// work queue of *(scenario, ladder point)* jobs.
    ///
    /// # Errors
    ///
    /// Fails fast — before simulating anything — if any expanded spec does
    /// not resolve (see [`ScenarioSpec::resolve`]).
    pub fn run(&self) -> Result<MatrixResult, ScenarioError> {
        run_specs(&self.specs())
    }

    /// Reference implementation for determinism checks: runs every scenario
    /// one after another, each with a sequential sweep and no point sharing.
    /// [`ScenarioMatrix::run`] must be bitwise-identical to this.
    ///
    /// # Errors
    ///
    /// Fails fast if any expanded spec does not resolve.
    pub fn run_sequential(&self) -> Result<MatrixResult, ScenarioError> {
        let scenarios = resolve_all(&self.specs())?;
        let started = Instant::now();
        let results: Vec<ScenarioResult> = scenarios
            .iter()
            .map(|s| s.run_with_mode(SweepMode::Sequential))
            .collect();
        let total_points: usize = results.iter().map(|r| r.result.points.len()).sum();
        Ok(MatrixResult {
            scenarios: results,
            total_points,
            unique_points: total_points,
            wall_clock_seconds: started.elapsed().as_secs_f64(),
            cache: CacheStats::default(),
        })
    }
}

fn resolve_all(specs: &[ScenarioSpec]) -> Result<Vec<Scenario>, ScenarioError> {
    specs.iter().map(ScenarioSpec::resolve).collect()
}

/// One flattened unit of matrix work: a single sweep point of a single
/// scenario — an open-loop ladder point or a closed-loop DAG-drain run.
struct PointJob {
    architecture: Arc<dyn ArchitectureBuilder>,
    params: ResolvedParams,
    payload: ScenarioPayload,
    point: SweepPointSpec,
    faults: FaultPlan,
}

impl PointJob {
    fn run(&self) -> SweepPoint {
        match &self.payload {
            ScenarioPayload::Traffic(factory) => run_point(
                self.architecture.as_ref(),
                &self.params,
                &self.point,
                build_traffic(factory.as_ref(), &self.point),
                &self.faults,
            ),
            ScenarioPayload::Workload(workload) => run_workload_point(
                self.architecture.as_ref(),
                &self.params,
                &self.point,
                workload,
                &self.faults,
            ),
        }
    }
}

/// A pluggable cross-run cache of simulated sweep points, keyed by
/// [`point_cache_key`] strings.
///
/// Implemented by `pnoc-store`'s on-disk `ResultStore`. The matrix engine
/// ([`run_specs_with_cache`]) consults the cache once per deduplicated
/// *(scenario, ladder point)* job before enqueueing work — a hit bypasses
/// simulation entirely — and offers every freshly simulated point back for
/// storage, making matrices resumable and incremental across processes.
///
/// `Sync` is a supertrait because concurrent callers (the repro server runs
/// request batches as parallel executor jobs) share one cache reference
/// across threads; implementations must make `lookup`/`store` safe under
/// concurrency.
pub trait PointCache: Sync {
    /// Returns the cached point for `key`, or `None` on a miss. A corrupt or
    /// unreadable entry must degrade to a miss, never a panic: the engine
    /// re-simulates misses, so the only acceptable failure mode is extra
    /// work.
    fn lookup(&self, key: &str) -> Option<SweepPoint>;

    /// Offers a freshly simulated point for storage. `wall_clock_seconds` is
    /// sidecar timing metadata only: implementations must keep it out of the
    /// cached payload so a cache hit is byte-identical to a fresh run.
    fn store(&self, key: &str, point: &SweepPoint, wall_clock_seconds: f64);
}

/// The engine fingerprint baked into every cache key: the workspace version
/// plus the execution-engine flavour (event-driven or per-cycle stepping).
///
/// Both components change the bytes a simulation *could* produce — a version
/// bump may change the engine, and the two stepping modes are only believed
/// bitwise-identical because CI checks it — so either change invalidates
/// every previously stored entry rather than risking a stale hit.
#[must_use]
pub fn engine_fingerprint() -> String {
    let stepping = if crate::engine::event_driven_enabled() {
        "event"
    } else {
        "per-cycle"
    };
    format!("v{}+{stepping}", env!("CARGO_PKG_VERSION"))
}

/// The full cache key of one *(scenario, ladder point)* pair:
/// `canonical_id|seed=S|load=HEXBITS|fingerprint`, where `canonical_id` is
/// [`Scenario::canonical_id`], `S` is the derived per-point seed (decimal),
/// the offered load is rendered as its exact IEEE-754 bit pattern (hex, so
/// `0.1`-style ladder values never round-trip through decimal), and the
/// fingerprint is [`engine_fingerprint`].
#[must_use]
pub fn point_cache_key(canonical_id: &str, seed: u64, load: f64, fingerprint: &str) -> String {
    format!(
        "{canonical_id}|seed={seed}|load={:016x}|{fingerprint}",
        load.to_bits()
    )
}

/// Runs a batch of already-expanded specs through the flattened work queue
/// (the engine behind [`ScenarioMatrix::run`], also used for replaying specs
/// loaded from a file).
pub fn run_specs(specs: &[ScenarioSpec]) -> Result<MatrixResult, ScenarioError> {
    run_specs_with_cache(specs, None)
}

/// [`run_specs`] with an optional cross-run [`PointCache`].
///
/// With a cache, every deduplicated *(scenario, ladder point)* job is looked
/// up before the parallel queue is built: hits skip simulation, only misses
/// are enqueued, and each miss is offered back to the cache (with its own
/// wall-clock as sidecar metadata) after the batch completes. The assembled
/// [`MatrixResult`] is **bitwise-identical** to an uncached run — the cache
/// stores exact simulation output and the per-point seed/load/engine
/// fingerprint in the key guarantee a hit could only ever have been produced
/// by the same simulation — and [`MatrixResult::cache`] reports the
/// hit/miss/stored counts.
pub fn run_specs_with_cache(
    specs: &[ScenarioSpec],
    cache: Option<&dyn PointCache>,
) -> Result<MatrixResult, ScenarioError> {
    let scenarios = resolve_all(specs)?;
    let started = Instant::now();

    // Flatten every (scenario, ladder point) pair into one job list,
    // deduplicating jobs that would simulate the exact same network: same
    // architecture, same payload (traffic pattern, or workload DAG), same
    // per-point configuration (which includes the derived seed) and same
    // offered load.
    let mut jobs: Vec<PointJob> = Vec::new();
    let mut job_keys: Vec<String> = Vec::new();
    let mut index_of: BTreeMap<(String, String, String, String, u64), usize> = BTreeMap::new();
    let mut assignments: Vec<Vec<usize>> = Vec::with_capacity(scenarios.len());
    let fingerprint = cache.is_some().then(engine_fingerprint);
    for scenario in &scenarios {
        let config = scenario.config();
        let loads = scenario.spec.loads();
        let canonical_id = fingerprint.is_some().then(|| scenario.canonical_id());
        // Key on the *resolved* registry names and parameters, not the spec
        // spellings: alias spellings (e.g. "uniform" vs "uniform-random", or
        // "allreduce:16" vs "ring-allreduce:16") resolve to the same
        // factory-built payload and must share one simulation. Generated
        // workload names encode size and per-node bytes, so two workload
        // scenarios dedup exactly when their DAGs are identical. The
        // architecture component includes the canonical rendering of the
        // *resolved* parameters — defaults filled in — so a spec naming a
        // default explicitly (`firefly{radix=16}`) dedups onto the bare
        // name, while a genuine override gets its own simulations.
        let arch_key = format!(
            "{}{}",
            scenario.architecture.name(),
            scenario.params.canonical()
        );
        let payload_key = match &scenario.payload {
            ScenarioPayload::Traffic(factory) => format!("traffic/{}", factory.name()),
            ScenarioPayload::Workload(workload) => format!("workload/{}", workload.name()),
        };
        let mut point_jobs = Vec::with_capacity(loads.len());
        for (index, &load) in loads.iter().enumerate() {
            let point = point_spec(&config, index, load);
            let key = (
                arch_key.clone(),
                payload_key.clone(),
                scenario.faults.render(),
                format!("{:?}", point.config),
                load.to_bits(),
            );
            let next = jobs.len();
            let job_index = *index_of.entry(key).or_insert(next);
            if job_index == next {
                if let (Some(id), Some(fp)) = (&canonical_id, &fingerprint) {
                    job_keys.push(point_cache_key(id, point.seed, load, fp));
                }
                jobs.push(PointJob {
                    architecture: Arc::clone(&scenario.architecture),
                    params: scenario.params.clone(),
                    payload: scenario.payload.clone(),
                    point,
                    faults: scenario.faults.clone(),
                });
            }
            point_jobs.push(job_index);
        }
        assignments.push(point_jobs);
    }
    let total_points: usize = assignments.iter().map(Vec::len).sum();
    let unique_points = jobs.len();

    // Consult the cache once per deduplicated job; hits never reach the
    // work queue. Lookups and stores stay on this thread — the cache sees
    // strictly sequential, deterministic-order access.
    let mut points: Vec<Option<SweepPoint>> = vec![None; jobs.len()];
    if let Some(cache) = cache {
        for (slot, key) in points.iter_mut().zip(&job_keys) {
            *slot = cache.lookup(key);
        }
    }
    let cache_hits = points.iter().filter(|point| point.is_some()).count();
    let miss_indices: Vec<usize> = points
        .iter()
        .enumerate()
        .filter(|(_, point)| point.is_none())
        .map(|(index, _)| index)
        .collect();

    // One flat batch across every scenario, submitted directly to the
    // persistent pnoc-exec pool: workers stay busy across scenario
    // boundaries instead of idling at each per-sweep barrier, and each job
    // writes its indexed result slot without a shared collector. Each miss
    // carries its own wall-clock so the cache can keep timing as sidecar
    // metadata next to the (timing-free) point payload.
    let fresh: Vec<(SweepPoint, f64)> = pnoc_exec::run_batch(&miss_indices, |_, &index| {
        let point_started = Instant::now();
        let point = jobs[index].run();
        (point, point_started.elapsed().as_secs_f64())
    });

    let mut cache_stored = 0usize;
    for (&index, (point, point_seconds)) in miss_indices.iter().zip(fresh) {
        if let Some(cache) = cache {
            cache.store(&job_keys[index], &point, point_seconds);
            cache_stored += 1;
        }
        points[index] = Some(point);
    }

    let wall_clock_seconds = started.elapsed().as_secs_f64();
    let results: Vec<ScenarioResult> = scenarios
        .iter()
        .zip(&assignments)
        .map(|(scenario, point_jobs)| {
            let config = scenario.config();
            ScenarioResult {
                spec: scenario.spec.clone(),
                result: SaturationResult {
                    points: point_jobs
                        .iter()
                        .map(|&i| points[i].clone().expect("every job resolved"))
                        .collect(),
                },
                point_seeds: (0..point_jobs.len())
                    .map(|i| derive_point_seed(config.seed, i))
                    .collect(),
                wall_clock_seconds,
            }
        })
        .collect();
    Ok(MatrixResult {
        scenarios: results,
        total_points,
        unique_points,
        wall_clock_seconds,
        cache: CacheStats {
            hits: cache_hits,
            misses: miss_indices.len(),
            stored: cache_stored,
        },
    })
}

/// Cross-run cache accounting of one matrix run (all zero when no cache was
/// attached). Counts are over **deduplicated** jobs:
/// `hits + misses == unique_points`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Deduplicated points served from the cache without simulating.
    pub hits: usize,
    /// Deduplicated points that had to be simulated.
    pub misses: usize,
    /// Freshly simulated points offered to the cache for storage.
    pub stored: usize,
}

/// The outcome of a matrix run: one [`ScenarioResult`] per expanded spec (in
/// expansion order) plus work-queue statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixResult {
    /// Per-scenario results, in [`ScenarioMatrix::specs`] order.
    pub scenarios: Vec<ScenarioResult>,
    /// Number of (scenario, ladder point) pairs before deduplication.
    pub total_points: usize,
    /// Number of distinct simulations after deduplication (with a cache
    /// attached, `cache.misses` of them actually ran).
    pub unique_points: usize,
    /// Wall-clock seconds of the whole batch.
    pub wall_clock_seconds: f64,
    /// Cross-run cache accounting (zero without a cache). Bookkeeping only —
    /// excluded from [`MatrixResult::bitwise_eq`] like the wall-clock.
    pub cache: CacheStats,
}

impl MatrixResult {
    /// Finds the result of one scenario by architecture name, traffic name
    /// and bandwidth set.
    ///
    /// Matches on those three axes only and returns the **first** hit: in a
    /// [`ScenarioMatrix`] outcome they identify a cell uniquely (the matrix
    /// fixes one effort, seed and ladder), but a hand-assembled
    /// [`run_specs`] batch may contain several specs that differ only in
    /// effort, seed or ladder — iterate [`MatrixResult::scenarios`] and
    /// match on the full [`ScenarioSpec`] in that case.
    #[must_use]
    pub fn find(
        &self,
        architecture: &str,
        traffic: &str,
        set: BandwidthSet,
    ) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|r| {
            r.spec.architecture == architecture
                && r.spec.traffic == traffic
                && r.spec.bandwidth_set == set
        })
    }

    /// Whether two matrix outcomes are bitwise-identical in everything the
    /// simulations determine (specs, seeds, sweeps and per-point metric
    /// reports, scenario by scenario), ignoring wall-clock and work-queue
    /// bookkeeping.
    #[must_use]
    pub fn bitwise_eq(&self, other: &MatrixResult) -> bool {
        self.scenarios.len() == other.scenarios.len()
            && self
                .scenarios
                .iter()
                .zip(&other.scenarios)
                .all(|(a, b)| a.bitwise_eq(b))
    }

    /// Streams every per-point metric report of the batch into `sink`, in
    /// deterministic order: scenarios in batch order, points in ladder
    /// order. Two identical batches therefore produce byte-identical sink
    /// output, regardless of worker-thread count.
    ///
    /// # Errors
    ///
    /// Propagates the sink's I/O errors.
    pub fn write_metrics(&self, sink: &mut dyn MetricSink) -> std::io::Result<()> {
        for scenario in &self.scenarios {
            let id = scenario.spec.id();
            // One row at a time instead of materialising a per-scenario Vec:
            // exports of large matrices never hold more than one row.
            for index in 0..scenario.result.points.len() {
                sink.write_row(&scenario.metric_row(&id, index))?;
            }
        }
        sink.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_spec() -> ScenarioSpec {
        ScenarioSpec::new("uniform-fabric", "uniform-random").with_effort(Effort::Smoke)
    }

    #[test]
    fn spec_builder_and_identifier() {
        let spec = smoke_spec()
            .with_bandwidth_set(BandwidthSet::Set2)
            .with_seed(99)
            .with_ladder(vec![0.001, 0.002]);
        assert_eq!(spec.id(), "uniform-fabric:uniform-random:set2:smoke");
        assert_eq!(spec.to_string(), spec.id());
        assert_eq!(spec.config().seed, 99);
        assert_eq!(spec.config().bandwidth_set, BandwidthSet::Set2);
        assert_eq!(spec.loads(), vec![0.001, 0.002]);
        // Clearing the ladder restores the effort default.
        let defaulted = spec.with_ladder(Vec::new());
        assert_eq!(defaulted.loads().len(), 3);
    }

    #[test]
    fn shorthand_round_trips_and_rejects_garbage() {
        let spec = ScenarioSpec::parse_shorthand("uniform-fabric:tornado:set2:smoke").unwrap();
        assert_eq!(spec.architecture, "uniform-fabric");
        assert_eq!(spec.traffic, "tornado");
        assert_eq!(spec.bandwidth_set, BandwidthSet::Set2);
        assert_eq!(spec.effort, Effort::Smoke);
        assert_eq!(ScenarioSpec::parse_shorthand(&spec.id()).unwrap(), spec);

        let minimal = ScenarioSpec::parse_shorthand("firefly:skewed-3").unwrap();
        assert_eq!(minimal.bandwidth_set, BandwidthSet::Set1);
        assert_eq!(minimal.effort, Effort::Quick);

        for bad in ["firefly", "a:b:set9", "a:b:set1:warp", "a::set1", ""] {
            assert!(
                matches!(
                    ScenarioSpec::parse_shorthand(bad),
                    Err(ScenarioError::Malformed { .. })
                ),
                "'{bad}' should be malformed"
            );
        }
    }

    #[test]
    fn resolve_validates_both_registries_with_suggestions() {
        let unknown_arch = ScenarioSpec::new("uniform-fabrik", "uniform-random")
            .resolve()
            .expect_err("architecture is misspelled");
        match &unknown_arch {
            ScenarioError::UnknownArchitecture(e) => {
                assert_eq!(e.suggestion(), Some("uniform-fabric"));
            }
            other => panic!("expected UnknownArchitecture, got {other:?}"),
        }
        assert!(unknown_arch.to_string().contains("did you mean"));

        let unknown_traffic = ScenarioSpec::new("uniform-fabric", "tornadoo")
            .resolve()
            .expect_err("traffic is misspelled");
        assert!(matches!(
            unknown_traffic,
            ScenarioError::UnknownTraffic(ref e) if e.suggestion() == Some("tornado")
        ));

        let bad_load = smoke_spec()
            .with_ladder(vec![0.001, -1.0])
            .resolve()
            .expect_err("negative load");
        assert!(matches!(bad_load, ScenarioError::InvalidLoad { load, .. } if load == -1.0));
    }

    #[test]
    fn scenario_run_produces_one_point_per_ladder_entry_with_derived_seeds() {
        let spec = smoke_spec();
        let scenario = spec.resolve().expect("registered");
        let outcome = scenario.run();
        let loads = spec.loads();
        assert_eq!(outcome.spec, spec);
        assert_eq!(outcome.result.points.len(), loads.len());
        assert_eq!(outcome.point_seeds.len(), loads.len());
        for (i, &seed) in outcome.point_seeds.iter().enumerate() {
            assert_eq!(seed, derive_point_seed(spec.seed, i));
        }
        assert!(outcome
            .result
            .points
            .iter()
            .any(|p| p.stats.delivered_packets > 0));
        assert!(outcome.wall_clock_seconds >= 0.0);
    }

    #[test]
    fn scenario_parallel_run_is_bitwise_identical_to_sequential() {
        rayon::set_thread_count(4);
        let scenario = smoke_spec().resolve().expect("registered");
        let parallel = scenario.run_with_mode(SweepMode::Parallel);
        let sequential = scenario.run_with_mode(SweepMode::Sequential);
        assert!(parallel.bitwise_eq(&sequential));
    }

    #[test]
    fn matrix_expands_the_cross_product_and_dedups_duplicate_specs() {
        let matrix = ScenarioMatrix::new()
            .architectures(["uniform-fabric", "uniform-fabric"])
            .traffics(["tornado", "bursty-uniform"])
            .all_bandwidth_sets()
            .effort(Effort::Smoke);
        let specs = matrix.specs();
        // 1 distinct architecture × 2 traffics × 3 sets.
        assert_eq!(specs.len(), 6);
        assert!(specs.iter().all(|s| s.effort == Effort::Smoke));
    }

    #[test]
    fn matrix_run_is_bitwise_identical_to_sequential_per_scenario_runs() {
        rayon::set_thread_count(4);
        let matrix = ScenarioMatrix::new()
            .architectures(["uniform-fabric"])
            .traffics(["tornado", "uniform-random"])
            .effort(Effort::Smoke);
        let batched = matrix.run().expect("all names registered");
        let sequential = matrix.run_sequential().expect("all names registered");
        assert_eq!(batched.scenarios.len(), 2);
        assert_eq!(batched.total_points, sequential.total_points);
        assert!(
            batched.bitwise_eq(&sequential),
            "flattened matrix run must be bitwise-identical to per-scenario sequential runs"
        );
    }

    #[test]
    fn matrix_dedups_identical_points_across_duplicate_axes() {
        // The same scenario listed via two identical axis entries collapses
        // to one spec; overlapping explicit ladders across bandwidth sets do
        // not collapse because the configurations differ.
        let matrix = ScenarioMatrix::new()
            .architectures(["uniform-fabric"])
            .traffics(["tornado"])
            .bandwidth_sets([BandwidthSet::Set1, BandwidthSet::Set1])
            .effort(Effort::Smoke);
        let outcome = matrix.run().expect("registered");
        assert_eq!(outcome.scenarios.len(), 1);
        assert_eq!(outcome.total_points, outcome.unique_points);
    }

    #[test]
    fn alias_spellings_share_one_simulation_in_a_batch() {
        // "uniform" is a lookup shorthand for "uniform-random": both specs
        // resolve to the same factory, so the dedup key (resolved registry
        // names) collapses their ladder points into one set of jobs.
        let specs = vec![
            ScenarioSpec::new("uniform-fabric", "uniform").with_effort(Effort::Smoke),
            ScenarioSpec::new("uniform-fabric", "uniform-random").with_effort(Effort::Smoke),
        ];
        let outcome = run_specs(&specs).expect("alias resolves");
        assert_eq!(outcome.scenarios.len(), 2);
        assert_eq!(outcome.total_points, 2 * outcome.unique_points);
        assert_eq!(
            outcome.scenarios[0].result, outcome.scenarios[1].result,
            "both spellings must reuse the same simulated points"
        );
        // Each result still echoes the spelling it was asked for.
        assert_eq!(outcome.scenarios[0].spec.traffic, "uniform");
        assert_eq!(outcome.scenarios[1].spec.traffic, "uniform-random");
    }

    #[test]
    fn matrix_fails_fast_on_an_unknown_name() {
        let error = ScenarioMatrix::new()
            .architectures(["uniform-fabric", "warp-drive"])
            .traffics(["tornado"])
            .effort(Effort::Smoke)
            .run()
            .expect_err("warp-drive is not registered");
        assert!(matches!(error, ScenarioError::UnknownArchitecture(_)));
    }

    #[test]
    fn matrix_find_locates_scenarios_by_axes() {
        let matrix = ScenarioMatrix::new()
            .architectures(["uniform-fabric"])
            .traffics(["tornado"])
            .effort(Effort::Smoke);
        let outcome = matrix.run().expect("registered");
        assert!(outcome
            .find("uniform-fabric", "tornado", BandwidthSet::Set1)
            .is_some());
        assert!(outcome
            .find("uniform-fabric", "tornado", BandwidthSet::Set2)
            .is_none());
    }

    fn workload_spec(reference: &str) -> ScenarioSpec {
        ScenarioSpec::closed_loop("uniform-fabric", reference).with_effort(Effort::Smoke)
    }

    #[test]
    fn workload_specs_identify_load_and_resolve() {
        let spec = workload_spec("allreduce:8");
        assert_eq!(spec.id(), "uniform-fabric:allreduce@8:set1:smoke");
        assert_eq!(spec.loads(), vec![0.0]);
        let scenario = spec.resolve().expect("workload registered");
        let workload = scenario.workload().expect("closed-loop");
        assert_eq!(workload.name(), "ring-allreduce:8x16384B");

        // Open-loop scenarios have no workload.
        assert!(smoke_spec().resolve().unwrap().workload().is_none());
    }

    #[test]
    fn workload_resolution_failures_are_typed_and_suggestive() {
        let unknown = workload_spec("ring-alreduce:8")
            .resolve()
            .expect_err("misspelled workload");
        match &unknown {
            ScenarioError::UnknownWorkload(e) => {
                assert_eq!(e.suggestion(), Some("ring-allreduce"));
            }
            other => panic!("expected UnknownWorkload, got {other:?}"),
        }
        assert!(unknown.to_string().contains("did you mean"));

        let malformed = workload_spec("allreduce:8:9")
            .resolve()
            .expect_err("too many parts");
        assert!(matches!(malformed, ScenarioError::Malformed { .. }));

        // A spec naming both a traffic pattern and a workload is ambiguous
        // and must be rejected, not run with the traffic silently ignored.
        let mut mixed = ScenarioSpec::new("uniform-fabric", "tornado").with_effort(Effort::Smoke);
        mixed.workload = Some("incast:4".to_string());
        let both = mixed
            .resolve()
            .expect_err("traffic + workload is ambiguous");
        assert!(matches!(both, ScenarioError::Malformed { .. }));
        assert!(both.to_string().contains("both traffic"), "{both}");

        let too_large = workload_spec("allreduce:65")
            .resolve()
            .expect_err("65 nodes on a 64-core chip");
        assert!(matches!(
            too_large,
            ScenarioError::WorkloadTooLarge { size: 65, .. }
        ));
        assert!(too_large.to_string().contains("64 cores"));
    }

    #[test]
    fn workload_scenarios_run_one_closed_loop_point_to_drain() {
        let outcome = workload_spec("incast:6").resolve().expect("valid").run();
        assert_eq!(outcome.result.points.len(), 1);
        let point = &outcome.result.points[0];
        assert_eq!(point.metrics.gauge("workload_drained"), Some(1.0));
        assert_eq!(point.metrics.counter("flows_total"), Some(5));
        assert_eq!(
            point.metrics.counter("flows_completed"),
            point.metrics.counter("flows_total")
        );
        assert!(point.metrics.histogram("flow_completion_cycles").is_some());
        assert!(point.metrics.gauge("static_power_mw").unwrap() > 0.0);
        assert!(point.metrics.gauge("total_energy_pj").unwrap() > 0.0);
    }

    #[test]
    fn matrix_workload_axis_runs_in_the_flattened_queue_deterministically() {
        rayon::set_thread_count(4);
        let matrix = ScenarioMatrix::new()
            .architectures(["uniform-fabric"])
            .traffics(["tornado"])
            .workloads(["incast:4", "allreduce:4"])
            .effort(Effort::Smoke);
        let specs = matrix.specs();
        assert_eq!(specs.len(), 3, "1 open-loop + 2 closed-loop scenarios");
        let batched = matrix.run().expect("all names registered");
        let sequential = matrix.run_sequential().expect("all names registered");
        assert!(
            batched.bitwise_eq(&sequential),
            "workload points must stay bitwise-deterministic in the parallel queue"
        );
        // The open-loop scenario swept a ladder; each workload ran 1 point.
        assert_eq!(batched.total_points, sequential.total_points);
        let drained = batched
            .scenarios
            .iter()
            .filter(|r| r.spec.workload.is_some())
            .all(|r| r.result.points[0].metrics.gauge("workload_drained") == Some(1.0));
        assert!(drained);
    }

    #[test]
    fn workload_alias_spellings_share_one_simulation() {
        let specs = vec![
            workload_spec("allreduce:4"),
            workload_spec("ring-allreduce:4"),
        ];
        let outcome = run_specs(&specs).expect("alias resolves");
        assert_eq!(outcome.total_points, 2);
        assert_eq!(outcome.unique_points, 1, "identical DAGs must dedup");
        assert_eq!(outcome.scenarios[0].result, outcome.scenarios[1].result);
    }

    #[test]
    fn parameterized_specs_identify_parse_and_resolve() {
        let spec = ScenarioSpec::new("uniform-fabric", "uniform-random")
            .with_effort(Effort::Smoke)
            .with_arch_param("wavelengths", 32);
        assert_eq!(
            spec.id(),
            "uniform-fabric{wavelengths=32}:uniform-random:set1:smoke"
        );
        // The id is itself a parseable shorthand that recovers the spec.
        let reparsed = ScenarioSpec::parse_shorthand(&spec.id()).unwrap();
        assert_eq!(reparsed, spec);

        let scenario = spec.resolve().expect("valid override");
        assert_eq!(scenario.arch_params().int("wavelengths"), 32);

        // Embedded overrides in the architecture field also resolve; the
        // explicit arch_params field wins on conflicts.
        let embedded = ScenarioSpec::new("uniform-fabric{wavelengths=16}", "uniform-random")
            .with_effort(Effort::Smoke);
        assert_eq!(
            embedded
                .resolve()
                .expect("embedded override")
                .arch_params()
                .int("wavelengths"),
            16
        );
        let overridden = embedded.with_arch_param("wavelengths", 64);
        assert_eq!(
            overridden
                .resolve()
                .expect("explicit wins")
                .arch_params()
                .int("wavelengths"),
            64
        );
        // The id merges embedded and explicit overrides into ONE brace
        // block (explicit wins) and stays re-parseable.
        assert_eq!(
            overridden.id(),
            "uniform-fabric{wavelengths=64}:uniform-random:set1:smoke"
        );
        let reparsed = ScenarioSpec::parse_shorthand(&overridden.id()).expect("id is a shorthand");
        assert_eq!(reparsed.architecture, "uniform-fabric");
        assert_eq!(reparsed.arch_params.get("wavelengths"), Some("64"));
    }

    #[test]
    fn invalid_arch_params_fail_resolution_with_suggestions() {
        let unknown_key = ScenarioSpec::new("uniform-fabric", "uniform-random")
            .with_arch_param("wavelenths", 8)
            .resolve()
            .expect_err("misspelled key");
        match &unknown_key {
            ScenarioError::InvalidArchParams(e) => {
                assert_eq!(e.suggestion(), Some("wavelengths"));
            }
            other => panic!("expected InvalidArchParams, got {other:?}"),
        }
        assert!(
            unknown_key
                .to_string()
                .contains("did you mean 'wavelengths'?"),
            "{unknown_key}"
        );

        let out_of_bounds = ScenarioSpec::new("uniform-fabric{wavelengths=100000}", "uniform")
            .resolve()
            .expect_err("outside bounds");
        assert!(matches!(
            out_of_bounds,
            ScenarioError::InvalidArchParams(ArchParamError::OutOfBounds { .. })
        ));
        assert!(out_of_bounds.to_string().contains("0..=4096"));

        let malformed = ScenarioSpec::new("uniform-fabric{wavelengths", "uniform")
            .resolve()
            .expect_err("unbalanced brace");
        assert!(matches!(
            malformed,
            ScenarioError::InvalidArchParams(ArchParamError::Malformed { .. })
        ));
    }

    #[test]
    fn parameterized_scenario_changes_results_and_stays_deterministic() {
        rayon::set_thread_count(4);
        let narrow = ScenarioSpec::new("uniform-fabric", "uniform-random")
            .with_effort(Effort::Smoke)
            .with_arch_param("wavelengths", 16)
            .resolve()
            .expect("valid");
        let parallel = narrow.run_with_mode(SweepMode::Parallel);
        let sequential = narrow.run_with_mode(SweepMode::Sequential);
        assert!(
            parallel.bitwise_eq(&sequential),
            "parameterized sweeps must stay bitwise-deterministic"
        );
        // A quarter of the wavelength budget must change the measured sweep.
        let default = smoke_spec().resolve().expect("valid").run();
        assert_ne!(
            parallel.result, default.result,
            "the wavelengths override must affect results"
        );
    }

    #[test]
    fn matrix_param_axis_cross_products_and_dedups_defaults() {
        let matrix = ScenarioMatrix::new()
            .architectures(["uniform-fabric"])
            .arch_params("wavelengths", ["16", "64"])
            .traffics(["tornado", "uniform-random"])
            .effort(Effort::Smoke);
        let specs = matrix.specs();
        // 1 architecture × 2 param values × 2 traffics × 1 set.
        assert_eq!(specs.len(), 4);
        assert!(specs
            .iter()
            .all(|s| s.arch_params.get("wavelengths").is_some()));

        rayon::set_thread_count(4);
        let batched = matrix.run().expect("all names and params valid");
        let sequential = matrix.run_sequential().expect("all names and params valid");
        assert!(
            batched.bitwise_eq(&sequential),
            "param-swept matrix must be bitwise-identical to sequential runs"
        );
        // Distinct parameter values must not dedup onto each other.
        assert_eq!(batched.unique_points, batched.total_points);

        // A spec naming the default value explicitly dedups onto the bare
        // name: both resolve to the same canonical parameter set.
        let outcome = run_specs(&[smoke_spec(), smoke_spec().with_arch_param("wavelengths", 0)])
            .expect("default override resolves");
        assert_eq!(outcome.scenarios.len(), 2);
        assert_eq!(outcome.total_points, 2 * outcome.unique_points);
        assert_eq!(outcome.scenarios[0].result, outcome.scenarios[1].result);
    }

    #[test]
    fn matrix_fails_fast_on_invalid_params_and_embedded_specs() {
        let error = ScenarioMatrix::new()
            .architectures(["uniform-fabric"])
            .arch_params("warp-factor", ["9"])
            .traffics(["tornado"])
            .effort(Effort::Smoke)
            .run()
            .expect_err("no architecture declares warp-factor");
        assert!(matches!(error, ScenarioError::InvalidArchParams(_)));

        // Embedded overrides in architecture axis entries are honoured.
        let matrix = ScenarioMatrix::new()
            .architectures(["uniform-fabric{wavelengths=16}"])
            .traffics(["tornado"])
            .effort(Effort::Smoke);
        let specs = matrix.specs();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0].architecture, "uniform-fabric");
        assert_eq!(specs[0].arch_params.get("wavelengths"), Some("16"));

        // A malformed embedded spec fails at run, not silently.
        let error = ScenarioMatrix::new()
            .architectures(["uniform-fabric{wavelengths"])
            .traffics(["tornado"])
            .effort(Effort::Smoke)
            .run()
            .expect_err("unbalanced brace");
        assert!(matches!(error, ScenarioError::InvalidArchParams(_)));
    }

    #[test]
    fn fault_shorthand_round_trips_and_rejects_garbage() {
        let spec =
            ScenarioSpec::parse_shorthand("uniform-fabric:tornado:set1:smoke#faults=single-link")
                .unwrap();
        assert_eq!(spec.faults.as_deref(), Some("single-link"));
        assert_eq!(
            spec.id(),
            "uniform-fabric:tornado:set1:smoke#faults=single-link"
        );
        assert_eq!(ScenarioSpec::parse_shorthand(&spec.id()).unwrap(), spec);

        // A literal plan survives the round trip verbatim.
        let literal =
            ScenarioSpec::parse_shorthand("firefly:tornado#faults=link-fail@c10-20:sw1").unwrap();
        assert_eq!(literal.faults.as_deref(), Some("link-fail@c10-20:sw1"));
        assert_eq!(
            ScenarioSpec::parse_shorthand(&literal.id()).unwrap(),
            literal
        );

        for bad in [
            "firefly:tornado#single-link",
            "firefly:tornado#faults=",
            "firefly:tornado#plan=single-link",
        ] {
            assert!(
                matches!(
                    ScenarioSpec::parse_shorthand(bad),
                    Err(ScenarioError::Malformed { .. })
                ),
                "'{bad}' should be malformed"
            );
        }
    }

    #[test]
    fn fault_resolution_failures_are_typed_and_suggestive() {
        let unknown = smoke_spec()
            .with_faults("singel-link")
            .resolve()
            .expect_err("misspelled preset");
        match &unknown {
            ScenarioError::InvalidFaults { error, .. } => {
                assert_eq!(error.suggestion(), Some("single-link"));
            }
            other => panic!("expected InvalidFaults, got {other:?}"),
        }
        assert!(unknown.to_string().contains("did you mean"));

        // A plan naming a switch the resolved topology does not have is
        // rejected at resolve time, not silently ignored at run time.
        let out_of_bounds = smoke_spec()
            .with_faults("link-fail@c10:sw99")
            .resolve()
            .expect_err("sw99 exceeds the cluster count");
        assert!(matches!(
            out_of_bounds,
            ScenarioError::InvalidFaults {
                error: pnoc_faults::FaultError::TargetOutOfBounds { .. },
                ..
            }
        ));
    }

    #[test]
    fn fault_free_spellings_share_one_canonical_id_and_presets_match_literals() {
        let healthy = smoke_spec().resolve().unwrap();
        let none = smoke_spec().with_faults("none").resolve().unwrap();
        assert!(none.faults().is_empty());
        assert_eq!(
            healthy.canonical_id(),
            none.canonical_id(),
            "'none' must hit the same cache entries as a fault-free spec"
        );

        // A preset and its literal expansion share a canonical id, so cached
        // faulted results are reused across the two spellings — and differ
        // from the healthy id, so a faulted scenario can never be served a
        // healthy cached point.
        let preset = smoke_spec().with_faults("single-link").resolve().unwrap();
        let literal = smoke_spec()
            .with_faults("link-fail@c150-450:sw1")
            .resolve()
            .unwrap();
        assert_eq!(preset.canonical_id(), literal.canonical_id());
        assert_ne!(preset.canonical_id(), healthy.canonical_id());
        assert!(preset
            .canonical_id()
            .ends_with("#faults=link-fail@c150-450:sw1"));
    }

    #[test]
    fn matrix_fault_axis_crosses_every_scenario_and_stays_deterministic() {
        rayon::set_thread_count(4);
        let matrix = ScenarioMatrix::new()
            .architectures(["uniform-fabric"])
            .traffics(["tornado"])
            .workloads(["incast:4"])
            .fault_plans(["none", "single-link"])
            .effort(Effort::Smoke);
        let specs = matrix.specs();
        // (1 open-loop + 1 closed-loop) × 2 fault plans; "none" normalises
        // to the fault-free spec.
        assert_eq!(specs.len(), 4);
        assert_eq!(
            specs.iter().filter(|s| s.faults.is_some()).count(),
            2,
            "'none' entries must normalise to fault-free specs"
        );
        let batched = matrix.run().expect("all names registered");
        let sequential = matrix.run_sequential().expect("all names registered");
        assert!(
            batched.bitwise_eq(&sequential),
            "faulted matrix run must be bitwise-identical to sequential runs"
        );
        // Healthy and faulted variants of the same point must not dedup
        // onto each other.
        assert_eq!(batched.unique_points, batched.total_points);
    }

    #[test]
    fn effort_levels_scale_down_and_parse() {
        let paper = Effort::Paper.config(BandwidthSet::Set1);
        let quick = Effort::Quick.config(BandwidthSet::Set1);
        let smoke = Effort::Smoke.config(BandwidthSet::Set1);
        assert!(paper.sim_cycles > quick.sim_cycles);
        assert!(quick.sim_cycles > smoke.sim_cycles);
        assert_eq!(Effort::Paper.load_ladder(&paper).len(), 8);
        assert_eq!(Effort::Quick.load_ladder(&quick).len(), 3);
        for effort in Effort::ALL {
            assert_eq!(Effort::parse(effort.label()), Some(effort));
        }
        assert_eq!(Effort::parse("warp"), None);
    }
}
