//! # pnoc-sim — cycle-accurate simulation engine
//!
//! The thesis evaluates the Firefly baseline and the proposed d-HetPNoC with
//! a cycle-accurate simulator that "models the progress of the data flits
//! accurately per clock cycle accounting for those flits that reach the
//! destination as well as those that are dropped" (Section 3.4.1). This crate
//! is that simulator:
//!
//! * [`clock`] — the 2.5 GHz clock and cycle ↔ time conversions,
//! * [`config`] — Table 3-3 simulation parameters and the three bandwidth
//!   sets of Table 3-1,
//! * [`stats`] — throughput, latency, drop and energy accounting, from which
//!   *peak bandwidth* and *packet energy* are derived,
//! * [`metrics`] — the typed observability surface: counters, gauges,
//!   mergeable streaming quantile sketches and labelled families, collected
//!   by engine-driven [`metrics::Probe`]s and streamed through pluggable
//!   [`metrics::MetricSink`]s (JSONL, CSV, in-memory),
//! * [`system`] — the full cluster system (cores, electrical core switches,
//!   photonic routers, reservation-assisted photonic transfers) parameterised
//!   by a [`system::PhotonicFabric`] implementation; Firefly and d-HetPNoC
//!   plug in their own wavelength-allocation behaviour,
//! * [`engine`] — warm-up / measurement driver,
//! * [`registry`] — the open-ended architecture registry
//!   ([`registry::ArchitectureBuilder`]) that Firefly, d-HetPNoC and the
//!   uniform test fabric plug into,
//! * [`params`] — the typed architecture-parameter system: every builder
//!   declares a [`params::ParamSchema`] (kind, default, bounds, doc per
//!   knob), `name{key=value,...}` specs parse into validated parameter
//!   sets, and scenario matrices sweep parameter axes like any other axis,
//! * [`sweep`] — the generic (optionally parallel) saturation-sweep driver
//!   shared by every architecture, with deterministic per-point seed
//!   derivation,
//! * [`scenario`] — the typed, serializable experiment API: a
//!   [`scenario::ScenarioSpec`] names one (architecture × traffic ×
//!   bandwidth set × effort × seed × ladder) run, a
//!   [`scenario::ScenarioMatrix`] batches whole cross-products into one
//!   flattened, deduplicated, parallel work queue,
//! * [`workload`] — the closed-loop workload engine: a
//!   [`workload::WorkloadDriver`] injects a finite flow DAG (see the
//!   `pnoc-workload` crate), observes deliveries through the event stream,
//!   releases dependent flows and terminates at DAG-drain, reporting
//!   flow-completion-time quantiles and per-collective makespans,
//! * [`report`] — plain-text table rendering used by the experiment harness.
//!
//! Deterministic fault injection lives in the `pnoc-faults` crate: a
//! validated [`pnoc_faults::FaultPlan`] attaches to any scenario (the
//! `#faults=` shorthand suffix, [`scenario::ScenarioSpec::with_faults`], or
//! the [`scenario::ScenarioMatrix::fault_plans`] axis) and the engine applies
//! and repairs each fault at its exact onset cycle through the
//! [`system::PhotonicFabric`] fault hooks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod config;
pub mod engine;
pub mod metrics;
pub mod params;
pub mod registry;
pub mod report;
pub mod scenario;
pub mod stats;
pub mod sweep;
pub mod system;
pub mod workload;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::clock::Clock;
    pub use crate::config::{BandwidthSet, SimConfig};
    pub use crate::engine::{
        run_to_completion, run_to_completion_with, run_until_with, CycleNetwork,
    };
    pub use crate::metrics::{
        Counter, CsvSink, EventSink, Family, Gauge, JsonlSink, MemorySink, MetricReport, MetricRow,
        MetricSink, MetricValue, MetricsProbe, Probe, QuantileSketch, SimEvent, SimStatsProbe,
    };
    pub use crate::params::{
        ArchParamError, ArchParams, ParamKind, ParamSchema, ParamSpec, ParamValue, ResolvedParams,
    };
    pub use crate::registry::{
        lookup_architecture, register_architecture, registered_architectures,
        resolve_architecture_spec, ArchSpecError, ArchitectureBuilder, ArchitectureRegistry,
        Provisioning, UniformFabricArchitecture, UnknownArchitectureError,
    };
    pub use crate::report::Table;
    pub use crate::scenario::{
        engine_fingerprint, point_cache_key, run_specs, run_specs_with_cache, CacheStats, Effort,
        MatrixResult, PointCache, Scenario, ScenarioError, ScenarioMatrix, ScenarioResult,
        ScenarioSpec,
    };
    pub use crate::stats::SimStats;
    pub use crate::sweep::{
        derive_point_seed, sweep_offered_loads, SaturationResult, SweepMode, SweepPoint,
        SweepPointSpec,
    };
    pub use crate::system::{PhotonicFabric, PhotonicSystem};
    pub use crate::workload::{FlowProbe, WorkloadDriver};
    pub use pnoc_faults::{
        FaultController, FaultError, FaultEvent, FaultKind, FaultPlan, FaultTarget,
    };
}

pub use prelude::*;
