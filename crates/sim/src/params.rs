#![doc = include_str!("architecture.md")]

use pnoc_noc::suggest::nearest_name;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A typed architecture-parameter value: what a validated parameter resolves
/// to, and what a [`ParamSpec`] declares as its default.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamValue {
    /// An integer parameter (radix, wavelength counts, cycle counts, ...).
    Int(i64),
    /// A floating-point parameter (scale factors, rates, ...).
    Float(f64),
    /// One label out of a declared closed set (allocation policies, ...).
    Choice(String),
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // Rust's float Display is the shortest representation that
            // parses back to the same bits, so rendered specs round-trip.
            ParamValue::Int(v) => write!(f, "{v}"),
            ParamValue::Float(v) => write!(f, "{v}"),
            ParamValue::Choice(v) => f.write_str(v),
        }
    }
}

/// The kind (type + admissible range) of one declared parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ParamKind {
    /// An integer in `min..=max`.
    Int {
        /// Smallest admissible value.
        min: i64,
        /// Largest admissible value.
        max: i64,
    },
    /// A finite float in `min..=max`.
    Float {
        /// Smallest admissible value.
        min: f64,
        /// Largest admissible value.
        max: f64,
    },
    /// One of a closed set of labels.
    Enum {
        /// The admissible labels, in declaration order.
        choices: Vec<String>,
    },
}

impl ParamKind {
    /// Short kind label used in schema listings (`int`, `float`, `enum`).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            ParamKind::Int { .. } => "int",
            ParamKind::Float { .. } => "float",
            ParamKind::Enum { .. } => "enum",
        }
    }

    /// Human-readable admissible range (`2..=64`, `0.5..=4`,
    /// `proportional|paper-max`), used in listings and error messages.
    #[must_use]
    pub fn bounds_label(&self) -> String {
        match self {
            ParamKind::Int { min, max } => format!("{min}..={max}"),
            ParamKind::Float { min, max } => format!("{min}..={max}"),
            ParamKind::Enum { choices } => choices.join("|"),
        }
    }
}

/// One declared parameter of an architecture: name, kind (with bounds),
/// default value and a one-line doc string.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Parameter name, the key in `name{key=value,...}` specs.
    pub name: String,
    /// Kind and admissible range.
    pub kind: ParamKind,
    /// Value used when a spec does not set the parameter.
    pub default: ParamValue,
    /// One-line description shown by `repro --describe-arch`.
    pub doc: String,
}

/// The declared parameter space of one architecture: an ordered list of
/// [`ParamSpec`]s, built fluently by the architecture's
/// [`ArchitectureBuilder::param_schema`](crate::registry::ArchitectureBuilder::param_schema).
///
/// ```
/// use pnoc_sim::params::ParamSchema;
///
/// let schema = ParamSchema::new()
///     .int("radix", 16, 2, 512, "clusters sharing the crossbar")
///     .choice("policy", "proportional", &["proportional", "paper-max"], "allocation policy");
/// assert_eq!(schema.len(), 2);
/// assert_eq!(schema.names(), vec!["policy".to_string(), "radix".to_string()]);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ParamSchema {
    params: Vec<ParamSpec>,
}

impl ParamSchema {
    /// Creates an empty schema (an architecture with no tunable parameters).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(mut self, spec: ParamSpec) -> Self {
        assert!(
            !spec.name.is_empty()
                && spec
                    .name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
            "parameter name '{}' must be non-empty [a-zA-Z0-9_-]",
            spec.name
        );
        assert!(
            self.get(&spec.name).is_none(),
            "parameter '{}' declared twice",
            spec.name
        );
        self.params.push(spec);
        self
    }

    /// Declares an integer parameter with inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics if the default lies outside `min..=max`, the bounds are
    /// inverted, the name is empty/invalid, or the name is already declared.
    #[must_use]
    pub fn int(self, name: &str, default: i64, min: i64, max: i64, doc: &str) -> Self {
        assert!(min <= max, "parameter '{name}': min {min} > max {max}");
        assert!(
            (min..=max).contains(&default),
            "parameter '{name}': default {default} outside {min}..={max}"
        );
        self.push(ParamSpec {
            name: name.to_string(),
            kind: ParamKind::Int { min, max },
            default: ParamValue::Int(default),
            doc: doc.to_string(),
        })
    }

    /// Declares a float parameter with inclusive bounds.
    ///
    /// # Panics
    ///
    /// Panics on non-finite or inverted bounds, a default outside them, or a
    /// duplicate/invalid name.
    #[must_use]
    pub fn float(self, name: &str, default: f64, min: f64, max: f64, doc: &str) -> Self {
        assert!(
            min.is_finite() && max.is_finite() && min <= max,
            "parameter '{name}': bounds must be finite with min <= max"
        );
        assert!(
            default.is_finite() && (min..=max).contains(&default),
            "parameter '{name}': default {default} outside {min}..={max}"
        );
        self.push(ParamSpec {
            name: name.to_string(),
            kind: ParamKind::Float { min, max },
            default: ParamValue::Float(default),
            doc: doc.to_string(),
        })
    }

    /// Declares an enum parameter over a closed set of labels.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty, the default is not one of them, or the
    /// name is duplicate/invalid.
    #[must_use]
    pub fn choice(self, name: &str, default: &str, choices: &[&str], doc: &str) -> Self {
        assert!(!choices.is_empty(), "parameter '{name}': empty choice set");
        assert!(
            choices.contains(&default),
            "parameter '{name}': default '{default}' not among {choices:?}"
        );
        self.push(ParamSpec {
            name: name.to_string(),
            kind: ParamKind::Enum {
                choices: choices.iter().map(|c| c.to_string()).collect(),
            },
            default: ParamValue::Choice(default.to_string()),
            doc: doc.to_string(),
        })
    }

    /// The declared parameter of the given name, if any.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&ParamSpec> {
        self.params.iter().find(|p| p.name == name)
    }

    /// Declared parameter names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.params.iter().map(|p| p.name.clone()).collect();
        names.sort();
        names
    }

    /// The declared parameters, in declaration order.
    #[must_use]
    pub fn specs(&self) -> &[ParamSpec] {
        &self.params
    }

    /// Number of declared parameters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the schema declares no parameters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// Parses and bounds-checks one raw value against one declared parameter.
    fn parse_value(
        &self,
        architecture: &str,
        spec: &ParamSpec,
        raw: &str,
    ) -> Result<ParamValue, ArchParamError> {
        let invalid = |expected: &str| ArchParamError::InvalidValue {
            architecture: architecture.to_string(),
            key: spec.name.clone(),
            value: raw.to_string(),
            expected: expected.to_string(),
        };
        let out_of_bounds = || ArchParamError::OutOfBounds {
            architecture: architecture.to_string(),
            key: spec.name.clone(),
            value: raw.to_string(),
            bounds: spec.kind.bounds_label(),
        };
        match &spec.kind {
            ParamKind::Int { min, max } => {
                let value: i64 = raw.trim().parse().map_err(|_| invalid("an integer"))?;
                if !(*min..=*max).contains(&value) {
                    return Err(out_of_bounds());
                }
                Ok(ParamValue::Int(value))
            }
            ParamKind::Float { min, max } => {
                let value: f64 = raw.trim().parse().map_err(|_| invalid("a number"))?;
                if !value.is_finite() || !(*min..=*max).contains(&value) {
                    return Err(out_of_bounds());
                }
                Ok(ParamValue::Float(value))
            }
            ParamKind::Enum { choices } => {
                let value = raw.trim();
                if !choices.iter().any(|c| c == value) {
                    return Err(ArchParamError::UnknownChoice {
                        architecture: architecture.to_string(),
                        key: spec.name.clone(),
                        value: value.to_string(),
                        choices: choices.clone(),
                    });
                }
                Ok(ParamValue::Choice(value.to_string()))
            }
        }
    }

    /// Validates raw `key=value` overrides against this schema and returns
    /// the fully resolved parameter set: every declared parameter present,
    /// overrides parsed and bounds-checked, the rest at their defaults.
    ///
    /// # Errors
    ///
    /// * [`ArchParamError::UnknownParameter`] for a key the schema does not
    ///   declare (the message lists the declared keys and suggests the
    ///   nearest one),
    /// * [`ArchParamError::InvalidValue`] for a value that does not parse as
    ///   the declared kind,
    /// * [`ArchParamError::OutOfBounds`] / [`ArchParamError::UnknownChoice`]
    ///   for a parsed value outside the declared bounds or choice set.
    pub fn validate(
        &self,
        architecture: &str,
        params: &ArchParams,
    ) -> Result<ResolvedParams, ArchParamError> {
        for key in params.keys() {
            if self.get(key).is_none() {
                return Err(ArchParamError::UnknownParameter {
                    architecture: architecture.to_string(),
                    key: key.to_string(),
                    known: self.names(),
                });
            }
        }
        let mut values = BTreeMap::new();
        for spec in &self.params {
            let value = match params.get(&spec.name) {
                Some(raw) => self.parse_value(architecture, spec, raw)?,
                None => spec.default.clone(),
            };
            values.insert(spec.name.clone(), value);
        }
        Ok(ResolvedParams { values })
    }
}

/// The one definition of the canonical `{key=value,...}` text form, shared
/// by [`ArchParams::render`] and [`ResolvedParams::canonical`] so the spec
/// text and the batch engine's deduplication key can never drift apart.
/// Empty input renders as the empty string.
fn render_braced<K: std::fmt::Display, V: std::fmt::Display>(
    entries: impl Iterator<Item = (K, V)>,
) -> String {
    let body: Vec<String> = entries.map(|(k, v)| format!("{k}={v}")).collect();
    if body.is_empty() {
        return String::new();
    }
    format!("{{{}}}", body.join(","))
}

/// Raw, unvalidated architecture-parameter overrides: an ordered
/// `key → value-string` map, the wire/spec-string representation of the
/// parameters. Typing and bounds-checking happen against a [`ParamSchema`]
/// at resolve time (see [`ParamSchema::validate`]).
///
/// The canonical text form is `{key=value,...}` with keys in sorted order;
/// [`ArchParams::parse`] and [`ArchParams::render`] are inverses.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ArchParams {
    entries: BTreeMap<String, String>,
}

impl ArchParams {
    /// Creates an empty override set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Fluently sets one override (replacing any previous value of the key).
    #[must_use]
    pub fn set(mut self, key: impl Into<String>, value: impl ToString) -> Self {
        self.insert(key, value);
        self
    }

    /// Sets one override in place (replacing any previous value of the key).
    pub fn insert(&mut self, key: impl Into<String>, value: impl ToString) {
        self.entries.insert(key.into(), value.to_string());
    }

    /// The raw override for `key`, if set.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// The override keys, sorted.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// Iterates `(key, value)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of overrides.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no overrides are set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the canonical `{key=value,...}` text form (the empty string
    /// when no overrides are set), the inverse of [`ArchParams::parse`].
    #[must_use]
    pub fn render(&self) -> String {
        render_braced(self.entries.iter())
    }

    /// Parses a `{key=value,...}` block (or the empty string, meaning no
    /// overrides). The inverse of [`ArchParams::render`].
    ///
    /// # Errors
    ///
    /// Returns [`ArchParamError::Malformed`] on missing/unbalanced braces,
    /// empty keys or values, a missing `=`, or a duplicated key.
    pub fn parse(text: &str) -> Result<Self, ArchParamError> {
        let malformed = |reason: &str| ArchParamError::Malformed {
            input: text.to_string(),
            reason: reason.to_string(),
        };
        if text.is_empty() {
            return Ok(Self::new());
        }
        let body = text
            .strip_prefix('{')
            .and_then(|rest| rest.strip_suffix('}'))
            .ok_or_else(|| malformed("parameters must be enclosed in braces: {key=value,...}"))?;
        if body.contains(['{', '}']) {
            return Err(malformed("nested braces are not allowed"));
        }
        let mut params = Self::new();
        if body.is_empty() {
            return Ok(params);
        }
        for pair in body.split(',') {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| malformed("each parameter must be key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            if key.is_empty() || value.is_empty() {
                return Err(malformed("parameter keys and values must be non-empty"));
            }
            if params.get(key).is_some() {
                return Err(malformed(&format!("parameter '{key}' is set twice")));
            }
            params.insert(key, value);
        }
        Ok(params)
    }

    /// Splits a full `name{key=value,...}` architecture spec into the bare
    /// registry name and its parameter overrides (`"firefly"` →
    /// `("firefly", {})`, `"firefly{radix=8}"` → `("firefly", {radix=8})`).
    ///
    /// # Errors
    ///
    /// Returns [`ArchParamError::Malformed`] on an empty name or a malformed
    /// parameter block (see [`ArchParams::parse`]).
    pub fn split_spec(text: &str) -> Result<(String, Self), ArchParamError> {
        let (name, block) = match text.find('{') {
            Some(brace) => (&text[..brace], &text[brace..]),
            None => (text, ""),
        };
        if name.is_empty() {
            return Err(ArchParamError::Malformed {
                input: text.to_string(),
                reason: "architecture spec needs a name before '{'".to_string(),
            });
        }
        Ok((name.to_string(), Self::parse(block)?))
    }

    /// Renders a full `name{key=value,...}` architecture spec (just the bare
    /// name when no overrides are set), the inverse of
    /// [`ArchParams::split_spec`].
    #[must_use]
    pub fn render_spec(&self, name: &str) -> String {
        format!("{name}{}", self.render())
    }
}

impl std::fmt::Display for ArchParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// A schema-validated, fully resolved parameter set: every parameter the
/// architecture declares, either at its override or its default value.
/// Produced by [`ParamSchema::validate`]; consumed by
/// [`ArchitectureBuilder::build`](crate::registry::ArchitectureBuilder::build).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ResolvedParams {
    values: BTreeMap<String, ParamValue>,
}

impl ResolvedParams {
    /// An empty parameter set (what an empty schema validates to).
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// The resolved value of `key`, if the schema declared it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.values.get(key)
    }

    /// The resolved integer parameter `key`.
    ///
    /// # Panics
    ///
    /// Panics when the schema did not declare `key` as an int — a builder
    /// bug, not a user input error (user input is validated earlier).
    #[must_use]
    pub fn int(&self, key: &str) -> i64 {
        match self.values.get(key) {
            Some(ParamValue::Int(v)) => *v,
            other => panic!("parameter '{key}' is not a resolved int (got {other:?})"),
        }
    }

    /// The resolved float parameter `key`.
    ///
    /// # Panics
    ///
    /// Panics when the schema did not declare `key` as a float.
    #[must_use]
    pub fn float(&self, key: &str) -> f64 {
        match self.values.get(key) {
            Some(ParamValue::Float(v)) => *v,
            other => panic!("parameter '{key}' is not a resolved float (got {other:?})"),
        }
    }

    /// The resolved enum parameter `key`.
    ///
    /// # Panics
    ///
    /// Panics when the schema did not declare `key` as an enum.
    #[must_use]
    pub fn choice(&self, key: &str) -> &str {
        match self.values.get(key) {
            Some(ParamValue::Choice(v)) => v,
            other => panic!("parameter '{key}' is not a resolved enum (got {other:?})"),
        }
    }

    /// Number of resolved parameters (= the schema size).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the architecture declares no parameters.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The canonical `{key=value,...}` rendering of the **full** resolved
    /// set (empty string for an empty schema). Because defaults are filled
    /// in, two specs that resolve to the same effective parameters render
    /// identically — this is the parameter component of the batch engine's
    /// deduplication key, so `firefly` and `firefly{radix=16}` (the default)
    /// share one simulation.
    #[must_use]
    pub fn canonical(&self) -> String {
        render_braced(self.values.iter())
    }
}

/// Why architecture parameters failed to parse or validate.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchParamError {
    /// The `name{key=value,...}` text itself is malformed.
    Malformed {
        /// The offending input.
        input: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A key the architecture's schema does not declare.
    UnknownParameter {
        /// The architecture whose schema was consulted.
        architecture: String,
        /// The unknown key.
        key: String,
        /// Every declared key, sorted.
        known: Vec<String>,
    },
    /// A value that does not parse as the declared kind.
    InvalidValue {
        /// The architecture whose schema was consulted.
        architecture: String,
        /// The offending key.
        key: String,
        /// The raw value.
        value: String,
        /// What the kind expected (e.g. "an integer").
        expected: String,
    },
    /// A parsed value outside the declared bounds.
    OutOfBounds {
        /// The architecture whose schema was consulted.
        architecture: String,
        /// The offending key.
        key: String,
        /// The raw value.
        value: String,
        /// The declared admissible range.
        bounds: String,
    },
    /// An enum value outside the declared choice set.
    UnknownChoice {
        /// The architecture whose schema was consulted.
        architecture: String,
        /// The offending key.
        key: String,
        /// The raw value.
        value: String,
        /// The declared labels.
        choices: Vec<String>,
    },
}

impl ArchParamError {
    /// The declared name closest to the offending key or choice, when the
    /// error is an unknown key/choice and a declared name is within typo
    /// distance (same metric as the registry's "did you mean").
    #[must_use]
    pub fn suggestion(&self) -> Option<&str> {
        match self {
            ArchParamError::UnknownParameter { key, known, .. } => {
                nearest_name(key, known.iter().map(String::as_str))
            }
            ArchParamError::UnknownChoice { value, choices, .. } => {
                nearest_name(value, choices.iter().map(String::as_str))
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for ArchParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchParamError::Malformed { input, reason } => {
                write!(f, "cannot parse architecture spec '{input}': {reason}")
            }
            ArchParamError::UnknownParameter {
                architecture,
                key,
                known,
            } => {
                write!(
                    f,
                    "unknown parameter '{key}' for architecture '{architecture}'; declared: [{}]",
                    known.join(", ")
                )?;
                if let Some(suggestion) = self.suggestion() {
                    write!(f, " — did you mean '{suggestion}'?")?;
                }
                Ok(())
            }
            ArchParamError::InvalidValue {
                architecture,
                key,
                value,
                expected,
            } => write!(
                f,
                "parameter '{key}' of architecture '{architecture}': '{value}' is not {expected}"
            ),
            ArchParamError::OutOfBounds {
                architecture,
                key,
                value,
                bounds,
            } => write!(
                f,
                "parameter '{key}' of architecture '{architecture}': \
                 {value} is outside the admissible range {bounds}"
            ),
            ArchParamError::UnknownChoice {
                architecture,
                key,
                value,
                choices,
            } => {
                write!(
                    f,
                    "parameter '{key}' of architecture '{architecture}': \
                     unknown choice '{value}'; declared: [{}]",
                    choices.join(", ")
                )?;
                if let Some(suggestion) = self.suggestion() {
                    write!(f, " — did you mean '{suggestion}'?")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ArchParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ParamSchema {
        ParamSchema::new()
            .int("radix", 16, 2, 512, "clusters sharing the crossbar")
            .float("scale", 1.0, 0.25, 4.0, "load scale factor")
            .choice(
                "policy",
                "proportional",
                &["proportional", "paper-max"],
                "allocation policy",
            )
    }

    #[test]
    fn schema_declares_and_lists_params() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(
            s.names(),
            vec![
                "policy".to_string(),
                "radix".to_string(),
                "scale".to_string()
            ]
        );
        let radix = s.get("radix").expect("declared");
        assert_eq!(radix.kind.label(), "int");
        assert_eq!(radix.kind.bounds_label(), "2..=512");
        assert_eq!(radix.default, ParamValue::Int(16));
        assert_eq!(
            s.get("policy").unwrap().kind.bounds_label(),
            "proportional|paper-max"
        );
        assert!(s.get("missing").is_none());
    }

    #[test]
    #[should_panic(expected = "declared twice")]
    fn schema_rejects_duplicate_names() {
        let _ = ParamSchema::new()
            .int("radix", 16, 2, 64, "a")
            .int("radix", 8, 2, 64, "b");
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn schema_rejects_default_outside_bounds() {
        let _ = ParamSchema::new().int("radix", 1, 2, 64, "bad default");
    }

    #[test]
    fn params_parse_and_render_are_inverses() {
        for text in ["", "{radix=8}", "{policy=paper-max,radix=8,scale=1.5}"] {
            let parsed = ArchParams::parse(text).expect("well-formed");
            assert_eq!(parsed.render(), text, "canonical text must round-trip");
            assert_eq!(ArchParams::parse(&parsed.render()).unwrap(), parsed);
        }
        // Non-canonical order and whitespace normalise to the canonical form.
        let messy = ArchParams::parse("{scale=1.5, radix=8}").expect("well-formed");
        assert_eq!(messy.render(), "{radix=8,scale=1.5}");
        assert_eq!(messy.get("radix"), Some("8"));
        assert_eq!(messy.len(), 2);
    }

    #[test]
    fn malformed_param_blocks_are_rejected() {
        for bad in [
            "radix=8",
            "{radix=8",
            "radix=8}",
            "{radix}",
            "{=8}",
            "{radix=}",
            "{radix=8,radix=9}",
            "{radix={8}}",
            "{,}",
        ] {
            let error = ArchParams::parse(bad).expect_err(bad);
            assert!(
                matches!(error, ArchParamError::Malformed { .. }),
                "'{bad}' should be malformed, got {error:?}"
            );
            assert!(error.to_string().contains("cannot parse"), "{error}");
        }
    }

    #[test]
    fn specs_split_and_render() {
        let (name, params) = ArchParams::split_spec("firefly{radix=8}").unwrap();
        assert_eq!(name, "firefly");
        assert_eq!(params.get("radix"), Some("8"));
        assert_eq!(params.render_spec("firefly"), "firefly{radix=8}");

        let (name, params) = ArchParams::split_spec("firefly").unwrap();
        assert_eq!(name, "firefly");
        assert!(params.is_empty());
        assert_eq!(params.render_spec("firefly"), "firefly");

        assert!(ArchParams::split_spec("{radix=8}").is_err());
        assert!(ArchParams::split_spec("firefly{radix=8").is_err());
    }

    #[test]
    fn validation_fills_defaults_and_applies_overrides() {
        let resolved = schema()
            .validate("test-arch", &ArchParams::new().set("radix", 8))
            .expect("valid override");
        assert_eq!(resolved.int("radix"), 8);
        assert!((resolved.float("scale") - 1.0).abs() < 1e-12);
        assert_eq!(resolved.choice("policy"), "proportional");
        assert_eq!(resolved.len(), 3);
        assert_eq!(
            resolved.canonical(),
            "{policy=proportional,radix=8,scale=1}"
        );
        // Defaults-only resolves to the same canonical set as explicitly
        // passing the default values.
        let defaults = schema().validate("test-arch", &ArchParams::new()).unwrap();
        let explicit = schema()
            .validate("test-arch", &ArchParams::new().set("radix", 16))
            .unwrap();
        assert_eq!(defaults.canonical(), explicit.canonical());
    }

    #[test]
    fn unknown_parameter_lists_catalogue_and_suggests_nearest() {
        let error = schema()
            .validate("test-arch", &ArchParams::new().set("radx", 8))
            .expect_err("'radx' is not declared");
        assert_eq!(error.suggestion(), Some("radix"));
        let message = error.to_string();
        assert!(
            message.contains("unknown parameter 'radx' for architecture 'test-arch'"),
            "{message}"
        );
        assert!(message.contains("[policy, radix, scale]"), "{message}");
        assert!(message.contains("did you mean 'radix'?"), "{message}");

        // A nonsense key still lists the catalogue, without a suggestion.
        let error = schema()
            .validate("test-arch", &ArchParams::new().set("warp-factor", 9))
            .expect_err("not declared");
        assert_eq!(error.suggestion(), None);
        assert!(!error.to_string().contains("did you mean"));
    }

    #[test]
    fn out_of_bounds_and_invalid_values_render_the_bounds() {
        let error = schema()
            .validate("test-arch", &ArchParams::new().set("radix", 1))
            .expect_err("below min");
        assert!(
            matches!(error, ArchParamError::OutOfBounds { .. }),
            "{error:?}"
        );
        assert!(error.to_string().contains("2..=512"), "{error}");

        let error = schema()
            .validate("test-arch", &ArchParams::new().set("scale", "100"))
            .expect_err("above max");
        assert!(error.to_string().contains("0.25..=4"), "{error}");

        let error = schema()
            .validate("test-arch", &ArchParams::new().set("radix", "eight"))
            .expect_err("not an integer");
        assert!(
            matches!(error, ArchParamError::InvalidValue { .. }),
            "{error:?}"
        );
        assert!(error.to_string().contains("not an integer"), "{error}");

        let error = schema()
            .validate("test-arch", &ArchParams::new().set("scale", "NaN"))
            .expect_err("not finite");
        assert!(matches!(error, ArchParamError::OutOfBounds { .. }));
    }

    #[test]
    fn unknown_choice_suggests_the_nearest_label() {
        let error = schema()
            .validate("test-arch", &ArchParams::new().set("policy", "paper-maxx"))
            .expect_err("unknown label");
        assert_eq!(error.suggestion(), Some("paper-max"));
        let message = error.to_string();
        assert!(message.contains("[proportional, paper-max]"), "{message}");
        assert!(message.contains("did you mean 'paper-max'?"), "{message}");
    }

    #[test]
    fn float_values_round_trip_through_display() {
        let resolved = schema()
            .validate("test-arch", &ArchParams::new().set("scale", 0.3))
            .unwrap();
        let rendered = resolved.canonical();
        // Re-parsing the canonical rendering recovers the exact same value.
        let params = ArchParams::parse(
            &rendered
                .replace("policy=proportional,", "")
                .replace("radix=16,", ""),
        )
        .unwrap();
        let again = schema().validate("test-arch", &params).unwrap();
        assert_eq!(again.float("scale").to_bits(), 0.3f64.to_bits());
    }
}
