//! The system clock.
//!
//! The whole chip runs at a single 2.5 GHz clock (Table 3-3), i.e. a 400 ps
//! cycle. Photonic line rates are expressed per wavelength (12.5 Gb/s), so a
//! single wavelength carries exactly 5 bits per clock cycle — the conversion
//! factor at the heart of the cycle-accurate photonic transfer model.

use serde::{Deserialize, Serialize};

/// The global clock of the simulated chip.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Clock {
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
}

impl Clock {
    /// The paper's 2.5 GHz clock.
    #[must_use]
    pub fn paper_default() -> Self {
        Self { frequency_ghz: 2.5 }
    }

    /// Creates a clock.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not positive.
    #[must_use]
    pub fn new(frequency_ghz: f64) -> Self {
        assert!(frequency_ghz > 0.0, "clock frequency must be positive");
        Self { frequency_ghz }
    }

    /// Cycle time in pico-seconds (400 ps at 2.5 GHz).
    #[must_use]
    pub fn cycle_time_ps(&self) -> f64 {
        1e3 / self.frequency_ghz
    }

    /// Cycle time in seconds.
    #[must_use]
    pub fn cycle_time_s(&self) -> f64 {
        1e-9 / self.frequency_ghz
    }

    /// Converts a cycle count into seconds.
    #[must_use]
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 * self.cycle_time_s()
    }

    /// Bits carried per cycle by one wavelength running at `line_rate_gbps`.
    #[must_use]
    pub fn bits_per_wavelength_per_cycle(&self, line_rate_gbps: f64) -> f64 {
        line_rate_gbps / self.frequency_ghz
    }

    /// Number of whole cycles needed to transfer `bits` bits over a channel of
    /// `bandwidth_gbps` (rounded up, minimum 1).
    #[must_use]
    pub fn cycles_for_transfer(&self, bits: u64, bandwidth_gbps: f64) -> u64 {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        let seconds = bits as f64 / (bandwidth_gbps * 1e9);
        (seconds / self.cycle_time_s()).ceil().max(1.0) as u64
    }

    /// Converts an aggregate number of bits delivered over `cycles` cycles
    /// into a bandwidth in Gb/s.
    #[must_use]
    pub fn bandwidth_gbps(&self, bits: u64, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        bits as f64 / self.cycles_to_seconds(cycles) / 1e9
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_clock_cycle_time() {
        let c = Clock::paper_default();
        assert!((c.cycle_time_ps() - 400.0).abs() < 1e-9);
        assert!((c.cycle_time_s() - 400e-12).abs() < 1e-21);
    }

    #[test]
    fn five_bits_per_wavelength_per_cycle() {
        let c = Clock::paper_default();
        assert!((c.bits_per_wavelength_per_cycle(12.5) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn reservation_flit_timing_of_section_3_4_1_1() {
        let c = Clock::paper_default();
        // 8 wavelength identifiers × 6 bits = 48 bits over 800 Gb/s = 60 ps,
        // fits in one 400 ps cycle.
        assert_eq!(c.cycles_for_transfer(48, 800.0), 1);
        // 64 identifiers × 9 bits = 576 bits over 800 Gb/s = 720 ps → 2 cycles.
        assert_eq!(c.cycles_for_transfer(576, 800.0), 2);
    }

    #[test]
    fn bandwidth_computation_roundtrip() {
        let c = Clock::paper_default();
        // 4000 bits over 100 cycles of 400 ps = 4000 / 40 ns = 100 Gb/s.
        assert!((c.bandwidth_gbps(4000, 100) - 100.0).abs() < 1e-9);
        assert_eq!(c.bandwidth_gbps(4000, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = Clock::new(0.0);
    }
}
