//! The full cluster system: cores, electrical core switches, photonic routers
//! and reservation-assisted photonic transfers.
//!
//! [`PhotonicSystem`] implements the hybrid, hierarchical organisation shared
//! by the Firefly baseline and d-HetPNoC (Section 3.1):
//!
//! * every core has an injection queue and a 5-port electrical core switch,
//! * the four switches of a cluster are connected all-to-all and to the
//!   cluster's photonic router,
//! * the photonic router buffers outgoing flits per source switch, transmits
//!   packets over the photonic crossbar after broadcasting a reservation, and
//!   buffers incoming flits per destination switch (ejection),
//! * a [`PhotonicFabric`] implementation decides how many wavelengths each
//!   transmission may use — this is the only place where Firefly and
//!   d-HetPNoC differ.
//!
//! The simulation is flit-level and cycle-accurate: electrical routers follow
//! the three-stage pipeline of `pnoc-noc`, photonic transfers accumulate
//! wavelength·cycle credit (5 bits per wavelength per cycle with the paper's
//! clock and line rate), and energy is accounted per bit with the
//! coefficients of Table 3-5.

use crate::config::SimConfig;
use crate::engine::CycleNetwork;
use crate::metrics::{EventSink, NullSink, SimEvent};
use crate::stats::SimStats;
use pnoc_noc::arbiter::{Arbiter, RoundRobinArbiter};
use pnoc_noc::flit::Flit;
use pnoc_noc::ids::{ClusterId, CoreId, PacketId, PacketIdAllocator, PortId, RouterId, VcId};
use pnoc_noc::packet::{Packet, PacketFramer};
use pnoc_noc::router::ElectricalRouter;
use pnoc_noc::routing::ClusterRoutingTable;
use pnoc_noc::topology::ClusterTopology;
use pnoc_noc::traffic_model::TrafficModel;
use pnoc_noc::vc::VcSet;
use pnoc_photonics::energy::{EnergyAccumulator, PhotonicEnergyModel};
use std::collections::VecDeque;

/// The photonic interconnect behaviour that distinguishes architectures.
///
/// The generic [`PhotonicSystem`] asks the fabric, every time a cluster wants
/// to start an inter-cluster packet transfer, how many wavelengths that
/// transfer may use and how long the reservation broadcast takes. The Firefly
/// baseline answers with its fixed per-channel width; d-HetPNoC answers from
/// its dynamically allocated wavelength pool and per-destination demand.
pub trait PhotonicFabric {
    /// Architecture name used in reports ("firefly", "d-hetpnoc", ...).
    fn architecture_name(&self) -> &str;

    /// Called once at the beginning of every cycle (d-HetPNoC circulates its
    /// allocation token here).
    fn pre_cycle(&mut self, cycle: u64);

    /// Fast-forwards the fabric's control plane across the idle cycles
    /// `from..to`, leaving it in exactly the state that calling
    /// [`PhotonicFabric::pre_cycle`] for each cycle of the span would have.
    /// The default does just that; fabrics with cheap-to-replay control state
    /// (token rings, credit counters) should override it with a closed form.
    fn skip_cycles(&mut self, from: u64, to: u64) {
        for cycle in from..to {
            self.pre_cycle(cycle);
        }
    }

    /// Total number of wavelengths cluster `src` may drive concurrently at
    /// this moment (its write-channel width).
    fn pool_size(&self, src: ClusterId) -> usize;

    /// Number of wavelengths a single transmission from `src` to `dst` uses
    /// (before being limited by the currently free part of the pool).
    fn wavelengths_for(&self, src: ClusterId, dst: ClusterId) -> usize;

    /// Cycles taken by the reservation broadcast for a `src` → `dst` packet
    /// (1 for Firefly; 1–2 for d-HetPNoC depending on how many wavelength
    /// identifiers must be piggybacked, Section 3.4.1.1).
    fn reservation_cycles(&self, src: ClusterId, dst: ClusterId) -> u64;

    /// Total data wavelengths in the fabric.
    fn total_data_wavelengths(&self) -> usize;

    /// Current per-cluster wavelength allocation (diagnostic).
    fn allocation_snapshot(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Applies a fault to the fabric's data plane. The default ignores the
    /// event, so fabrics only model the degradations they understand; the
    /// system-level effects every fabric shares (a failed link refusing new
    /// transmissions) are handled by [`PhotonicSystem`] via
    /// [`PhotonicFabric::link_up`].
    fn apply_fault(&mut self, event: &pnoc_faults::FaultEvent) {
        let _ = event;
    }

    /// Reverses a previously applied fault (called at the event's repair
    /// cycle). Must restore exactly the state `apply_fault` disturbed.
    fn clear_fault(&mut self, event: &pnoc_faults::FaultEvent) {
        let _ = event;
    }

    /// Whether the photonic link of `cluster` is currently operational. A
    /// down link stops *new* transmissions from starting at or terminating on
    /// the cluster; in-flight transfers complete (photons already committed
    /// to the waveguide are not retracted).
    fn link_up(&self, cluster: ClusterId) -> bool {
        let _ = cluster;
        true
    }
}

/// A trivially uniform fabric: every cluster always owns `wavelengths_per_channel`
/// wavelengths and every transmission uses all of them. Used for tests and as
/// the simplest possible baseline.
#[derive(Debug, Clone)]
pub struct UniformFabric {
    /// Name reported in statistics.
    pub name: String,
    /// Wavelengths per cluster write channel.
    pub wavelengths_per_channel: usize,
    /// Total data wavelengths.
    pub total_wavelengths: usize,
    /// Reservation latency in cycles.
    pub reservation_cycles: u64,
}

impl UniformFabric {
    /// Creates a uniform fabric with `total` wavelengths split evenly over
    /// `clusters` clusters.
    #[must_use]
    pub fn new(name: &str, total: usize, clusters: usize) -> Self {
        Self {
            name: name.to_string(),
            wavelengths_per_channel: (total / clusters).max(1),
            total_wavelengths: total,
            reservation_cycles: 1,
        }
    }
}

impl PhotonicFabric for UniformFabric {
    fn architecture_name(&self) -> &str {
        &self.name
    }

    fn pre_cycle(&mut self, _cycle: u64) {}

    fn skip_cycles(&mut self, _from: u64, _to: u64) {}

    fn pool_size(&self, _src: ClusterId) -> usize {
        self.wavelengths_per_channel
    }

    fn wavelengths_for(&self, _src: ClusterId, _dst: ClusterId) -> usize {
        self.wavelengths_per_channel
    }

    fn reservation_cycles(&self, _src: ClusterId, _dst: ClusterId) -> u64 {
        self.reservation_cycles
    }

    fn total_data_wavelengths(&self) -> usize {
        self.total_wavelengths
    }
}

/// An in-flight photonic packet transfer.
///
/// A transmission goes through two phases: the *reservation* phase (the
/// reservation flit travels on the dedicated reservation channel, overlapping
/// with other transmissions' data phases) and the *data* phase, during which
/// the transmission occupies `wavelengths` wavelengths of the source's write
/// channel. Wavelengths are assigned when the data phase starts: at least the
/// application's demanded wavelengths (bounded by what is free), plus any
/// idle wavelengths of the pool that no other pending transfer is asking for
/// (work-conserving use of the allocated channel).
#[derive(Debug, Clone)]
struct Transmission {
    packet: PacketId,
    src_port: usize,
    src_vc: VcId,
    dst_cluster: ClusterId,
    dst_local: usize,
    dst_vc: VcId,
    /// Wavelengths demanded by the application class of this flow.
    demand: usize,
    /// Wavelengths actually driving the data phase (0 until it starts).
    wavelengths: usize,
    data_started: bool,
    reservation_remaining: u64,
    credit_bits: f64,
    flits_sent: u32,
    flits_total: u32,
}

/// Per-cluster photonic router state.
struct PhotonicRouter {
    /// Input buffers, one port per local core switch.
    inputs: Vec<VcSet>,
    /// Ejection buffers, one port per local core switch.
    ejection: Vec<VcSet>,
    /// Which packet reserved each ejection VC (None = free).
    ejection_reserved: Vec<Vec<Option<PacketId>>>,
    /// Round-robin over ejection VCs, one arbiter per ejection port.
    ejection_rr: Vec<RoundRobinArbiter>,
    /// Round-robin over input ports for starting transmissions.
    start_rr: RoundRobinArbiter,
    /// Active outgoing transmissions.
    active: Vec<Transmission>,
}

impl PhotonicRouter {
    fn new(ports: usize, vcs: usize, depth: usize) -> Self {
        Self {
            inputs: (0..ports).map(|_| VcSet::new(vcs, depth)).collect(),
            ejection: (0..ports).map(|_| VcSet::new(vcs, depth)).collect(),
            ejection_reserved: vec![vec![None; vcs]; ports],
            ejection_rr: (0..ports).map(|_| RoundRobinArbiter::new(vcs)).collect(),
            start_rr: RoundRobinArbiter::new(ports),
            active: Vec::new(),
        }
    }

    /// Wavelengths occupied by transmissions in their data phase. Reservation
    /// broadcasts travel on the separate reservation channel and do not hold
    /// data wavelengths.
    fn wavelengths_in_use(&self) -> usize {
        self.active
            .iter()
            .filter(|t| t.data_started)
            .map(|t| t.wavelengths)
            .sum()
    }

    /// Total wavelengths demanded by transmissions that have not started
    /// their data phase yet (used for work-conserving wavelength assignment).
    fn pending_demand(&self) -> usize {
        self.active
            .iter()
            .filter(|t| !t.data_started)
            .map(|t| t.demand)
            .sum()
    }

    fn has_active_on(&self, port: usize, vc: VcId) -> bool {
        self.active
            .iter()
            .any(|t| t.src_port == port && t.src_vc == vc)
    }

    fn free_ejection_vc(&self, port: usize) -> Option<VcId> {
        (0..self.ejection[port].num_vcs()).map(VcId).find(|&vc| {
            self.ejection_reserved[port][vc.0].is_none()
                && self.ejection[port]
                    .vc(vc)
                    .map(|b| b.is_empty())
                    .unwrap_or(false)
        })
    }

    fn buffered_flits(&self) -> usize {
        self.inputs
            .iter()
            .map(VcSet::total_occupancy)
            .sum::<usize>()
            + self
                .ejection
                .iter()
                .map(VcSet::total_occupancy)
                .sum::<usize>()
    }
}

/// Per-core injection state.
struct CoreState {
    queue: VecDeque<Packet>,
    injecting: Option<InjectionProgress>,
}

struct InjectionProgress {
    flits: Vec<Flit>,
    next: usize,
}

/// A flit handed from a photonic transmission to a destination ejection
/// buffer (two-phase update to satisfy the borrow checker).
struct PhotonicDelivery {
    dst_cluster: usize,
    dst_local: usize,
    dst_vc: VcId,
    flit: Flit,
}

/// The complete simulated chip.
pub struct PhotonicSystem<F: PhotonicFabric, T: TrafficModel> {
    config: SimConfig,
    topology: ClusterTopology,
    fabric: F,
    traffic: T,
    ids: PacketIdAllocator,
    switches: Vec<ElectricalRouter>,
    photonic: Vec<PhotonicRouter>,
    cores: Vec<CoreState>,
    energy: EnergyAccumulator,
    stats: SimStats,
    /// Flits buffered in each electrical core switch (incremental mirror of
    /// [`ElectricalRouter::buffered_flits`], kept for O(1) idle detection).
    switch_occ: Vec<u32>,
    /// Flits buffered in each cluster's photonic input buffers.
    cluster_in_occ: Vec<u32>,
    /// Flits buffered in each cluster's ejection buffers.
    cluster_ej_occ: Vec<u32>,
    /// Reusable acceptance snapshot, indexed `(core * ports + port) * vcs + vc`.
    scratch_switch_free: Vec<bool>,
    /// Reusable acceptance snapshot, indexed `(cluster * cpc + local) * vcs + vc`.
    scratch_photonic_free: Vec<bool>,
    /// Reusable per-cycle grant list (switch index, grant).
    scratch_all_grants: Vec<(usize, pnoc_noc::router::OutputGrant)>,
    /// Reusable per-switch grant buffer handed to `ElectricalRouter::step_into`.
    scratch_router_grants: Vec<pnoc_noc::router::OutputGrant>,
    /// Reusable photonic delivery list.
    scratch_deliveries: Vec<PhotonicDelivery>,
    /// Reusable finished-transmission index list.
    scratch_finished: Vec<usize>,
    /// Reusable arbiter request vector.
    scratch_requests: Vec<bool>,
    /// Deterministic fault schedule, when one was installed.
    faults: Option<pnoc_faults::FaultController>,
}

impl<F: PhotonicFabric, T: TrafficModel> PhotonicSystem<F, T> {
    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if the configured VC depth cannot hold a full packet (the
    /// reservation protocol pre-allocates one ejection VC per packet).
    pub fn new(config: SimConfig, fabric: F, traffic: T) -> Self {
        assert!(
            config.vc_depth as u32 >= config.bandwidth_set.packet_flits(),
            "VC depth ({}) must hold a full packet ({} flits)",
            config.vc_depth,
            config.bandwidth_set.packet_flits()
        );
        let topology = config.topology;
        let spec = config.core_switch_spec();
        let mut switches = Vec::with_capacity(topology.num_cores());
        for core in topology.cores() {
            let mut router = ElectricalRouter::new(RouterId(core.0), spec);
            let table = ClusterRoutingTable::new(topology, core);
            router.set_route_fn(Box::new(move |dst| table.output_port(dst)));
            switches.push(router);
        }
        let photonic = (0..topology.num_clusters())
            .map(|_| {
                PhotonicRouter::new(
                    topology.cores_per_cluster(),
                    config.vcs_per_port,
                    config.vc_depth,
                )
            })
            .collect();
        let cores = (0..topology.num_cores())
            .map(|_| CoreState {
                queue: VecDeque::new(),
                injecting: None,
            })
            .collect();
        let stats = SimStats::new(
            fabric.architecture_name(),
            &traffic.name(),
            traffic.offered_load().value(),
            config.clock,
        );
        let num_cores = topology.num_cores();
        let num_clusters = topology.num_clusters();
        let cpc = topology.cores_per_cluster();
        let ports = topology.switch_ports();
        let vcs = config.vcs_per_port;
        Self {
            config,
            topology,
            fabric,
            traffic,
            ids: PacketIdAllocator::new(),
            switches,
            photonic,
            cores,
            energy: EnergyAccumulator::new(PhotonicEnergyModel::paper_default()),
            stats,
            switch_occ: vec![0; num_cores],
            cluster_in_occ: vec![0; num_clusters],
            cluster_ej_occ: vec![0; num_clusters],
            scratch_switch_free: vec![false; num_cores * ports * vcs],
            scratch_photonic_free: vec![false; num_clusters * cpc * vcs],
            scratch_all_grants: Vec::new(),
            scratch_router_grants: Vec::new(),
            scratch_deliveries: Vec::new(),
            scratch_finished: Vec::new(),
            scratch_requests: Vec::new(),
            faults: None,
        }
    }

    /// Immutable access to the fabric (used by tests and experiments to
    /// inspect allocations).
    pub fn fabric(&self) -> &F {
        &self.fabric
    }

    /// Immutable access to the traffic model.
    pub fn traffic(&self) -> &T {
        &self.traffic
    }

    /// Total flits currently buffered anywhere in the network.
    ///
    /// Answered from the incrementally maintained occupancy counters (debug
    /// builds cross-check them against a full buffer scan), so closed-loop
    /// drain checks can call this every cycle without walking every VC.
    #[must_use]
    pub fn buffered_flits(&self) -> usize {
        let total = self.switch_occ.iter().map(|&o| o as usize).sum::<usize>()
            + self
                .cluster_in_occ
                .iter()
                .zip(&self.cluster_ej_occ)
                .map(|(&i, &e)| i as usize + e as usize)
                .sum::<usize>();
        debug_assert_eq!(
            total,
            self.scan_buffered_flits(),
            "occupancy counters diverged from buffer contents"
        );
        total
    }

    /// Ground-truth buffer scan backing the `buffered_flits` counters.
    fn scan_buffered_flits(&self) -> usize {
        let electrical: usize = self
            .switches
            .iter()
            .map(ElectricalRouter::buffered_flits)
            .sum();
        let photonic: usize = self
            .photonic
            .iter()
            .map(PhotonicRouter::buffered_flits)
            .sum();
        electrical + photonic
    }

    /// Whether stepping the network (absent new traffic) would be a no-op:
    /// nothing buffered, no core mid-injection or with queued packets, and no
    /// in-flight photonic transmission.
    fn is_quiescent(&self) -> bool {
        self.switch_occ.iter().all(|&o| o == 0)
            && self.cluster_in_occ.iter().all(|&o| o == 0)
            && self.cluster_ej_occ.iter().all(|&o| o == 0)
            && self.photonic.iter().all(|r| r.active.is_empty())
            && self
                .cores
                .iter()
                .all(|c| c.injecting.is_none() && c.queue.is_empty())
    }

    fn generate_traffic(&mut self, cycle: u64, sink: &mut dyn EventSink) {
        for core_idx in 0..self.topology.num_cores() {
            let core = CoreId(core_idx);
            if let Some(desc) = self.traffic.next_packet(cycle, core) {
                self.stats.generated_packets += 1;
                sink.emit(cycle, SimEvent::PacketGenerated { src: core });
                let state = &mut self.cores[core_idx];
                if state.queue.len() >= self.config.injection_queue_capacity {
                    self.stats.dropped_packets += 1;
                    sink.emit(cycle, SimEvent::PacketDropped { src: core });
                    continue;
                }
                let packet = Packet {
                    id: self.ids.allocate(),
                    descriptor: desc,
                    injected_cycle: 0,
                };
                state.queue.push_back(packet);
            }
        }
    }

    fn inject_flits(&mut self, cycle: u64, sink: &mut dyn EventSink) {
        for core_idx in 0..self.topology.num_cores() {
            // An idle core (nothing queued, nothing mid-injection) cannot make
            // progress this cycle; the probe below is read-only, so skipping
            // it is behaviour-preserving.
            if self.cores[core_idx].injecting.is_none() && self.cores[core_idx].queue.is_empty() {
                continue;
            }
            // Start a new packet if the previous one finished injecting.
            if self.cores[core_idx].injecting.is_none() {
                let local_port = self.topology.local_port();
                let Some(vc) = self.switches[core_idx].free_input_vc(local_port) else {
                    continue;
                };
                let Some(mut packet) = self.cores[core_idx].queue.pop_front() else {
                    continue;
                };
                packet.injected_cycle = cycle;
                let flits = PacketFramer::frame(&packet, vc);
                self.stats.injected_packets += 1;
                sink.emit(
                    cycle,
                    SimEvent::PacketInjected {
                        src: CoreId(core_idx),
                    },
                );
                self.cores[core_idx].injecting = Some(InjectionProgress { flits, next: 0 });
            }
            // Push at most one flit of the in-progress packet per cycle.
            let mut finished = false;
            if let Some(progress) = self.cores[core_idx].injecting.as_mut() {
                let flit = progress.flits[progress.next];
                let local_port = self.topology.local_port();
                if self.switches[core_idx].can_accept(local_port, flit.vc) {
                    self.switches[core_idx]
                        .accept(local_port, flit.vc, flit, cycle)
                        .expect("capacity checked");
                    self.switch_occ[core_idx] += 1;
                    self.energy.record_buffer_write(u64::from(flit.bits));
                    self.stats.injected_flits += 1;
                    sink.emit(
                        cycle,
                        SimEvent::FlitInjected {
                            src: CoreId(core_idx),
                            bits: flit.bits,
                        },
                    );
                    progress.next += 1;
                    if progress.next == progress.flits.len() {
                        finished = true;
                    }
                }
            }
            if finished {
                self.cores[core_idx].injecting = None;
            }
        }
    }

    fn step_switches(&mut self, cycle: u64, sink: &mut dyn EventSink) {
        let topology = self.topology;
        let num_cores = topology.num_cores();
        let num_clusters = topology.num_clusters();
        let cpc = topology.cores_per_cluster();
        let ports = topology.switch_ports();
        let vcs = self.config.vcs_per_port;
        let photonic_port = topology.photonic_port();

        // Snapshot of downstream acceptance (one upstream per input port, so
        // the snapshot cannot be invalidated within the cycle). The scratch
        // buffers are refreshed only for clusters with at least one buffered
        // flit: electrical hops never leave the cluster, so a stale entry of
        // an idle cluster is never read.
        for cluster_idx in 0..num_clusters {
            let members = cluster_idx * cpc..(cluster_idx + 1) * cpc;
            if members.clone().all(|c| self.switch_occ[c] == 0) {
                continue;
            }
            for c in members {
                for p in 0..ports {
                    for v in 0..vcs {
                        self.scratch_switch_free[(c * ports + p) * vcs + v] =
                            self.switches[c].can_accept(PortId(p), VcId(v));
                    }
                }
            }
            for local in 0..cpc {
                for v in 0..vcs {
                    self.scratch_photonic_free[(cluster_idx * cpc + local) * vcs + v] =
                        self.photonic[cluster_idx].inputs[local]
                            .vc(VcId(v))
                            .map(|b| !b.is_full())
                            .unwrap_or(false);
                }
            }
        }

        // Step each switch that holds a flit against the frozen snapshots,
        // gathering its grants. An empty switch's step is a pure no-op (its
        // arbiters do not advance without a request), so it is skipped.
        let mut all_grants = std::mem::take(&mut self.scratch_all_grants);
        all_grants.clear();
        {
            let switch_free = &self.scratch_switch_free;
            let photonic_free = &self.scratch_photonic_free;
            let grants = &mut self.scratch_router_grants;
            for core_idx in 0..num_cores {
                if self.switch_occ[core_idx] == 0 {
                    continue;
                }
                let core = CoreId(core_idx);
                let cluster = topology.cluster_of(core).0;
                let local = topology.local_index(core);
                grants.clear();
                self.switches[core_idx].step_into(
                    cycle,
                    |out, vc, _flit| {
                        if out == topology.local_port() {
                            true
                        } else if out == photonic_port {
                            photonic_free[(cluster * cpc + local) * vcs + vc.0]
                        } else {
                            let peer_local = topology.peer_of_port(local, out);
                            let peer_core = ClusterId(cluster).core(peer_local, cpc);
                            let arrival_port = topology.peer_port(peer_core, core);
                            switch_free[(peer_core.0 * ports + arrival_port.0) * vcs + vc.0]
                        }
                    },
                    grants,
                );
                for g in grants.drain(..) {
                    all_grants.push((core_idx, g));
                }
            }
        }

        // Apply the grants.
        for (core_idx, grant) in all_grants.drain(..) {
            let core = CoreId(core_idx);
            let cluster = topology.cluster_of(core).0;
            let local = topology.local_index(core);
            let flit = grant.flit;
            self.switch_occ[core_idx] -= 1;
            self.energy.record_router_traversal(u64::from(flit.bits));
            if grant.output == topology.local_port() {
                debug_assert_eq!(flit.dst, core, "flit ejected at the wrong core");
                self.stats.delivered_flits += 1;
                self.stats.delivered_bits += u64::from(flit.bits);
                let photonic = !topology.same_cluster(flit.src, flit.dst);
                if photonic {
                    self.stats.delivered_photonic_bits += u64::from(flit.bits);
                }
                sink.emit(
                    cycle,
                    SimEvent::FlitDelivered {
                        src: flit.src,
                        dst: flit.dst,
                        bits: flit.bits,
                        photonic,
                    },
                );
                if flit.is_tail() {
                    let latency = cycle.saturating_sub(flit.created_cycle);
                    self.stats.record_packet_delivery(latency);
                    sink.emit(
                        cycle,
                        SimEvent::PacketDelivered {
                            src: flit.src,
                            dst: flit.dst,
                            latency,
                        },
                    );
                }
            } else if grant.output == photonic_port {
                self.energy.record_buffer_write(u64::from(flit.bits));
                self.cluster_in_occ[cluster] += 1;
                self.photonic[cluster].inputs[local]
                    .vc_mut(grant.vc)
                    .expect("vc in range")
                    .push(flit, cycle)
                    .expect("photonic input capacity checked via snapshot");
            } else {
                let peer_local = topology.peer_of_port(local, grant.output);
                let peer_core = ClusterId(cluster).core(peer_local, cpc);
                let arrival_port = topology.peer_port(peer_core, core);
                self.energy.record_buffer_write(u64::from(flit.bits));
                self.switch_occ[peer_core.0] += 1;
                self.switches[peer_core.0]
                    .accept(arrival_port, grant.vc, flit, cycle)
                    .expect("peer capacity checked via snapshot");
            }
        }
        self.scratch_all_grants = all_grants;
    }

    fn advance_transmissions(&mut self, cycle: u64) {
        let bits_per_wavelength = self.config.bits_per_wavelength_per_cycle();
        let mut deliveries = std::mem::take(&mut self.scratch_deliveries);

        for cluster_idx in 0..self.topology.num_clusters() {
            // No active transmission: nothing to advance, nothing to deliver.
            if self.photonic[cluster_idx].active.is_empty() {
                continue;
            }
            let pool = self.fabric.pool_size(ClusterId(cluster_idx));
            let finished = &mut self.scratch_finished;
            finished.clear();
            let router = &mut self.photonic[cluster_idx];
            let mut in_use = router.wavelengths_in_use();
            let mut pending_demand = router.pending_demand();
            let mut popped = 0u32;
            for (tx_idx, tx) in router.active.iter_mut().enumerate() {
                if tx.reservation_remaining > 0 {
                    tx.reservation_remaining -= 1;
                    continue;
                }
                if !tx.data_started {
                    // Assign wavelengths: at least the flow's demand (bounded
                    // by what is free), plus idle pool wavelengths that no
                    // other pending transfer is asking for.
                    let available = pool.saturating_sub(in_use);
                    if available == 0 {
                        continue;
                    }
                    let others_demand = pending_demand.saturating_sub(tx.demand);
                    let spare = available.saturating_sub(others_demand);
                    let wavelengths = tx.demand.max(spare).min(available);
                    tx.wavelengths = wavelengths.max(1);
                    tx.data_started = true;
                    in_use += tx.wavelengths;
                    pending_demand = pending_demand.saturating_sub(tx.demand);
                }
                tx.credit_bits += tx.wavelengths as f64 * bits_per_wavelength;
                loop {
                    let buffer = router.inputs[tx.src_port]
                        .vc_mut(tx.src_vc)
                        .expect("vc in range");
                    let Some((flit, _)) = buffer.front() else {
                        // Source stalled: the wavelength·cycles are lost.
                        tx.credit_bits = 0.0;
                        break;
                    };
                    if flit.packet != tx.packet {
                        tx.credit_bits = 0.0;
                        break;
                    }
                    if tx.credit_bits < f64::from(flit.bits) {
                        break;
                    }
                    let (mut flit, _) = buffer.pop().expect("front checked");
                    popped += 1;
                    tx.credit_bits -= f64::from(flit.bits);
                    tx.flits_sent += 1;
                    flit.vc = tx.dst_vc;
                    deliveries.push(PhotonicDelivery {
                        dst_cluster: tx.dst_cluster.0,
                        dst_local: tx.dst_local,
                        dst_vc: tx.dst_vc,
                        flit,
                    });
                    if tx.flits_sent == tx.flits_total {
                        finished.push(tx_idx);
                        break;
                    }
                }
            }
            for idx in finished.drain(..).rev() {
                router.active.swap_remove(idx);
            }
            self.cluster_in_occ[cluster_idx] -= popped;
        }

        for delivery in deliveries.drain(..) {
            self.energy
                .record_photonic_transfer(u64::from(delivery.flit.bits));
            // Source-side photonic router electrical traversal and the write
            // into the destination's ejection buffer.
            self.energy
                .record_router_traversal(u64::from(delivery.flit.bits));
            self.energy
                .record_buffer_write(u64::from(delivery.flit.bits));
            self.cluster_ej_occ[delivery.dst_cluster] += 1;
            self.photonic[delivery.dst_cluster].ejection[delivery.dst_local]
                .vc_mut(delivery.dst_vc)
                .expect("vc in range")
                .push(delivery.flit, cycle)
                .expect("ejection VC reserved for the whole packet");
        }
        self.scratch_deliveries = deliveries;
    }

    fn start_transmissions(&mut self) {
        let num_clusters = self.topology.num_clusters();
        let cpc = self.topology.cores_per_cluster();
        let vcs = self.config.vcs_per_port;

        for cluster_idx in 0..num_clusters {
            // With no buffered input flit there is no head flit to start; an
            // all-false request vector never advances the round-robin state.
            if self.cluster_in_occ[cluster_idx] == 0 {
                continue;
            }
            let src_cluster = ClusterId(cluster_idx);
            // A failed source link refuses new transmissions outright;
            // buffered flits wait for the repair. In-flight transfers keep
            // advancing — photons already on the waveguide are not retracted.
            if !self.fabric.link_up(src_cluster) {
                continue;
            }
            // Reservations are broadcast on the reservation channel, so a new
            // transfer may enter its reservation phase even while the data
            // wavelengths are fully occupied; the data phase is gated on
            // wavelength availability in `advance_transmissions`.
            // Candidate head flits, visited in round-robin port order.
            self.scratch_requests.clear();
            for p in 0..cpc {
                let request = (0..vcs).any(|v| {
                    let vc = VcId(v);
                    if self.photonic[cluster_idx].has_active_on(p, vc) {
                        return false;
                    }
                    self.photonic[cluster_idx].inputs[p]
                        .vc(vc)
                        .ok()
                        .and_then(|b| b.front().map(|(f, _)| f.is_head()))
                        .unwrap_or(false)
                });
                self.scratch_requests.push(request);
            }
            let Some(port) = self.photonic[cluster_idx]
                .start_rr
                .grant(&self.scratch_requests)
            else {
                continue;
            };
            // Pick the first startable VC on the granted port.
            let mut started = false;
            for v in 0..vcs {
                if started {
                    break;
                }
                let vc = VcId(v);
                if self.photonic[cluster_idx].has_active_on(port, vc) {
                    continue;
                }
                let Some(flit) = self.photonic[cluster_idx].inputs[port]
                    .vc(vc)
                    .ok()
                    .and_then(|b| b.front().map(|(f, _)| *f))
                else {
                    continue;
                };
                if !flit.is_head() {
                    continue;
                }
                let dst_cluster = self.topology.cluster_of(flit.dst);
                debug_assert_ne!(
                    dst_cluster, src_cluster,
                    "intra-cluster packets must not reach the photonic router"
                );
                // A failed destination link cannot accept new reservations.
                if !self.fabric.link_up(dst_cluster) {
                    continue;
                }
                let demand = self.fabric.wavelengths_for(src_cluster, dst_cluster).max(1);
                let dst_local = self.topology.local_index(flit.dst);
                let Some(dst_vc) = self.photonic[dst_cluster.0].free_ejection_vc(dst_local) else {
                    continue;
                };
                self.photonic[dst_cluster.0].ejection_reserved[dst_local][dst_vc.0] =
                    Some(flit.packet);
                let reservation = self.fabric.reservation_cycles(src_cluster, dst_cluster);
                self.photonic[cluster_idx].active.push(Transmission {
                    packet: flit.packet,
                    src_port: port,
                    src_vc: vc,
                    dst_cluster,
                    dst_local,
                    dst_vc,
                    demand,
                    wavelengths: 0,
                    data_started: false,
                    reservation_remaining: reservation,
                    credit_bits: 0.0,
                    flits_sent: 0,
                    flits_total: flit.packet_len,
                });
                started = true;
            }
        }
    }

    fn drain_ejection(&mut self, cycle: u64) {
        let topology = self.topology;
        let cpc = topology.cores_per_cluster();
        let vcs = self.config.vcs_per_port;
        let photonic_port = topology.photonic_port();

        for cluster_idx in 0..topology.num_clusters() {
            // Empty ejection buffers yield all-false request vectors, which
            // leave every round-robin arbiter untouched — skip the cluster.
            if self.cluster_ej_occ[cluster_idx] == 0 {
                continue;
            }
            for local in 0..cpc {
                let core = ClusterId(cluster_idx).core(local, cpc);
                // Which VCs have a head-of-line flit that the core switch can accept?
                self.scratch_requests.clear();
                for v in 0..vcs {
                    let request = self.photonic[cluster_idx].ejection[local]
                        .vc(VcId(v))
                        .ok()
                        .and_then(|b| b.front())
                        .map(|_| self.switches[core.0].can_accept(photonic_port, VcId(v)))
                        .unwrap_or(false);
                    self.scratch_requests.push(request);
                }
                let Some(vc_idx) =
                    self.photonic[cluster_idx].ejection_rr[local].grant(&self.scratch_requests)
                else {
                    continue;
                };
                let vc = VcId(vc_idx);
                let (flit, _) = self.photonic[cluster_idx].ejection[local]
                    .vc_mut(vc)
                    .expect("vc in range")
                    .pop()
                    .expect("request implies occupancy");
                self.cluster_ej_occ[cluster_idx] -= 1;
                if flit.is_tail() {
                    self.photonic[cluster_idx].ejection_reserved[local][vc.0] = None;
                }
                // Destination-side photonic router electrical traversal.
                self.energy.record_router_traversal(u64::from(flit.bits));
                self.energy.record_buffer_write(u64::from(flit.bits));
                self.switch_occ[core.0] += 1;
                self.switches[core.0]
                    .accept(photonic_port, vc, flit, cycle)
                    .expect("acceptance checked in request vector");
            }
        }
    }

    /// Applies every fault transition due at `cycle` — repairs before applies,
    /// plan order within each group — mutating the fabric and reporting each
    /// transition to the probes. Runs before `pre_cycle`, so the fabric's
    /// control plane already sees the post-transition data plane.
    fn apply_fault_transitions(&mut self, cycle: u64, sink: &mut dyn EventSink) {
        while let Some((action, index)) = self.faults.as_mut().and_then(|c| c.pop_due(cycle)) {
            let event = self
                .faults
                .as_ref()
                .expect("pop_due implies a controller")
                .event(index);
            match action {
                pnoc_faults::FaultAction::Apply => {
                    self.fabric.apply_fault(&event);
                    sink.emit(
                        cycle,
                        SimEvent::FaultApplied {
                            fault: index as u32,
                        },
                    );
                }
                pnoc_faults::FaultAction::Repair => {
                    self.fabric.clear_fault(&event);
                    sink.emit(
                        cycle,
                        SimEvent::FaultRepaired {
                            fault: index as u32,
                        },
                    );
                }
            }
        }
    }

    fn account_buffer_energy(&mut self) {
        let flit_bits = u64::from(self.config.bandwidth_set.flit_bits());
        // `buffered_flits` answers from the occupancy counters in O(1) (and
        // cross-checks against a full scan in debug builds).
        let buffered = self.buffered_flits() as u64;
        self.energy.record_buffer_occupancy(buffered * flit_bits);
    }
}

impl<F: PhotonicFabric + Send, T: TrafficModel + Send> CycleNetwork for PhotonicSystem<F, T> {
    fn step(&mut self, cycle: u64) {
        self.step_observed(cycle, &mut NullSink);
    }

    fn step_observed(&mut self, cycle: u64, sink: &mut dyn EventSink) {
        self.apply_fault_transitions(cycle, sink);
        self.fabric.pre_cycle(cycle);
        self.generate_traffic(cycle, sink);
        self.inject_flits(cycle, sink);
        self.drain_ejection(cycle);
        self.step_switches(cycle, sink);
        self.advance_transmissions(cycle);
        self.start_transmissions();
        self.account_buffer_energy();
        self.stats.measured_cycles += 1;
    }

    fn next_event_cycle(&mut self, now: u64) -> Option<u64> {
        let base = if self.is_quiescent() {
            // Fully drained: the only possible future event is traffic
            // generation. Stochastic models keep the `Some(now + 1)` default
            // (each poll consumes RNG state), so skips only engage for models
            // with a computable next release, e.g. closed-loop workloads.
            self.traffic
                .next_generation_cycle(now)
                .map(|c| c.max(now + 1))
        } else {
            Some(now + 1)
        };
        // A pending fault transition bounds any skip: the transition cycle
        // must be stepped normally so the fabric mutates (and the event is
        // emitted) at exactly its scheduled cycle.
        let fault = self
            .faults
            .as_ref()
            .and_then(|c| c.next_transition_cycle(now));
        match (base, fault) {
            (Some(b), Some(f)) => Some(b.min(f)),
            (b, f) => b.or(f),
        }
    }

    fn skip_cycles(&mut self, from: u64, to: u64) {
        debug_assert!(from < to, "skip span must be non-empty");
        debug_assert!(self.is_quiescent(), "skipping cycles on an active network");
        // Each skipped cycle would have circulated the fabric's control plane
        // and counted one measured cycle; buffer-energy accounting at zero
        // occupancy adds exactly 0.0 and every other phase is a no-op on a
        // quiescent network.
        self.fabric.skip_cycles(from, to);
        self.stats.measured_cycles += to - from;
    }

    fn begin_measurement(&mut self, _cycle: u64) {
        let arch = self.fabric.architecture_name().to_string();
        let traffic = self.traffic.name();
        let load = self.traffic.offered_load().value();
        self.stats = SimStats::new(&arch, &traffic, load, self.config.clock);
        self.energy.reset();
    }

    fn stats(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.energy = self.energy.breakdown();
        s
    }

    fn config(&self) -> &SimConfig {
        &self.config
    }

    fn architecture(&self) -> &str {
        self.fabric.architecture_name()
    }

    fn install_fault_schedule(&mut self, controller: pnoc_faults::FaultController) -> bool {
        self.faults = Some(controller);
        true
    }

    fn fault_counts(&self) -> (u64, u64) {
        self.faults
            .as_ref()
            .map_or((0, 0), |c| (c.applied(), c.active()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::BandwidthSet;
    use crate::engine::run_to_completion;
    use pnoc_noc::packet::{BandwidthClass, PacketDescriptor};
    use pnoc_noc::traffic_model::OfferedLoad;

    /// Deterministic test traffic: every `period` cycles each core sends one
    /// packet to a fixed destination (its core id offset by `offset`).
    struct FixedOffsetTraffic {
        period: u64,
        offset: usize,
        num_cores: usize,
        packet_flits: u32,
        flit_bits: u32,
        load: OfferedLoad,
        /// Advertise the next generation cycle so the event-driven engine can
        /// fast-forward drained gaps (legal here: generation is deterministic).
        lookahead: bool,
    }

    impl FixedOffsetTraffic {
        fn new(period: u64, offset: usize, set: BandwidthSet) -> Self {
            Self {
                period,
                offset,
                num_cores: 64,
                packet_flits: set.packet_flits(),
                flit_bits: set.flit_bits(),
                load: OfferedLoad::new(1.0 / period as f64),
                lookahead: false,
            }
        }
    }

    impl TrafficModel for FixedOffsetTraffic {
        fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor> {
            if !cycle.is_multiple_of(self.period) {
                return None;
            }
            let dst = CoreId((src.0 + self.offset) % self.num_cores);
            Some(PacketDescriptor {
                src,
                dst,
                num_flits: self.packet_flits,
                flit_bits: self.flit_bits,
                class: BandwidthClass::MediumHigh,
                created_cycle: cycle,
            })
        }

        fn offered_load(&self) -> OfferedLoad {
            self.load
        }

        fn set_offered_load(&mut self, load: OfferedLoad) {
            self.load = load;
            self.period = (1.0 / load.value().max(1e-9)).round().max(1.0) as u64;
        }

        fn demand_class(&self, _src: ClusterId, _dst: ClusterId) -> BandwidthClass {
            BandwidthClass::MediumHigh
        }

        fn volume_share(&self, _src: ClusterId, _dst: ClusterId) -> f64 {
            1.0 / 15.0
        }

        fn name(&self) -> String {
            format!("fixed-offset-{}", self.offset)
        }

        fn next_generation_cycle(&self, now: u64) -> Option<u64> {
            if self.lookahead {
                Some(((now / self.period) + 1) * self.period)
            } else {
                Some(now + 1)
            }
        }
    }

    fn small_config(set: BandwidthSet) -> SimConfig {
        let mut c = SimConfig::fast(set);
        c.sim_cycles = 1200;
        c.warmup_cycles = 200;
        c
    }

    #[test]
    fn intra_cluster_packets_are_delivered() {
        // Offset 1 stays within the cluster for 3 of 4 cores; offset 2 also
        // mixes. Use offset 1: cores 0->1, 1->2, 2->3 intra; 3->4 inter.
        let config = small_config(BandwidthSet::Set1);
        let fabric = UniformFabric::new("uniform-test", 64, 16);
        let traffic = FixedOffsetTraffic::new(400, 1, BandwidthSet::Set1);
        let mut system = PhotonicSystem::new(config, fabric, traffic);
        let stats = run_to_completion(&mut system);
        assert!(
            stats.delivered_packets > 0,
            "no packets delivered: {stats:?}"
        );
        assert!(stats.delivered_flits >= stats.delivered_packets * 64);
        assert!(stats.average_packet_latency() > 0.0);
    }

    #[test]
    fn inter_cluster_packets_cross_the_photonic_fabric() {
        let config = small_config(BandwidthSet::Set1);
        let fabric = UniformFabric::new("uniform-test", 64, 16);
        // Offset 4 = always the next cluster, never intra-cluster.
        let traffic = FixedOffsetTraffic::new(400, 4, BandwidthSet::Set1);
        let mut system = PhotonicSystem::new(config, fabric, traffic);
        let stats = run_to_completion(&mut system);
        assert!(stats.delivered_packets > 0);
        assert_eq!(
            stats.delivered_photonic_bits, stats.delivered_bits,
            "all traffic is inter-cluster"
        );
        // Photonic energy must have been charged.
        assert!(stats.energy.launch_pj > 0.0);
        assert!(stats.energy.modulation_pj > 0.0);
    }

    #[test]
    fn packets_are_conserved_when_below_saturation() {
        let config = small_config(BandwidthSet::Set1);
        let fabric = UniformFabric::new("uniform-test", 64, 16);
        let traffic = FixedOffsetTraffic::new(500, 8, BandwidthSet::Set1);
        let mut system = PhotonicSystem::new(config, fabric, traffic);
        let stats = run_to_completion(&mut system);
        assert_eq!(stats.dropped_packets, 0, "light load must not drop");
        // Everything injected during the window either arrived or is still in
        // flight; deliveries cannot exceed injections (plus warm-up leftovers).
        assert!(stats.delivered_packets <= stats.injected_packets + 64);
    }

    #[test]
    fn higher_wavelength_budget_gives_higher_throughput() {
        // The same traffic saturates the 1-wavelength-per-cluster fabric but
        // not the 8-wavelength one.
        let run = |per_cluster: usize| {
            let config = small_config(BandwidthSet::Set1);
            let fabric = UniformFabric::new("uniform-test", per_cluster * 16, 16);
            let traffic = FixedOffsetTraffic::new(120, 16, BandwidthSet::Set1);
            let mut system = PhotonicSystem::new(config, fabric, traffic);
            run_to_completion(&mut system).accepted_bandwidth_gbps()
        };
        let narrow = run(1);
        let wide = run(8);
        assert!(
            wide > narrow * 1.5,
            "wide fabric ({wide} Gb/s) should clearly beat narrow ({narrow} Gb/s)"
        );
    }

    #[test]
    fn energy_breakdown_components_are_all_positive_under_load() {
        let config = small_config(BandwidthSet::Set2);
        let fabric = UniformFabric::new("uniform-test", 256, 16);
        let traffic = FixedOffsetTraffic::new(200, 20, BandwidthSet::Set2);
        let mut system = PhotonicSystem::new(config, fabric, traffic);
        let stats = run_to_completion(&mut system);
        assert!(stats.delivered_packets > 0);
        let e = stats.energy;
        assert!(e.launch_pj > 0.0);
        assert!(e.tuning_pj > 0.0);
        assert!(e.buffer_pj > 0.0);
        assert!(e.electrical_pj > 0.0);
        assert!(stats.packet_energy_pj() > 0.0);
    }

    #[test]
    fn metrics_probe_stream_matches_the_legacy_snapshot() {
        use crate::engine::run_to_completion_with;
        use crate::metrics::{MetricValue, MetricsProbe, Probe};
        let config = small_config(BandwidthSet::Set1);
        let fabric = UniformFabric::new("uniform-test", 64, 16);
        let traffic = FixedOffsetTraffic::new(150, 4, BandwidthSet::Set1);
        let mut system = PhotonicSystem::new(config, fabric, traffic);
        let mut probe = MetricsProbe::for_config(&config);
        let stats = run_to_completion_with(&mut system, &mut [&mut probe]);
        assert!(stats.delivered_packets > 0);
        let report = probe.report();
        for (name, expected) in [
            ("generated_packets", stats.generated_packets),
            ("dropped_packets", stats.dropped_packets),
            ("injected_packets", stats.injected_packets),
            ("injected_flits", stats.injected_flits),
            ("delivered_packets", stats.delivered_packets),
            ("delivered_flits", stats.delivered_flits),
            ("delivered_bits", stats.delivered_bits),
            ("delivered_photonic_bits", stats.delivered_photonic_bits),
            ("measured_cycles", stats.measured_cycles),
        ] {
            assert_eq!(
                report.counter(name),
                Some(expected),
                "probe counter '{name}' diverged from the snapshot"
            );
        }
        let latency = report.histogram("latency_cycles").expect("recorded");
        assert_eq!(latency.count(), stats.delivered_packets);
        assert_eq!(latency.max(), Some(stats.max_packet_latency));
        assert_eq!(latency.sum(), stats.total_packet_latency);
        // The per-node delivered-bits family partitions the aggregate.
        let by_node = report.family("delivered_bits_by_node").expect("present");
        let node_sum: u64 = by_node
            .values()
            .map(|v| match v {
                MetricValue::Counter(c) => *c,
                other => panic!("family member must be a counter, got {other:?}"),
            })
            .sum();
        assert_eq!(node_sum, stats.delivered_bits);
        // Offset-4 traffic is always inter-cluster, so the pair family too.
        let by_pair = report
            .family("photonic_bits_by_cluster_pair")
            .expect("present");
        let pair_sum: u64 = by_pair
            .values()
            .map(|v| match v {
                MetricValue::Counter(c) => *c,
                other => panic!("family member must be a counter, got {other:?}"),
            })
            .sum();
        assert_eq!(pair_sum, stats.delivered_photonic_bits);
    }

    #[test]
    fn generation_lookahead_skips_are_bitwise_invisible() {
        // The same deterministic traffic, once stepped every cycle (the
        // default `next_generation_cycle` forbids skipping) and once with
        // idle-gap fast-forwarding enabled, must produce identical stats —
        // including energy and measured cycles.
        let run = |lookahead: bool| {
            let config = small_config(BandwidthSet::Set1);
            let fabric = UniformFabric::new("uniform-test", 64, 16);
            // Offset 1: mostly intra-cluster plus one inter-cluster packet
            // per cluster, so each burst drains well within the period and
            // the lookahead run actually fast-forwards the idle tails.
            let mut traffic = FixedOffsetTraffic::new(400, 1, BandwidthSet::Set1);
            traffic.lookahead = lookahead;
            let mut system = PhotonicSystem::new(config, fabric, traffic);
            run_to_completion(&mut system)
        };
        let stepped = run(false);
        let skipped = run(true);
        assert!(stepped.delivered_packets > 0);
        assert_eq!(stepped, skipped);
    }

    #[test]
    fn next_event_cycle_reports_quiescence_only_when_drained() {
        let config = small_config(BandwidthSet::Set1);
        let fabric = UniformFabric::new("uniform-test", 64, 16);
        let mut traffic = FixedOffsetTraffic::new(400, 1, BandwidthSet::Set1);
        traffic.lookahead = true;
        let mut system = PhotonicSystem::new(config, fabric, traffic);
        let mut cycle = 0u64;
        loop {
            system.step(cycle);
            match system.next_event_cycle(cycle) {
                Some(c) if c == cycle + 1 => {
                    cycle += 1;
                    assert!(cycle < 400, "burst never drained");
                }
                other => {
                    assert_eq!(
                        other,
                        Some(400),
                        "a drained system should sleep until the next generation"
                    );
                    break;
                }
            }
        }
        // Fast-forward the idle tail: measured cycles account for the span.
        system.skip_cycles(cycle + 1, 400);
        assert_eq!(system.stats().measured_cycles, 400);
    }

    #[test]
    #[should_panic(expected = "VC depth")]
    fn shallow_vc_depth_is_rejected() {
        let mut config = small_config(BandwidthSet::Set1);
        config.vc_depth = 8; // packet is 64 flits
        let fabric = UniformFabric::new("uniform-test", 64, 16);
        let traffic = FixedOffsetTraffic::new(100, 4, BandwidthSet::Set1);
        let _ = PhotonicSystem::new(config, fabric, traffic);
    }
}
