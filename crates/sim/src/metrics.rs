#![doc = include_str!("metrics.md")]

use crate::stats::SimStats;
use pnoc_noc::ids::{ClusterId, CoreId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;

// ---------------------------------------------------------------------------
// Typed metric primitives
// ---------------------------------------------------------------------------

/// A monotonically increasing event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments the counter by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `delta` to the counter.
    pub fn add(&mut self, delta: u64) {
        self.0 += delta;
    }

    /// Current count.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Merges another counter into this one (counts add).
    pub fn merge(&mut self, other: &Counter) {
        self.0 += other.0;
    }
}

/// A last-written scalar observation. Merging keeps the **maximum**, so a
/// merged gauge reports the peak observation across the merged runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Gauge(f64);

impl Gauge {
    /// Creates a zeroed gauge.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&mut self, value: f64) {
        self.0 = value;
    }

    /// Raises the gauge to `value` if it is larger than the current reading.
    pub fn observe_max(&mut self, value: f64) {
        if value > self.0 {
            self.0 = value;
        }
    }

    /// Current reading.
    #[must_use]
    pub fn get(self) -> f64 {
        self.0
    }

    /// Merges another gauge into this one (keeps the maximum).
    pub fn merge(&mut self, other: &Gauge) {
        self.observe_max(other.0);
    }
}

/// Sub-bucket resolution of the [`QuantileSketch`]: `2^SUB_BITS` log-linear
/// buckets per power of two, i.e. a worst-case relative value error of
/// `2^-SUB_BITS` (≈ 3 %) on every reported quantile.
pub const SUB_BITS: u32 = 5;

const SUB_BUCKETS: u64 = 1 << SUB_BITS;

/// A mergeable streaming quantile sketch over `u64` samples (an HDR-style
/// log-linear histogram).
///
/// Values below `2^SUB_BITS` get exact unit-width buckets; larger values
/// share `2^SUB_BITS` buckets per power of two, so the bucket containing a
/// value `v` is at most `v / 2^SUB_BITS` wide. [`QuantileSketch::quantile`]
/// therefore returns an estimate within that relative error of an exact
/// rank-based quantile, using O(log₂(max) · 2^SUB_BITS) memory regardless of
/// the sample count.
///
/// Two sketches merge by bin-wise addition ([`QuantileSketch::merge`]), which
/// is associative, commutative and **deterministic**: merging per-thread
/// sketches gives bitwise the same result in any merge order. This is what
/// lets the parallel matrix engine produce metric reports identical to a
/// sequential run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Bucket counts, indexed by [`bucket_index`]. Never has trailing zero
    /// entries, so structural equality equals logical equality.
    bins: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

/// The bucket index a value falls into (log-linear, `2^SUB_BITS` sub-buckets
/// per octave).
#[must_use]
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let msb = 63 - u64::from(value.leading_zeros());
    let shift = msb - u64::from(SUB_BITS);
    let sub = (value >> shift) - SUB_BUCKETS;
    ((shift + 1) * SUB_BUCKETS + sub) as usize
}

/// The largest value mapping to bucket `index` (the bucket's upper edge).
#[must_use]
fn bucket_upper_edge(index: usize) -> u64 {
    let index = index as u64;
    if index < SUB_BUCKETS {
        return index;
    }
    let shift = (index / SUB_BUCKETS - 1) as u32;
    let sub = index % SUB_BUCKETS;
    // First value of the *next* bucket, minus one; the topmost bucket's
    // upper edge saturates at u64::MAX.
    match (SUB_BUCKETS + sub + 1).checked_shl(shift) {
        Some(next) if next != 0 => next - 1,
        _ => u64::MAX,
    }
}

impl QuantileSketch {
    /// Creates an empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = bucket_index(value);
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += 1;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum += value;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact minimum sample, `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Exact maximum sample, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of the recorded samples, `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// The quantile estimate for `q` in `0.0..=1.0`: the upper edge of the
    /// bucket containing the sample of rank `ceil(q · count)`.
    ///
    /// Guarantees (the "rank error bound" property-tested in
    /// `tests/prop_metrics.rs`): at least `ceil(q · count)` samples are ≤ the
    /// returned value, and the returned value is at most one bucket width
    /// (relative error `2^-SUB_BITS`) above the exact rank-`ceil(q · count)`
    /// sample. Returns `None` when the sketch is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (idx, &bin) in self.bins.iter().enumerate() {
            acc += bin;
            if acc >= target {
                // The exact extrema are tracked, so never report past them.
                return Some(bucket_upper_edge(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// The percentile estimate for `p` in `0.0..=100.0`
    /// (`percentile(95.0) == quantile(0.95)`).
    #[must_use]
    pub fn percentile(&self, p: f64) -> Option<u64> {
        self.quantile(p / 100.0)
    }

    /// Merges another sketch into this one by bin-wise addition. Every sketch
    /// shares the same bucketing, so the merge is total (no error case),
    /// associative and deterministic.
    pub fn merge(&mut self, other: &QuantileSketch) {
        if other.count == 0 {
            return;
        }
        if self.bins.len() < other.bins.len() {
            self.bins.resize(other.bins.len(), 0);
        }
        for (bin, &extra) in self.bins.iter_mut().zip(&other.bins) {
            *bin += extra;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The non-empty buckets as `(bucket index, count)` pairs, in index
    /// order (the wire representation used by the JSONL sink).
    #[must_use]
    pub fn nonzero_bins(&self) -> Vec<(usize, u64)> {
        self.bins
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(idx, &count)| (idx, count))
            .collect()
    }

    /// Reassembles a sketch from the `(bucket index, count)` pairs of
    /// [`QuantileSketch::nonzero_bins`] plus the tracked aggregates — the
    /// inverse of the wire representation used by the JSONL sink and the
    /// result store. Returns `None` when the parts are inconsistent
    /// (unsorted or zero-count pairs, counts not summing to `count`, or
    /// extrema missing / mis-ordered), so decoders reject tampered documents
    /// instead of building a sketch that violates the "no trailing zero
    /// bins" structural-equality invariant.
    #[must_use]
    pub fn from_parts(
        nonzero_bins: &[(usize, u64)],
        count: u64,
        sum: u64,
        min: Option<u64>,
        max: Option<u64>,
    ) -> Option<Self> {
        let mut total = 0u64;
        let mut last: Option<usize> = None;
        for &(idx, bin) in nonzero_bins {
            if bin == 0 || last.is_some_and(|prev| idx <= prev) {
                return None;
            }
            last = Some(idx);
            total = total.checked_add(bin)?;
        }
        if total != count {
            return None;
        }
        if count == 0 {
            return (min.is_none() && max.is_none() && sum == 0).then(Self::new);
        }
        let (min, max) = match (min, max) {
            (Some(lo), Some(hi)) if lo <= hi => (lo, hi),
            _ => return None,
        };
        let mut bins = vec![0u64; last.map_or(0, |idx| idx + 1)];
        for &(idx, bin) in nonzero_bins {
            bins[idx] = bin;
        }
        Some(Self {
            bins,
            count,
            sum,
            min,
            max,
        })
    }
}

// ---------------------------------------------------------------------------
// Labelled families and the report
// ---------------------------------------------------------------------------

/// A labelled family of metrics: one metric instance per label, stored in
/// label order (deterministic iteration and serialization).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Family<M> {
    members: BTreeMap<String, M>,
}

impl<M> Default for Family<M> {
    fn default() -> Self {
        Self {
            members: BTreeMap::new(),
        }
    }
}

impl<M: Default> Family<M> {
    /// Creates an empty family.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The member for `label`, created (default) on first use.
    pub fn with_label(&mut self, label: impl Into<String>) -> &mut M {
        self.members.entry(label.into()).or_default()
    }

    /// The member for `label`, if it exists.
    #[must_use]
    pub fn get(&self, label: &str) -> Option<&M> {
        self.members.get(label)
    }

    /// Number of labels in the family.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the family has no labels.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Iterates `(label, member)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &M)> {
        self.members.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl Family<Counter> {
    /// Snapshots a counter family as a [`MetricValue::Family`] — how probes
    /// materialise their labelled breakdowns into a [`MetricReport`].
    #[must_use]
    pub fn to_value(&self) -> MetricValue {
        MetricValue::Family(
            self.iter()
                .map(|(label, counter)| (label.to_string(), MetricValue::Counter(counter.get())))
                .collect(),
        )
    }
}

/// The label used for per-node (per-core) family members: zero-padded so the
/// lexicographic label order equals the numeric node order for up to 1000
/// cores (beyond that, family order stays deterministic but is no longer
/// numeric — the paper topology has 64 cores). The padding is fixed rather
/// than derived from the topology so that labels, and therefore report
/// merges, are stable across differently sized runs.
#[must_use]
pub fn node_label(core: CoreId) -> String {
    format!("n{:03}", core.0)
}

/// The label used for per-(source cluster, destination cluster) family
/// members. Zero-padded for numeric label order up to 100 clusters (the
/// paper topology has 16); fixed-width for the same merge-stability reason
/// as [`node_label`].
#[must_use]
pub fn cluster_pair_label(src: ClusterId, dst: ClusterId) -> String {
    format!("c{:02}->c{:02}", src.0, dst.0)
}

/// The label of time window `index`: zero-padded for numeric label order up
/// to 10 000 windows per run (a [`MetricsProbe`] windows a measurement into
/// at most a few dozen).
#[must_use]
pub fn window_label(index: usize) -> String {
    format!("w{index:04}")
}

/// One metric in a [`MetricReport`]: the snapshot counterpart of the typed
/// primitives, closed under [`MetricValue::merge`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A summed event count.
    Counter(u64),
    /// A scalar observation (merge keeps the maximum).
    Gauge(f64),
    /// A mergeable quantile sketch.
    Histogram(QuantileSketch),
    /// A labelled family of nested values, in label order.
    Family(BTreeMap<String, MetricValue>),
}

impl MetricValue {
    /// The metric kind name used in error messages and the CSV `kind`
    /// column.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
            MetricValue::Family(_) => "family",
        }
    }

    fn merge(&mut self, other: &MetricValue, path: &str) -> Result<(), MetricMergeError> {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                *a += b;
                Ok(())
            }
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                if *b > *a {
                    *a = *b;
                }
                Ok(())
            }
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => {
                a.merge(b);
                Ok(())
            }
            (MetricValue::Family(a), MetricValue::Family(b)) => {
                for (label, value) in b {
                    match a.get_mut(label) {
                        Some(existing) => {
                            existing.merge(value, &format!("{path}/{label}"))?;
                        }
                        None => {
                            a.insert(label.clone(), value.clone());
                        }
                    }
                }
                Ok(())
            }
            (a, b) => Err(MetricMergeError {
                metric: path.to_string(),
                left_kind: a.kind(),
                right_kind: b.kind(),
            }),
        }
    }
}

/// Why two [`MetricReport`]s could not be merged: the same name holds
/// different metric kinds on the two sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricMergeError {
    /// Path of the conflicting metric (`name` or `name/label`).
    pub metric: String,
    /// Kind on the receiving side.
    pub left_kind: &'static str,
    /// Kind on the incoming side.
    pub right_kind: &'static str,
}

impl std::fmt::Display for MetricMergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot merge metric '{}': left side is a {}, right side is a {}",
            self.metric, self.left_kind, self.right_kind
        )
    }
}

impl std::error::Error for MetricMergeError {}

/// A named, ordered snapshot of metrics — what a [`Probe`] produces and what
/// [`MetricSink`]s consume.
///
/// Entries are kept in name order, so serialization (and therefore the JSONL
/// / CSV sink output) is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricReport {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricReport {
    /// Creates an empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a metric.
    pub fn insert(&mut self, name: impl Into<String>, value: MetricValue) {
        self.entries.insert(name.into(), value);
    }

    /// The metric stored under `name`.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// The counter stored under `name`, if it is one.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.entries.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge stored under `name`, if it is one.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.entries.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram stored under `name`, if it is one.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&QuantileSketch> {
        match self.entries.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The family stored under `name`, if it is one.
    #[must_use]
    pub fn family(&self, name: &str) -> Option<&BTreeMap<String, MetricValue>> {
        match self.entries.get(name) {
            Some(MetricValue::Family(f)) => Some(f),
            _ => None,
        }
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics in the report.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the report is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Merges another report into this one: counters add, gauges keep the
    /// maximum, histograms merge bin-wise, families merge label-wise. The
    /// operation is associative and deterministic, so merging per-point
    /// reports in ladder order gives bitwise the same result regardless of
    /// which threads produced the points.
    ///
    /// # Errors
    ///
    /// Returns [`MetricMergeError`] when the same name holds different metric
    /// kinds on the two sides; `self` may be partially updated in that case.
    pub fn merge(&mut self, other: &MetricReport) -> Result<(), MetricMergeError> {
        for (name, value) in &other.entries {
            match self.entries.get_mut(name) {
                Some(existing) => existing.merge(value, name)?,
                None => {
                    self.entries.insert(name.clone(), value.clone());
                }
            }
        }
        Ok(())
    }

    /// Renders the report as one compact, deterministic JSON object (the
    /// payload format of the [`JsonlSink`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_report_json(&mut out, self);
        out
    }
}

// ---------------------------------------------------------------------------
// Compact deterministic JSON rendering (no serde_json offline)
// ---------------------------------------------------------------------------

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders an `f64` deterministically: Rust's shortest-round-trip `Display`,
/// with non-finite values mapped to `null`.
fn write_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value}");
    } else {
        out.push_str("null");
    }
}

fn write_sketch_json(out: &mut String, sketch: &QuantileSketch) {
    let _ = write!(out, "{{\"count\":{}", sketch.count());
    let _ = write!(out, ",\"sum\":{}", sketch.sum());
    for (key, value) in [("min", sketch.min()), ("max", sketch.max())] {
        match value {
            Some(v) => {
                let _ = write!(out, ",\"{key}\":{v}");
            }
            None => {
                let _ = write!(out, ",\"{key}\":null");
            }
        }
    }
    for (key, p) in [("p50", 50.0), ("p95", 95.0), ("p99", 99.0)] {
        match sketch.percentile(p) {
            Some(v) => {
                let _ = write!(out, ",\"{key}\":{v}");
            }
            None => {
                let _ = write!(out, ",\"{key}\":null");
            }
        }
    }
    out.push_str(",\"bins\":[");
    for (i, (idx, count)) in sketch.nonzero_bins().into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "[{idx},{count}]");
    }
    out.push_str("]}");
}

fn write_value_json(out: &mut String, value: &MetricValue) {
    match value {
        MetricValue::Counter(v) => {
            let _ = write!(out, "{v}");
        }
        MetricValue::Gauge(v) => write_json_f64(out, *v),
        MetricValue::Histogram(h) => write_sketch_json(out, h),
        MetricValue::Family(members) => {
            out.push('{');
            for (i, (label, member)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(out, label);
                out.push(':');
                write_value_json(out, member);
            }
            out.push('}');
        }
    }
}

fn write_report_json(out: &mut String, report: &MetricReport) {
    out.push('{');
    for (i, (name, value)) in report.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_string(out, name);
        out.push(':');
        write_value_json(out, value);
    }
    out.push('}');
}

// ---------------------------------------------------------------------------
// Events and probes
// ---------------------------------------------------------------------------

/// One observable simulation event, emitted by a network while it steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// A traffic generator created a packet at `src`.
    PacketGenerated {
        /// Generating core.
        src: CoreId,
    },
    /// A packet was dropped at `src`'s full injection queue.
    PacketDropped {
        /// Dropping core.
        src: CoreId,
    },
    /// A packet started injecting at `src`.
    PacketInjected {
        /// Injecting core.
        src: CoreId,
    },
    /// A flit entered the network at `src`.
    FlitInjected {
        /// Injecting core.
        src: CoreId,
        /// Payload bits of the flit.
        bits: u32,
    },
    /// A flit was delivered to its destination core.
    FlitDelivered {
        /// Source core of the flit.
        src: CoreId,
        /// Destination core (where it was ejected).
        dst: CoreId,
        /// Payload bits of the flit.
        bits: u32,
        /// Whether the flit crossed the photonic fabric (inter-cluster).
        photonic: bool,
    },
    /// A packet's tail flit arrived: the whole packet is delivered.
    PacketDelivered {
        /// Source core.
        src: CoreId,
        /// Destination core.
        dst: CoreId,
        /// Creation → tail-delivery latency in cycles.
        latency: u64,
    },
    /// A scheduled fault took effect on the fabric.
    FaultApplied {
        /// Index of the fault event within its plan.
        fault: u32,
    },
    /// A scheduled fault was repaired.
    FaultRepaired {
        /// Index of the fault event within its plan.
        fault: u32,
    },
}

/// Where a stepping network reports its [`SimEvent`]s.
///
/// The engine passes a sink into
/// [`CycleNetwork::step_observed`](crate::engine::CycleNetwork::step_observed);
/// networks call [`EventSink::emit`] as things happen. The [`NullSink`] makes
/// observation free when nobody is listening.
pub trait EventSink {
    /// Reports one event at `cycle`.
    fn emit(&mut self, cycle: u64, event: SimEvent);
}

/// An [`EventSink`] that discards everything (the unobserved fast path).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&mut self, _cycle: u64, _event: SimEvent) {}
}

/// An engine-driven observer of one simulation run.
///
/// [`crate::engine::run_to_completion_with`] warms the network up
/// unobserved, calls [`Probe::on_measurement_begin`] at the warm-up /
/// measurement boundary, forwards every [`SimEvent`] of the measurement
/// window to [`Probe::on_event`], marks each cycle boundary with
/// [`Probe::on_cycle_end`], and finishes with [`Probe::finish`] (handing the
/// probe the network's final [`SimStats`] so compatibility probes can wrap
/// the legacy snapshot). [`Probe::report`] then yields the collected
/// [`MetricReport`].
pub trait Probe {
    /// The measurement window starts at `cycle` (warm-up state has been
    /// discarded).
    fn on_measurement_begin(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// One simulation event inside the measurement window.
    fn on_event(&mut self, cycle: u64, event: &SimEvent);

    /// A measured cycle finished (window bookkeeping hook).
    fn on_cycle_end(&mut self, cycle: u64) {
        let _ = cycle;
    }

    /// The run is over; `stats` is the network's final legacy snapshot.
    fn finish(&mut self, stats: &SimStats) {
        let _ = stats;
    }

    /// The metrics collected so far.
    fn report(&self) -> MetricReport;
}

/// The standard probe: latency quantiles, per-node and per-cluster-pair
/// delivery breakdowns, time-windowed throughput, and the headline event
/// counters. This is what the sweep engine attaches to every ladder point.
///
/// The hot path (one [`Probe::on_event`] call per flit) touches only
/// integer-indexed accumulators; the labelled [`Family`] representation is
/// materialised once, in [`Probe::report`].
///
/// The per-cluster-pair photonic breakdown needs the
/// [`ClusterTopology`](pnoc_noc::topology::ClusterTopology) to map cores to
/// clusters: build the probe with [`MetricsProbe::for_config`] (what the
/// sweep engine does) or chain [`MetricsProbe::with_topology`]. Without a
/// topology, `photonic_bits_by_cluster_pair` stays empty while the
/// `delivered_photonic_bits` counter still accumulates.
#[derive(Debug, Clone)]
pub struct MetricsProbe {
    window_cycles: u64,
    measured_cycles: u64,
    window_bits: u64,
    generated_packets: Counter,
    dropped_packets: Counter,
    injected_packets: Counter,
    injected_flits: Counter,
    delivered_packets: Counter,
    delivered_flits: Counter,
    delivered_bits: Counter,
    delivered_photonic_bits: Counter,
    latency: QuantileSketch,
    /// Delivered bits per destination core, indexed by core id.
    bits_by_node: Vec<u64>,
    /// Dropped packets per source core, indexed by core id.
    drops_by_node: Vec<u64>,
    /// Photonic bits per (src cluster, dst cluster) pair.
    photonic_bits_by_pair: BTreeMap<(usize, usize), u64>,
    /// Delivered bits of every closed window, in window order.
    window_series: Vec<u64>,
    max_window_bits: Gauge,
    fault_applied_events: Counter,
    fault_repaired_events: Counter,
    topology: Option<pnoc_noc::topology::ClusterTopology>,
}

impl MetricsProbe {
    /// Creates a probe that closes a throughput window every `window_cycles`
    /// measured cycles. The probe has no topology yet — chain
    /// [`MetricsProbe::with_topology`] (or use [`MetricsProbe::for_config`])
    /// to enable the per-cluster-pair photonic breakdown.
    ///
    /// # Panics
    ///
    /// Panics if `window_cycles` is zero.
    #[must_use]
    pub fn new(window_cycles: u64) -> Self {
        assert!(window_cycles > 0, "window must span at least one cycle");
        Self {
            window_cycles,
            measured_cycles: 0,
            window_bits: 0,
            generated_packets: Counter::new(),
            dropped_packets: Counter::new(),
            injected_packets: Counter::new(),
            injected_flits: Counter::new(),
            delivered_packets: Counter::new(),
            delivered_flits: Counter::new(),
            delivered_bits: Counter::new(),
            delivered_photonic_bits: Counter::new(),
            latency: QuantileSketch::new(),
            bits_by_node: Vec::new(),
            drops_by_node: Vec::new(),
            photonic_bits_by_pair: BTreeMap::new(),
            window_series: Vec::new(),
            max_window_bits: Gauge::new(),
            fault_applied_events: Counter::new(),
            fault_repaired_events: Counter::new(),
            topology: None,
        }
    }

    /// Sets the topology used to attribute photonic bits to cluster pairs.
    #[must_use]
    pub fn with_topology(mut self, topology: pnoc_noc::topology::ClusterTopology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// A probe windowed for one sweep point: an eighth of the measurement
    /// window (at least one cycle), so every run yields a small time series,
    /// with the configuration's topology for per-cluster-pair attribution.
    #[must_use]
    pub fn for_config(config: &crate::config::SimConfig) -> Self {
        Self::new((config.sim_cycles / 8).max(1)).with_topology(config.topology)
    }

    fn close_window(&mut self) {
        self.window_series.push(self.window_bits);
        self.max_window_bits.observe_max(self.window_bits as f64);
        self.window_bits = 0;
    }
}

fn bump(slots: &mut Vec<u64>, index: usize, delta: u64) {
    if index >= slots.len() {
        slots.resize(index + 1, 0);
    }
    slots[index] += delta;
}

impl Probe for MetricsProbe {
    fn on_event(&mut self, _cycle: u64, event: &SimEvent) {
        match *event {
            SimEvent::PacketGenerated { .. } => self.generated_packets.inc(),
            SimEvent::PacketDropped { src } => {
                self.dropped_packets.inc();
                bump(&mut self.drops_by_node, src.0, 1);
            }
            SimEvent::PacketInjected { .. } => self.injected_packets.inc(),
            SimEvent::FlitInjected { .. } => self.injected_flits.inc(),
            SimEvent::FlitDelivered {
                src,
                dst,
                bits,
                photonic,
            } => {
                self.delivered_flits.inc();
                self.delivered_bits.add(u64::from(bits));
                self.window_bits += u64::from(bits);
                bump(&mut self.bits_by_node, dst.0, u64::from(bits));
                if photonic {
                    self.delivered_photonic_bits.add(u64::from(bits));
                    if let Some(topology) = &self.topology {
                        let pair = (topology.cluster_of(src).0, topology.cluster_of(dst).0);
                        *self.photonic_bits_by_pair.entry(pair).or_insert(0) += u64::from(bits);
                    }
                }
            }
            SimEvent::PacketDelivered { latency, .. } => {
                self.delivered_packets.inc();
                self.latency.record(latency);
            }
            SimEvent::FaultApplied { .. } => self.fault_applied_events.inc(),
            SimEvent::FaultRepaired { .. } => self.fault_repaired_events.inc(),
        }
    }

    fn on_cycle_end(&mut self, _cycle: u64) {
        self.measured_cycles += 1;
        if self.measured_cycles.is_multiple_of(self.window_cycles) {
            self.close_window();
        }
    }

    fn finish(&mut self, _stats: &SimStats) {
        // Close the trailing partial window, if any cycles fell into it.
        if !self.measured_cycles.is_multiple_of(self.window_cycles) {
            self.close_window();
        }
    }

    fn report(&self) -> MetricReport {
        let mut report = MetricReport::new();
        let counters = [
            ("generated_packets", self.generated_packets.get()),
            ("dropped_packets", self.dropped_packets.get()),
            ("injected_packets", self.injected_packets.get()),
            ("injected_flits", self.injected_flits.get()),
            ("delivered_packets", self.delivered_packets.get()),
            ("delivered_flits", self.delivered_flits.get()),
            ("delivered_bits", self.delivered_bits.get()),
            (
                "delivered_photonic_bits",
                self.delivered_photonic_bits.get(),
            ),
            ("measured_cycles", self.measured_cycles),
        ];
        for (name, count) in counters {
            report.insert(name, MetricValue::Counter(count));
        }
        // Fault counters appear only when a fault transition was observed:
        // healthy runs keep the exact pre-fault report shape (and bytes).
        if self.fault_applied_events.get() + self.fault_repaired_events.get() > 0 {
            report.insert(
                "fault_applied_events",
                MetricValue::Counter(self.fault_applied_events.get()),
            );
            report.insert(
                "fault_repaired_events",
                MetricValue::Counter(self.fault_repaired_events.get()),
            );
        }
        report.insert(
            "latency_cycles",
            MetricValue::Histogram(self.latency.clone()),
        );
        report.insert(
            "max_window_delivered_bits",
            MetricValue::Gauge(self.max_window_bits.get()),
        );
        // Materialise the labelled families (touched members only — the
        // integer accumulators keep the per-event path allocation-free).
        let node_family = |slots: &[u64]| {
            let mut family: Family<Counter> = Family::new();
            for (core, &count) in slots.iter().enumerate().filter(|(_, &count)| count > 0) {
                family.with_label(node_label(CoreId(core))).add(count);
            }
            family.to_value()
        };
        report.insert("delivered_bits_by_node", node_family(&self.bits_by_node));
        report.insert("dropped_packets_by_node", node_family(&self.drops_by_node));
        let mut pairs: Family<Counter> = Family::new();
        for (&(src, dst), &count) in &self.photonic_bits_by_pair {
            pairs
                .with_label(cluster_pair_label(ClusterId(src), ClusterId(dst)))
                .add(count);
        }
        report.insert("photonic_bits_by_cluster_pair", pairs.to_value());
        let mut windows: Family<Counter> = Family::new();
        for (index, &count) in self.window_series.iter().enumerate() {
            windows.with_label(window_label(index)).add(count);
        }
        report.insert("delivered_bits_by_window", windows.to_value());
        report
    }
}

/// The compatibility probe: ignores the event stream and reproduces the
/// headline numbers of the legacy pull-only [`SimStats`] snapshot as a
/// [`MetricReport`]. Exists so callers migrating from
/// `run_to_completion(...).stats` to the probe pipeline can do it one metric
/// at a time; new code should use [`MetricsProbe`] (richer, streaming,
/// mergeable) instead.
#[derive(Debug, Clone, Default)]
pub struct SimStatsProbe {
    snapshot: Option<SimStats>,
}

impl SimStatsProbe {
    /// Creates the probe.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The final snapshot, once the run has finished.
    #[must_use]
    pub fn stats(&self) -> Option<&SimStats> {
        self.snapshot.as_ref()
    }
}

impl Probe for SimStatsProbe {
    fn on_event(&mut self, _cycle: u64, _event: &SimEvent) {}

    fn finish(&mut self, stats: &SimStats) {
        self.snapshot = Some(stats.clone());
    }

    fn report(&self) -> MetricReport {
        let mut report = MetricReport::new();
        let Some(stats) = &self.snapshot else {
            return report;
        };
        for (name, value) in [
            ("generated_packets", stats.generated_packets),
            ("dropped_packets", stats.dropped_packets),
            ("injected_packets", stats.injected_packets),
            ("delivered_packets", stats.delivered_packets),
            ("delivered_bits", stats.delivered_bits),
            ("measured_cycles", stats.measured_cycles),
        ] {
            report.insert(name, MetricValue::Counter(value));
        }
        report.insert(
            "accepted_bandwidth_gbps",
            MetricValue::Gauge(stats.accepted_bandwidth_gbps()),
        );
        report.insert(
            "packet_energy_pj",
            MetricValue::Gauge(stats.packet_energy_pj()),
        );
        report
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// One exported record: the metrics of one sweep point of one scenario, plus
/// enough context to identify it.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Scenario identifier (`arch:traffic:set:effort`).
    pub scenario: String,
    /// Ladder index of the point within its scenario.
    pub point_index: usize,
    /// Offered load of the point.
    pub offered_load: f64,
    /// Derived RNG seed the point simulated with.
    pub seed: u64,
    /// The point's metrics.
    pub report: MetricReport,
}

/// A streaming consumer of [`MetricRow`]s.
///
/// Sinks receive rows in deterministic order (scenarios in batch order,
/// points in ladder order) and must not reorder them; the JSONL and CSV
/// implementations write each row as it arrives, so exporting a large matrix
/// never holds more than one row's rendering in memory.
pub trait MetricSink {
    /// Consumes one row.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of the underlying writer.
    fn write_row(&mut self, row: &MetricRow) -> io::Result<()>;

    /// Flushes any buffered output (called once after the last row).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of the underlying writer.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Renders one row as its JSONL line (without the trailing newline).
#[must_use]
pub fn render_jsonl_row(row: &MetricRow) -> String {
    let mut line = String::new();
    line.push_str("{\"scenario\":");
    write_json_string(&mut line, &row.scenario);
    let _ = write!(line, ",\"point\":{}", row.point_index);
    line.push_str(",\"offered_load\":");
    write_json_f64(&mut line, row.offered_load);
    // Seeds are u64; JSON numbers are f64 — write them as strings, exactly.
    let _ = write!(line, ",\"seed\":\"{}\"", row.seed);
    line.push_str(",\"metrics\":");
    line.push_str(&row.report.to_json());
    line.push('}');
    line
}

/// A [`MetricSink`] writing one compact JSON object per line.
#[derive(Debug)]
pub struct JsonlSink<W: io::Write> {
    out: W,
}

impl<W: io::Write> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        Self { out }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: io::Write> MetricSink for JsonlSink<W> {
    fn write_row(&mut self, row: &MetricRow) -> io::Result<()> {
        self.out.write_all(render_jsonl_row(row).as_bytes())?;
        self.out.write_all(b"\n")
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// The CSV column header written by [`CsvSink`].
pub const CSV_HEADER: &str = "scenario,point,offered_load,seed,metric,label,kind,value";

fn csv_field(text: &str) -> String {
    if text.contains([',', '"', '\n']) {
        format!("\"{}\"", text.replace('"', "\"\""))
    } else {
        text.to_string()
    }
}

/// A [`MetricSink`] writing long-format CSV: one line per scalar metric, and
/// per histogram summary statistic (`count`/`sum`/`min`/`max`/`mean`/
/// `p50`/`p95`/`p99`). Raw histogram bins are JSONL-only — spreadsheets want
/// the summary, not the sketch.
#[derive(Debug)]
pub struct CsvSink<W: io::Write> {
    out: W,
    wrote_header: bool,
}

impl<W: io::Write> CsvSink<W> {
    /// Wraps a writer; the header line is written before the first row.
    pub fn new(out: W) -> Self {
        Self {
            out,
            wrote_header: false,
        }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    fn write_line(
        &mut self,
        row: &MetricRow,
        metric: &str,
        label: &str,
        kind: &str,
        value: &str,
    ) -> io::Result<()> {
        writeln!(
            self.out,
            "{},{},{},{},{},{},{},{}",
            csv_field(&row.scenario),
            row.point_index,
            row.offered_load,
            row.seed,
            csv_field(metric),
            csv_field(label),
            kind,
            value
        )
    }

    fn write_value(
        &mut self,
        row: &MetricRow,
        metric: &str,
        label: &str,
        value: &MetricValue,
    ) -> io::Result<()> {
        match value {
            MetricValue::Counter(v) => {
                self.write_line(row, metric, label, "counter", &v.to_string())
            }
            MetricValue::Gauge(v) => self.write_line(row, metric, label, "gauge", &v.to_string()),
            MetricValue::Histogram(h) => {
                let stats: [(&str, Option<u64>); 5] = [
                    ("count", Some(h.count())),
                    ("sum", Some(h.sum())),
                    ("min", h.min()),
                    ("max", h.max()),
                    ("p50", h.percentile(50.0)),
                ];
                for (stat, value) in stats {
                    let rendered = value.map_or_else(String::new, |v| v.to_string());
                    self.write_line(row, metric, stat, "histogram", &rendered)?;
                }
                for (stat, p) in [("p95", 95.0), ("p99", 99.0)] {
                    let rendered = h.percentile(p).map_or_else(String::new, |v| v.to_string());
                    self.write_line(row, metric, stat, "histogram", &rendered)?;
                }
                let mean = h.mean().map_or_else(String::new, |m| m.to_string());
                self.write_line(row, metric, "mean", "histogram", &mean)
            }
            MetricValue::Family(members) => {
                for (member_label, member) in members {
                    let nested = if label.is_empty() {
                        member_label.clone()
                    } else {
                        format!("{label}/{member_label}")
                    };
                    self.write_value(row, metric, &nested, member)?;
                }
                Ok(())
            }
        }
    }
}

impl<W: io::Write> MetricSink for CsvSink<W> {
    fn write_row(&mut self, row: &MetricRow) -> io::Result<()> {
        if !self.wrote_header {
            writeln!(self.out, "{CSV_HEADER}")?;
            self.wrote_header = true;
        }
        for (name, value) in row.report.iter() {
            self.write_value(row, name, "", value)?;
        }
        Ok(())
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

/// A [`MetricSink`] that keeps every row in memory — for tests and
/// in-process consumers that post-process a metric stream (e.g. via
/// [`MemorySink::merged`]) without touching the filesystem. (The sweep
/// engine itself attaches a [`MetricsProbe`] per point and stores the
/// reports on the [`SweepPoint`](crate::sweep::SweepPoint)s directly.)
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemorySink {
    /// The rows received so far, in arrival order.
    pub rows: Vec<MetricRow>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Merges the reports of every collected row into one (e.g. all ladder
    /// points of one scenario).
    ///
    /// # Errors
    ///
    /// Returns [`MetricMergeError`] if two rows disagree on a metric's kind.
    pub fn merged(&self) -> Result<MetricReport, MetricMergeError> {
        let mut merged = MetricReport::new();
        for row in &self.rows {
            merged.merge(&row.report)?;
        }
        Ok(merged)
    }
}

impl MetricSink for MemorySink {
    fn write_row(&mut self, row: &MetricRow) -> io::Result<()> {
        self.rows.push(row.clone());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_merge_semantics() {
        let mut a = Counter::new();
        a.inc();
        a.add(4);
        let mut b = Counter::new();
        b.add(10);
        a.merge(&b);
        assert_eq!(a.get(), 15);

        let mut g = Gauge::new();
        g.set(3.0);
        g.observe_max(2.0);
        assert_eq!(g.get(), 3.0);
        let mut h = Gauge::new();
        h.set(7.5);
        g.merge(&h);
        assert_eq!(g.get(), 7.5);
    }

    #[test]
    fn bucket_index_and_edges_are_consistent() {
        for v in (0..2000u64).chain([1 << 20, (1 << 40) + 12345, u64::MAX]) {
            let idx = bucket_index(v);
            let upper = bucket_upper_edge(idx);
            assert!(upper >= v, "upper edge of {v}'s bucket is {upper}");
            if idx > 0 {
                let below = bucket_upper_edge(idx - 1);
                assert!(below < v, "lower edge {below} must be below {v}");
            }
            // Relative width bound: upper/v ≤ 1 + 2^-SUB_BITS.
            if v >= SUB_BUCKETS {
                assert!((upper - v) as f64 <= v as f64 / SUB_BUCKETS as f64 + 1.0);
            }
        }
    }

    #[test]
    fn sketch_tracks_exact_extrema_and_bounded_quantiles() {
        let mut s = QuantileSketch::new();
        assert_eq!(s.quantile(0.5), None);
        let samples: Vec<u64> = (1..=1000).collect();
        for &v in &samples {
            s.record(v);
        }
        assert_eq!(s.count(), 1000);
        assert_eq!(s.min(), Some(1));
        assert_eq!(s.max(), Some(1000));
        assert_eq!(s.sum(), 500_500);
        let p50 = s.quantile(0.5).unwrap();
        assert!((485..=516).contains(&p50), "p50 was {p50}");
        let p99 = s.percentile(99.0).unwrap();
        assert!((990..=1000).contains(&p99), "p99 was {p99}");
        // Quantiles never exceed the tracked maximum.
        assert!(s.quantile(1.0).unwrap() <= 1000);
    }

    #[test]
    fn sketch_merge_equals_recording_the_union() {
        let mut left = QuantileSketch::new();
        let mut right = QuantileSketch::new();
        let mut all = QuantileSketch::new();
        for v in [3u64, 99, 1500, 7] {
            left.record(v);
            all.record(v);
        }
        for v in [250u64, 4, 1_000_000] {
            right.record(v);
            all.record(v);
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged, all, "merge must equal recording the union");
        // Merge order does not matter.
        let mut reversed = right.clone();
        reversed.merge(&left);
        assert_eq!(reversed, all);
        // Merging an empty sketch is the identity.
        merged.merge(&QuantileSketch::new());
        assert_eq!(merged, all);
    }

    #[test]
    fn families_keep_label_order_and_merge() {
        let mut f: Family<Counter> = Family::new();
        f.with_label("n002").add(5);
        f.with_label("n000").inc();
        let labels: Vec<&str> = f.iter().map(|(l, _)| l).collect();
        assert_eq!(labels, vec!["n000", "n002"]);
        assert_eq!(f.get("n002").unwrap().get(), 5);
        assert_eq!(f.len(), 2);
        assert!(!f.is_empty());
    }

    #[test]
    fn report_merge_combines_and_rejects_kind_mismatches() {
        let mut a = MetricReport::new();
        a.insert("packets", MetricValue::Counter(3));
        a.insert("peak", MetricValue::Gauge(1.5));
        let mut sketch = QuantileSketch::new();
        sketch.record(10);
        a.insert("latency", MetricValue::Histogram(sketch.clone()));
        a.insert(
            "by_node",
            MetricValue::Family(BTreeMap::from([(
                "n000".to_string(),
                MetricValue::Counter(7),
            )])),
        );

        let mut b = MetricReport::new();
        b.insert("packets", MetricValue::Counter(4));
        b.insert("peak", MetricValue::Gauge(0.5));
        let mut sketch_b = QuantileSketch::new();
        sketch_b.record(20);
        b.insert("latency", MetricValue::Histogram(sketch_b));
        b.insert(
            "by_node",
            MetricValue::Family(BTreeMap::from([
                ("n000".to_string(), MetricValue::Counter(1)),
                ("n001".to_string(), MetricValue::Counter(2)),
            ])),
        );

        a.merge(&b).expect("kinds line up");
        assert_eq!(a.counter("packets"), Some(7));
        assert_eq!(a.gauge("peak"), Some(1.5));
        assert_eq!(a.histogram("latency").unwrap().count(), 2);
        let family = a.family("by_node").unwrap();
        assert_eq!(family.get("n000"), Some(&MetricValue::Counter(8)));
        assert_eq!(family.get("n001"), Some(&MetricValue::Counter(2)));

        let mut clash = MetricReport::new();
        clash.insert("packets", MetricValue::Gauge(1.0));
        let error = a.merge(&clash).expect_err("counter vs gauge");
        assert_eq!(error.metric, "packets");
        assert!(error.to_string().contains("counter"));
        assert!(error.to_string().contains("gauge"));
    }

    #[test]
    fn jsonl_rendering_is_compact_and_deterministic() {
        let mut report = MetricReport::new();
        report.insert("delivered_bits", MetricValue::Counter(4096));
        report.insert("load", MetricValue::Gauge(0.25));
        let mut sketch = QuantileSketch::new();
        for v in [5u64, 5, 9] {
            sketch.record(v);
        }
        report.insert("latency_cycles", MetricValue::Histogram(sketch));
        let row = MetricRow {
            scenario: "firefly:uniform-random:set1:smoke".to_string(),
            point_index: 2,
            offered_load: 0.0125,
            seed: u64::MAX,
            report,
        };
        let line = render_jsonl_row(&row);
        assert!(line.starts_with("{\"scenario\":\"firefly:uniform-random:set1:smoke\""));
        assert!(line.contains("\"point\":2"));
        assert!(line.contains("\"seed\":\"18446744073709551615\""));
        assert!(line.contains("\"delivered_bits\":4096"));
        assert!(line.contains("\"p50\":5"));
        assert!(line.contains("\"bins\":[[5,2],[9,1]]"));
        assert!(!line.contains('\n'));
        assert_eq!(line, render_jsonl_row(&row), "rendering is a pure function");
    }

    #[test]
    fn sinks_write_jsonl_csv_and_memory() {
        let mut report = MetricReport::new();
        report.insert("delivered_bits", MetricValue::Counter(64));
        report.insert(
            "by_node",
            MetricValue::Family(BTreeMap::from([
                ("n000".to_string(), MetricValue::Counter(32)),
                ("n001".to_string(), MetricValue::Counter(32)),
            ])),
        );
        let mut sketch = QuantileSketch::new();
        sketch.record(11);
        report.insert("latency_cycles", MetricValue::Histogram(sketch));
        let row = MetricRow {
            scenario: "a:b:set1:smoke".to_string(),
            point_index: 0,
            offered_load: 0.5,
            seed: 9,
            report,
        };

        let mut jsonl = JsonlSink::new(Vec::new());
        jsonl.write_row(&row).unwrap();
        jsonl.finish().unwrap();
        let text = String::from_utf8(jsonl.into_inner()).unwrap();
        assert!(text.ends_with('}') || text.ends_with('\n'));
        assert_eq!(text.lines().count(), 1);

        let mut csv = CsvSink::new(Vec::new());
        csv.write_row(&row).unwrap();
        csv.finish().unwrap();
        let csv_text = String::from_utf8(csv.into_inner()).unwrap();
        let mut lines = csv_text.lines();
        assert_eq!(lines.next(), Some(CSV_HEADER));
        assert!(csv_text.contains("a:b:set1:smoke,0,0.5,9,by_node,n001,counter,32"));
        assert!(csv_text.contains("latency_cycles,p95,histogram,11"));

        let mut memory = MemorySink::new();
        memory.write_row(&row).unwrap();
        memory.write_row(&row).unwrap();
        let merged = memory.merged().expect("same kinds");
        assert_eq!(merged.counter("delivered_bits"), Some(128));
    }

    #[test]
    fn metrics_probe_aggregates_events_into_a_report() {
        let mut probe = MetricsProbe::new(10);
        probe.on_measurement_begin(0);
        let src = CoreId(3);
        let dst = CoreId(17);
        for cycle in 0..25u64 {
            probe.on_event(cycle, &SimEvent::PacketGenerated { src });
            probe.on_event(
                cycle,
                &SimEvent::FlitDelivered {
                    src,
                    dst,
                    bits: 32,
                    photonic: false,
                },
            );
            if cycle % 5 == 0 {
                probe.on_event(
                    cycle,
                    &SimEvent::PacketDelivered {
                        src,
                        dst,
                        latency: cycle + 1,
                    },
                );
            }
            probe.on_cycle_end(cycle);
        }
        probe.on_event(24, &SimEvent::PacketDropped { src });
        probe.finish(&SimStats::new(
            "t",
            "t",
            0.0,
            crate::clock::Clock::paper_default(),
        ));
        let report = probe.report();
        assert_eq!(report.counter("generated_packets"), Some(25));
        assert_eq!(report.counter("delivered_packets"), Some(5));
        assert_eq!(report.counter("delivered_bits"), Some(25 * 32));
        assert_eq!(report.counter("dropped_packets"), Some(1));
        assert_eq!(report.counter("measured_cycles"), Some(25));
        let by_node = report.family("delivered_bits_by_node").unwrap();
        assert_eq!(by_node.get("n017"), Some(&MetricValue::Counter(25 * 32)));
        let windows = report.family("delivered_bits_by_window").unwrap();
        // 25 cycles / window 10 → windows w0000, w0001 and the partial w0002.
        assert_eq!(windows.len(), 3);
        assert_eq!(report.histogram("latency_cycles").unwrap().count(), 5);
        assert!(report.gauge("max_window_delivered_bits").unwrap() >= 320.0);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_is_rejected() {
        let _ = MetricsProbe::new(0);
    }
}
