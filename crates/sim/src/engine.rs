//! The simulation driver.
//!
//! A network implementation (the [`crate::system::PhotonicSystem`], or any
//! other model implementing [`CycleNetwork`]) is driven for
//! `warmup_cycles + sim_cycles` cycles; statistics and energy accounting are
//! reset at the end of the warm-up window so that only steady-state behaviour
//! is measured, matching the paper's "10000 [cycles] with 1000 reset cycle"
//! methodology (Table 3-3).

use crate::config::SimConfig;
use crate::stats::SimStats;

/// A network that can be advanced cycle by cycle.
pub trait CycleNetwork {
    /// Advances the network by one cycle.
    fn step(&mut self, cycle: u64);

    /// Marks the beginning of the measurement window: statistics and energy
    /// accumulated so far (the warm-up) are discarded.
    fn begin_measurement(&mut self, cycle: u64);

    /// Snapshot of the statistics collected since measurement began.
    fn stats(&self) -> SimStats;

    /// The configuration the network was built with.
    fn config(&self) -> &SimConfig;

    /// Architecture name used in reports.
    fn architecture(&self) -> &str;
}

/// Runs a network for its configured warm-up + measurement window and returns
/// the measured statistics.
pub fn run_to_completion<N: CycleNetwork + ?Sized>(network: &mut N) -> SimStats {
    let warmup = network.config().warmup_cycles;
    let total = network.config().total_cycles();
    for cycle in 0..total {
        if cycle == warmup {
            network.begin_measurement(cycle);
        }
        network.step(cycle);
    }
    network.stats()
}

/// Runs a network for an explicit number of cycles (no warm-up handling).
/// Useful for fine-grained tests that want to observe transient behaviour.
pub fn run_cycles<N: CycleNetwork + ?Sized>(network: &mut N, start: u64, cycles: u64) -> SimStats {
    for cycle in start..start + cycles {
        network.step(cycle);
    }
    network.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::config::BandwidthSet;

    /// A fake network that counts steps and records when measurement began.
    struct Counter {
        config: SimConfig,
        steps: u64,
        measured_from: Option<u64>,
    }

    impl CycleNetwork for Counter {
        fn step(&mut self, _cycle: u64) {
            self.steps += 1;
        }

        fn begin_measurement(&mut self, cycle: u64) {
            self.measured_from = Some(cycle);
            self.steps = 0;
        }

        fn stats(&self) -> SimStats {
            let mut s = SimStats::new("counter", "none", 0.0, Clock::paper_default());
            s.measured_cycles = self.steps;
            s
        }

        fn config(&self) -> &SimConfig {
            &self.config
        }

        fn architecture(&self) -> &str {
            "counter"
        }
    }

    #[test]
    fn run_to_completion_honours_warmup() {
        let mut config = SimConfig::fast(BandwidthSet::Set1);
        config.warmup_cycles = 100;
        config.sim_cycles = 400;
        let mut net = Counter {
            config,
            steps: 0,
            measured_from: None,
        };
        let stats = run_to_completion(&mut net);
        assert_eq!(net.measured_from, Some(100));
        assert_eq!(stats.measured_cycles, 400);
    }

    #[test]
    fn run_cycles_steps_exactly() {
        let config = SimConfig::fast(BandwidthSet::Set1);
        let mut net = Counter {
            config,
            steps: 0,
            measured_from: None,
        };
        let stats = run_cycles(&mut net, 0, 37);
        assert_eq!(stats.measured_cycles, 37);
    }
}
