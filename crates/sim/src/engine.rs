//! The simulation driver.
//!
//! A network implementation (the [`crate::system::PhotonicSystem`], or any
//! other model implementing [`CycleNetwork`]) is driven for
//! `warmup_cycles + sim_cycles` cycles; statistics and energy accounting are
//! reset at the end of the warm-up window so that only steady-state behaviour
//! is measured, matching the paper's "10000 [cycles] with 1000 reset cycle"
//! methodology (Table 3-3).
//!
//! Observability is push-based: [`run_to_completion_with`] drives any number
//! of [`Probe`]s, forwarding the [`SimEvent`]s the network emits through
//! [`CycleNetwork::step_observed`] during the measurement window. The legacy
//! pull-only [`CycleNetwork::stats`] snapshot remains the compatibility
//! currency (every probe run still returns it), but new metrics belong in
//! [`crate::metrics`] probes — see [`crate::metrics::MetricsProbe`].

use crate::config::SimConfig;
use crate::metrics::{EventSink, NullSink, Probe, SimEvent};
use crate::stats::SimStats;

/// A network that can be advanced cycle by cycle.
pub trait CycleNetwork {
    /// Advances the network by one cycle.
    fn step(&mut self, cycle: u64);

    /// Advances the network by one cycle, reporting observable events
    /// ([`SimEvent`]) to `sink` as they happen.
    ///
    /// The default implementation ignores the sink and calls
    /// [`CycleNetwork::step`]; instrumented networks override this and make
    /// `step` the [`NullSink`] special case.
    fn step_observed(&mut self, cycle: u64, sink: &mut dyn EventSink) {
        let _ = sink;
        self.step(cycle);
    }

    /// Marks the beginning of the measurement window: statistics and energy
    /// accumulated so far (the warm-up) are discarded.
    fn begin_measurement(&mut self, cycle: u64);

    /// Snapshot of the statistics collected since measurement began.
    ///
    /// This is the legacy pull-only surface; it stays because [`SimStats`]
    /// remains the workspace's compatibility currency, but new metrics
    /// should be observed through [`Probe`]s instead of growing this
    /// snapshot.
    fn stats(&self) -> SimStats;

    /// The configuration the network was built with.
    fn config(&self) -> &SimConfig;

    /// Architecture name used in reports.
    fn architecture(&self) -> &str;
}

/// Fans one event stream out to a probe slice, gated on the measurement
/// window.
struct ProbeFanout<'a, 'b> {
    probes: &'a mut [&'b mut dyn Probe],
    measuring: bool,
}

impl EventSink for ProbeFanout<'_, '_> {
    fn emit(&mut self, cycle: u64, event: SimEvent) {
        if self.measuring {
            for probe in self.probes.iter_mut() {
                probe.on_event(cycle, &event);
            }
        }
    }
}

/// Runs a network for its configured warm-up + measurement window while
/// driving `probes`, and returns the measured legacy statistics.
///
/// The warm-up runs unobserved. At the measurement boundary every probe
/// gets [`Probe::on_measurement_begin`]; during the window every
/// [`SimEvent`] is forwarded to every probe and each cycle ends with
/// [`Probe::on_cycle_end`]; after the last cycle every probe is finished
/// with the network's final [`SimStats`]. Collect the probes' reports with
/// [`Probe::report`].
pub fn run_to_completion_with<N: CycleNetwork + ?Sized>(
    network: &mut N,
    probes: &mut [&mut dyn Probe],
) -> SimStats {
    let warmup = network.config().warmup_cycles;
    let total = network.config().total_cycles();
    let mut fanout = ProbeFanout {
        probes,
        measuring: false,
    };
    for cycle in 0..total {
        if cycle == warmup {
            network.begin_measurement(cycle);
            fanout.measuring = true;
            for probe in fanout.probes.iter_mut() {
                probe.on_measurement_begin(cycle);
            }
        }
        network.step_observed(cycle, &mut fanout);
        if fanout.measuring {
            for probe in fanout.probes.iter_mut() {
                probe.on_cycle_end(cycle);
            }
        }
    }
    let stats = network.stats();
    for probe in probes.iter_mut() {
        probe.finish(&stats);
    }
    stats
}

/// Runs a network for its configured warm-up + measurement window and returns
/// the measured statistics (no probes attached).
pub fn run_to_completion<N: CycleNetwork + ?Sized>(network: &mut N) -> SimStats {
    run_to_completion_with(network, &mut [])
}

/// Runs a network **closed-loop**: measurement starts immediately (no
/// warm-up — a finite workload has no steady state to warm into), every
/// cycle is observed by the probes, and the run ends as soon as `drained`
/// returns `true` (checked after each cycle, so the cycle that completes the
/// last flow is still measured) or `max_cycles` is reached.
///
/// This is the completion condition behind the flow-level workload engine
/// ([`crate::workload`]): the fixed-cycle ladder of
/// [`run_to_completion_with`] measures open-loop steady state, this entry
/// point measures how long a finite dependency DAG takes to drain.
pub fn run_until_with<N: CycleNetwork + ?Sized>(
    network: &mut N,
    probes: &mut [&mut dyn Probe],
    mut drained: impl FnMut(u64) -> bool,
    max_cycles: u64,
) -> SimStats {
    network.begin_measurement(0);
    let mut fanout = ProbeFanout {
        probes,
        measuring: true,
    };
    for probe in fanout.probes.iter_mut() {
        probe.on_measurement_begin(0);
    }
    for cycle in 0..max_cycles {
        network.step_observed(cycle, &mut fanout);
        for probe in fanout.probes.iter_mut() {
            probe.on_cycle_end(cycle);
        }
        if drained(cycle) {
            break;
        }
    }
    let stats = network.stats();
    for probe in probes.iter_mut() {
        probe.finish(&stats);
    }
    stats
}

/// Runs a network for an explicit number of cycles (no warm-up handling).
/// Useful for fine-grained tests that want to observe transient behaviour.
pub fn run_cycles<N: CycleNetwork + ?Sized>(network: &mut N, start: u64, cycles: u64) -> SimStats {
    let mut sink = NullSink;
    for cycle in start..start + cycles {
        network.step_observed(cycle, &mut sink);
    }
    network.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::config::BandwidthSet;
    use crate::metrics::{MetricReport, MetricValue};
    use pnoc_noc::ids::CoreId;

    /// A fake network that counts steps, records when measurement began, and
    /// emits one synthetic delivery event per step.
    struct Counter {
        config: SimConfig,
        steps: u64,
        measured_from: Option<u64>,
    }

    impl CycleNetwork for Counter {
        fn step(&mut self, cycle: u64) {
            self.step_observed(cycle, &mut NullSink);
        }

        fn step_observed(&mut self, cycle: u64, sink: &mut dyn EventSink) {
            self.steps += 1;
            sink.emit(
                cycle,
                SimEvent::PacketDelivered {
                    src: CoreId(0),
                    dst: CoreId(1),
                    latency: cycle,
                },
            );
        }

        fn begin_measurement(&mut self, cycle: u64) {
            self.measured_from = Some(cycle);
            self.steps = 0;
        }

        fn stats(&self) -> SimStats {
            let mut s = SimStats::new("counter", "none", 0.0, Clock::paper_default());
            s.measured_cycles = self.steps;
            s
        }

        fn config(&self) -> &SimConfig {
            &self.config
        }

        fn architecture(&self) -> &str {
            "counter"
        }
    }

    fn counter_net(warmup: u64, sim: u64) -> Counter {
        let mut config = SimConfig::fast(BandwidthSet::Set1);
        config.warmup_cycles = warmup;
        config.sim_cycles = sim;
        Counter {
            config,
            steps: 0,
            measured_from: None,
        }
    }

    #[test]
    fn run_to_completion_honours_warmup() {
        let mut net = counter_net(100, 400);
        let stats = run_to_completion(&mut net);
        assert_eq!(net.measured_from, Some(100));
        assert_eq!(stats.measured_cycles, 400);
    }

    #[test]
    fn run_cycles_steps_exactly() {
        let mut net = counter_net(1_000, 5_000);
        let stats = run_cycles(&mut net, 0, 37);
        assert_eq!(stats.measured_cycles, 37);
    }

    /// A probe that records the engine-driven lifecycle.
    #[derive(Default)]
    struct LifecycleProbe {
        measurement_begun_at: Option<u64>,
        events: u64,
        first_event_cycle: Option<u64>,
        cycle_ends: u64,
        finished: bool,
    }

    impl Probe for LifecycleProbe {
        fn on_measurement_begin(&mut self, cycle: u64) {
            self.measurement_begun_at = Some(cycle);
        }

        fn on_event(&mut self, cycle: u64, _event: &SimEvent) {
            self.events += 1;
            self.first_event_cycle.get_or_insert(cycle);
        }

        fn on_cycle_end(&mut self, _cycle: u64) {
            self.cycle_ends += 1;
        }

        fn finish(&mut self, _stats: &SimStats) {
            self.finished = true;
        }

        fn report(&self) -> MetricReport {
            let mut report = MetricReport::new();
            report.insert("events", MetricValue::Counter(self.events));
            report
        }
    }

    #[test]
    fn probes_only_observe_the_measurement_window() {
        let mut net = counter_net(100, 400);
        let mut probe = LifecycleProbe::default();
        let stats = run_to_completion_with(&mut net, &mut [&mut probe]);
        assert_eq!(stats.measured_cycles, 400);
        assert_eq!(probe.measurement_begun_at, Some(100));
        // One event per measured cycle; warm-up events were suppressed.
        assert_eq!(probe.events, 400);
        assert_eq!(probe.first_event_cycle, Some(100));
        assert_eq!(probe.cycle_ends, 400);
        assert!(probe.finished);
        assert_eq!(probe.report().counter("events"), Some(400));
    }

    #[test]
    fn run_until_with_stops_at_drain_and_measures_from_cycle_zero() {
        let mut net = counter_net(100, 400); // warm-up is ignored closed-loop
        let mut probe = LifecycleProbe::default();
        let drained = |cycle: u64| cycle >= 6;
        let stats = run_until_with(&mut net, &mut [&mut probe], drained, 10_000);
        // Measurement began immediately; 7 cycles ran (0..=6 inclusive).
        assert_eq!(net.measured_from, Some(0));
        assert_eq!(stats.measured_cycles, 7);
        assert_eq!(probe.measurement_begun_at, Some(0));
        assert_eq!(probe.first_event_cycle, Some(0));
        assert_eq!(probe.events, 7);
        assert!(probe.finished);
    }

    #[test]
    fn run_until_with_honours_the_cycle_cap() {
        let mut net = counter_net(0, 0);
        let stats = run_until_with(&mut net, &mut [], |_| false, 37);
        assert_eq!(stats.measured_cycles, 37);
    }

    #[test]
    fn multiple_probes_see_the_same_stream() {
        let mut net = counter_net(10, 50);
        let mut a = LifecycleProbe::default();
        let mut b = LifecycleProbe::default();
        let _ = run_to_completion_with(&mut net, &mut [&mut a, &mut b]);
        assert_eq!(a.events, b.events);
        assert_eq!(a.events, 50);
    }
}
