#![doc = include_str!("engine.md")]

use crate::config::SimConfig;
use crate::metrics::{EventSink, NullSink, Probe, SimEvent};
use crate::stats::SimStats;
use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide executor selector: `true` (the default) lets the engine act
/// on [`CycleNetwork::next_event_cycle`]; `false` forces the per-cycle
/// reference executor used by cross-engine determinism checks.
static EVENT_DRIVEN: AtomicBool = AtomicBool::new(true);

/// Selects the executor for subsequent engine runs: `true` (the default)
/// enables idle-gap fast-forwarding, `false` forces stepping every cycle.
/// Both executors produce bitwise-identical results; the per-cycle mode
/// exists as the reference for cross-engine determinism diffs.
pub fn set_event_driven(enabled: bool) {
    EVENT_DRIVEN.store(enabled, Ordering::Relaxed);
}

/// Whether the event-driven executor is currently enabled.
#[must_use]
pub fn event_driven_enabled() -> bool {
    EVENT_DRIVEN.load(Ordering::Relaxed)
}

/// A network that can be advanced cycle by cycle.
///
/// `Send` is a supertrait so a built network can be handed to a `pnoc-exec`
/// worker: the hierarchical engine shards one simulation into per-pod
/// networks and steps them as batch jobs.
pub trait CycleNetwork: Send {
    /// Advances the network by one cycle.
    fn step(&mut self, cycle: u64);

    /// Advances the network by one cycle, reporting observable events
    /// ([`SimEvent`]) to `sink` as they happen.
    ///
    /// The default implementation ignores the sink and calls
    /// [`CycleNetwork::step`]; instrumented networks override this and make
    /// `step` the [`NullSink`] special case.
    fn step_observed(&mut self, cycle: u64, sink: &mut dyn EventSink) {
        let _ = sink;
        self.step(cycle);
    }

    /// Marks the beginning of the measurement window: statistics and energy
    /// accumulated so far (the warm-up) are discarded.
    fn begin_measurement(&mut self, cycle: u64);

    /// Snapshot of the statistics collected since measurement began.
    ///
    /// This is the legacy pull-only surface; it stays because [`SimStats`]
    /// remains the workspace's compatibility currency, but new metrics
    /// should be observed through [`Probe`]s instead of growing this
    /// snapshot. The engine takes this snapshot exactly once, after the last
    /// cycle of a run — it is never on the per-cycle hot path.
    fn stats(&self) -> SimStats;

    /// The configuration the network was built with.
    fn config(&self) -> &SimConfig;

    /// Architecture name used in reports.
    fn architecture(&self) -> &str;

    /// The earliest cycle `> now` at which stepping this network could
    /// differ from doing nothing, or `None` if no future step will ever
    /// change anything.
    ///
    /// The default — `Some(now + 1)` — declares every cycle potentially
    /// eventful and preserves pure per-cycle execution. An implementation
    /// may only answer a later cycle when every step in between would be a
    /// bitwise no-op (no state change, no event, no RNG draw); it must then
    /// also override [`CycleNetwork::skip_cycles`] if it has any per-cycle
    /// bookkeeping. See `engine.md` for the full scheduler contract.
    fn next_event_cycle(&mut self, now: u64) -> Option<u64> {
        Some(now + 1)
    }

    /// Fast-forwards the network across the provably idle cycles
    /// `from..to` (exclusive of `to`, which the engine steps normally).
    /// Must leave the network bitwise-identical to stepping each skipped
    /// cycle. Only called for gaps this network itself announced through
    /// [`CycleNetwork::next_event_cycle`]; the default is a no-op, matching
    /// the default `next_event_cycle` that never opens a gap.
    fn skip_cycles(&mut self, from: u64, to: u64) {
        let _ = (from, to);
    }

    /// Installs a fault schedule to replay during the run, returning whether
    /// the network supports fault injection. A supporting implementation
    /// must apply every due transition at the top of each stepped cycle
    /// (emitting the fault [`SimEvent`]s) and fold the controller's
    /// [`pnoc_faults::FaultController::next_transition_cycle`] bound into
    /// [`CycleNetwork::next_event_cycle`], so idle-gap skips never jump over
    /// a scheduled fault. The default declines: networks without fabric
    /// capability hooks cannot degrade, so silently accepting a plan would
    /// report healthy numbers for a supposedly faulted run.
    fn install_fault_schedule(&mut self, controller: pnoc_faults::FaultController) -> bool {
        let _ = controller;
        false
    }

    /// `(faults_applied, faults_active)` counts from the installed fault
    /// schedule, `(0, 0)` when no schedule was installed.
    fn fault_counts(&self) -> (u64, u64) {
        (0, 0)
    }

    /// Contributes network-internal metrics to a finished point's report,
    /// after the probes have built it from the event stream. The default
    /// adds nothing — most networks are fully described by their events.
    /// Composite networks (the hierarchy engine) override this to attach
    /// structure the flat event stream cannot carry, such as per-pod
    /// delivery families and spine-link counters.
    fn contribute_metrics(&self, report: &mut crate::metrics::MetricReport) {
        let _ = report;
    }
}

/// Fans one event stream out to a probe slice, gated on the measurement
/// window.
struct ProbeFanout<'a, 'b> {
    probes: &'a mut [&'b mut dyn Probe],
    measuring: bool,
}

impl EventSink for ProbeFanout<'_, '_> {
    fn emit(&mut self, cycle: u64, event: SimEvent) {
        // Fault transitions are schedule replay, not workload statistics:
        // they pass the warm-up gate so the probes' fault counters reconcile
        // exactly with the controller's whole-run gauges even when an onset
        // lands inside the warm-up window.
        let structural = matches!(
            event,
            SimEvent::FaultApplied { .. } | SimEvent::FaultRepaired { .. }
        );
        if self.measuring || structural {
            for probe in self.probes.iter_mut() {
                probe.on_event(cycle, &event);
            }
        }
    }
}

/// After stepping `cycle`, decides how far the clock may jump (never past
/// `limit`) and performs the fast-forward: the network skips the gap in one
/// call and, when measuring, every probe sees `on_cycle_end` once per
/// skipped cycle so windowed metrics close at exactly the same cycles as
/// under per-cycle execution. Returns the next cycle to step.
fn advance_clock<N: CycleNetwork + ?Sized>(
    network: &mut N,
    fanout: &mut ProbeFanout<'_, '_>,
    cycle: u64,
    limit: u64,
) -> u64 {
    let next = if event_driven_enabled() {
        network.next_event_cycle(cycle)
    } else {
        Some(cycle + 1)
    };
    let target = next.unwrap_or(limit).clamp(cycle + 1, limit);
    if target > cycle + 1 {
        network.skip_cycles(cycle + 1, target);
        if fanout.measuring {
            for skipped in cycle + 1..target {
                for probe in fanout.probes.iter_mut() {
                    probe.on_cycle_end(skipped);
                }
            }
        }
    }
    target
}

/// Runs a network for its configured warm-up + measurement window while
/// driving `probes`, and returns the measured legacy statistics.
///
/// The warm-up runs unobserved, except that fault transitions pass the gate
/// so fault counters cover the whole run. At the measurement boundary every
/// probe
/// gets [`Probe::on_measurement_begin`]; during the window every
/// [`SimEvent`] is forwarded to every probe and each cycle ends with
/// [`Probe::on_cycle_end`]; after the last cycle every probe is finished
/// with the network's final [`SimStats`]. Collect the probes' reports with
/// [`Probe::report`].
pub fn run_to_completion_with<N: CycleNetwork + ?Sized>(
    network: &mut N,
    probes: &mut [&mut dyn Probe],
) -> SimStats {
    let warmup = network.config().warmup_cycles;
    let total = network.config().total_cycles();
    let mut fanout = ProbeFanout {
        probes,
        measuring: false,
    };
    let mut cycle = 0;
    while cycle < total {
        if cycle == warmup {
            network.begin_measurement(cycle);
            fanout.measuring = true;
            for probe in fanout.probes.iter_mut() {
                probe.on_measurement_begin(cycle);
            }
        }
        network.step_observed(cycle, &mut fanout);
        if fanout.measuring {
            for probe in fanout.probes.iter_mut() {
                probe.on_cycle_end(cycle);
            }
        }
        // Fast-forwarding must land exactly on the warm-up boundary so
        // `begin_measurement` fires at the configured cycle.
        let limit = if cycle < warmup { warmup } else { total };
        cycle = advance_clock(network, &mut fanout, cycle, limit);
    }
    let stats = network.stats();
    for probe in probes.iter_mut() {
        probe.finish(&stats);
    }
    stats
}

/// Runs a network for its configured warm-up + measurement window and returns
/// the measured statistics (no probes attached).
pub fn run_to_completion<N: CycleNetwork + ?Sized>(network: &mut N) -> SimStats {
    run_to_completion_with(network, &mut [])
}

/// Runs a network **closed-loop**: measurement starts immediately (no
/// warm-up — a finite workload has no steady state to warm into), every
/// cycle is observed by the probes, and the run ends as soon as `drained`
/// returns `true` (checked after each cycle, so the cycle that completes the
/// last flow is still measured) or `max_cycles` is reached.
///
/// This is the completion condition behind the flow-level workload engine
/// ([`crate::workload`]): the fixed-cycle ladder of
/// [`run_to_completion_with`] measures open-loop steady state, this entry
/// point measures how long a finite dependency DAG takes to drain.
pub fn run_until_with<N: CycleNetwork + ?Sized>(
    network: &mut N,
    probes: &mut [&mut dyn Probe],
    mut drained: impl FnMut(u64) -> bool,
    max_cycles: u64,
) -> SimStats {
    network.begin_measurement(0);
    let mut fanout = ProbeFanout {
        probes,
        measuring: true,
    };
    for probe in fanout.probes.iter_mut() {
        probe.on_measurement_begin(0);
    }
    let mut cycle = 0;
    while cycle < max_cycles {
        network.step_observed(cycle, &mut fanout);
        for probe in fanout.probes.iter_mut() {
            probe.on_cycle_end(cycle);
        }
        if drained(cycle) {
            break;
        }
        // Drain state can only change on a stepped cycle (it is driven by
        // deliveries), so it cannot flip inside a skipped gap.
        cycle = advance_clock(network, &mut fanout, cycle, max_cycles);
    }
    let stats = network.stats();
    for probe in probes.iter_mut() {
        probe.finish(&stats);
    }
    stats
}

/// Runs a network for an explicit number of cycles (no warm-up handling).
/// Useful for fine-grained tests that want to observe transient behaviour.
pub fn run_cycles<N: CycleNetwork + ?Sized>(network: &mut N, start: u64, cycles: u64) -> SimStats {
    let mut sink = NullSink;
    for cycle in start..start + cycles {
        network.step_observed(cycle, &mut sink);
    }
    network.stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::config::BandwidthSet;
    use crate::metrics::{MetricReport, MetricValue};
    use pnoc_noc::ids::CoreId;

    /// A fake network that counts steps, records when measurement began, and
    /// emits one synthetic delivery event per step.
    struct Counter {
        config: SimConfig,
        steps: u64,
        measured_from: Option<u64>,
    }

    impl CycleNetwork for Counter {
        fn step(&mut self, cycle: u64) {
            self.step_observed(cycle, &mut NullSink);
        }

        fn step_observed(&mut self, cycle: u64, sink: &mut dyn EventSink) {
            self.steps += 1;
            sink.emit(
                cycle,
                SimEvent::PacketDelivered {
                    src: CoreId(0),
                    dst: CoreId(1),
                    latency: cycle,
                },
            );
        }

        fn begin_measurement(&mut self, cycle: u64) {
            self.measured_from = Some(cycle);
            self.steps = 0;
        }

        fn stats(&self) -> SimStats {
            let mut s = SimStats::new("counter", "none", 0.0, Clock::paper_default());
            s.measured_cycles = self.steps;
            s
        }

        fn config(&self) -> &SimConfig {
            &self.config
        }

        fn architecture(&self) -> &str {
            "counter"
        }
    }

    fn counter_net(warmup: u64, sim: u64) -> Counter {
        let mut config = SimConfig::fast(BandwidthSet::Set1);
        config.warmup_cycles = warmup;
        config.sim_cycles = sim;
        Counter {
            config,
            steps: 0,
            measured_from: None,
        }
    }

    #[test]
    fn run_to_completion_honours_warmup() {
        let mut net = counter_net(100, 400);
        let stats = run_to_completion(&mut net);
        assert_eq!(net.measured_from, Some(100));
        assert_eq!(stats.measured_cycles, 400);
    }

    #[test]
    fn run_cycles_steps_exactly() {
        let mut net = counter_net(1_000, 5_000);
        let stats = run_cycles(&mut net, 0, 37);
        assert_eq!(stats.measured_cycles, 37);
    }

    /// A probe that records the engine-driven lifecycle.
    #[derive(Default)]
    struct LifecycleProbe {
        measurement_begun_at: Option<u64>,
        events: u64,
        first_event_cycle: Option<u64>,
        cycle_ends: u64,
        finished: bool,
    }

    impl Probe for LifecycleProbe {
        fn on_measurement_begin(&mut self, cycle: u64) {
            self.measurement_begun_at = Some(cycle);
        }

        fn on_event(&mut self, cycle: u64, _event: &SimEvent) {
            self.events += 1;
            self.first_event_cycle.get_or_insert(cycle);
        }

        fn on_cycle_end(&mut self, _cycle: u64) {
            self.cycle_ends += 1;
        }

        fn finish(&mut self, _stats: &SimStats) {
            self.finished = true;
        }

        fn report(&self) -> MetricReport {
            let mut report = MetricReport::new();
            report.insert("events", MetricValue::Counter(self.events));
            report
        }
    }

    #[test]
    fn probes_only_observe_the_measurement_window() {
        let mut net = counter_net(100, 400);
        let mut probe = LifecycleProbe::default();
        let stats = run_to_completion_with(&mut net, &mut [&mut probe]);
        assert_eq!(stats.measured_cycles, 400);
        assert_eq!(probe.measurement_begun_at, Some(100));
        // One event per measured cycle; warm-up events were suppressed.
        assert_eq!(probe.events, 400);
        assert_eq!(probe.first_event_cycle, Some(100));
        assert_eq!(probe.cycle_ends, 400);
        assert!(probe.finished);
        assert_eq!(probe.report().counter("events"), Some(400));
    }

    #[test]
    fn run_until_with_stops_at_drain_and_measures_from_cycle_zero() {
        let mut net = counter_net(100, 400); // warm-up is ignored closed-loop
        let mut probe = LifecycleProbe::default();
        let drained = |cycle: u64| cycle >= 6;
        let stats = run_until_with(&mut net, &mut [&mut probe], drained, 10_000);
        // Measurement began immediately; 7 cycles ran (0..=6 inclusive).
        assert_eq!(net.measured_from, Some(0));
        assert_eq!(stats.measured_cycles, 7);
        assert_eq!(probe.measurement_begun_at, Some(0));
        assert_eq!(probe.first_event_cycle, Some(0));
        assert_eq!(probe.events, 7);
        assert!(probe.finished);
    }

    #[test]
    fn run_until_with_honours_the_cycle_cap() {
        let mut net = counter_net(0, 0);
        let stats = run_until_with(&mut net, &mut [], |_| false, 37);
        assert_eq!(stats.measured_cycles, 37);
    }

    #[test]
    fn multiple_probes_see_the_same_stream() {
        let mut net = counter_net(10, 50);
        let mut a = LifecycleProbe::default();
        let mut b = LifecycleProbe::default();
        let _ = run_to_completion_with(&mut net, &mut [&mut a, &mut b]);
        assert_eq!(a.events, b.events);
        assert_eq!(a.events, 50);
    }

    /// A network with one event every `period` cycles and nothing in
    /// between: the event-driven engine can skip the gaps, the per-cycle
    /// engine steps through them. Both must agree on every observable.
    struct Pulsed {
        config: SimConfig,
        period: u64,
        steps: u64,
        skips: u64,
        measured: u64,
        measured_from: Option<u64>,
    }

    impl Pulsed {
        fn new(warmup: u64, sim: u64, period: u64) -> Self {
            let mut config = SimConfig::fast(BandwidthSet::Set1);
            config.warmup_cycles = warmup;
            config.sim_cycles = sim;
            Pulsed {
                config,
                period,
                steps: 0,
                skips: 0,
                measured: 0,
                measured_from: None,
            }
        }
    }

    impl CycleNetwork for Pulsed {
        fn step(&mut self, cycle: u64) {
            self.step_observed(cycle, &mut NullSink);
        }

        fn step_observed(&mut self, cycle: u64, sink: &mut dyn EventSink) {
            self.steps += 1;
            self.measured += 1;
            if cycle.is_multiple_of(self.period) {
                sink.emit(
                    cycle,
                    SimEvent::PacketDelivered {
                        src: CoreId(0),
                        dst: CoreId(1),
                        latency: cycle,
                    },
                );
            }
        }

        fn begin_measurement(&mut self, cycle: u64) {
            self.measured_from = Some(cycle);
            self.measured = 0;
        }

        fn stats(&self) -> SimStats {
            let mut s = SimStats::new("pulsed", "none", 0.0, Clock::paper_default());
            s.measured_cycles = self.measured;
            s
        }

        fn config(&self) -> &SimConfig {
            &self.config
        }

        fn architecture(&self) -> &str {
            "pulsed"
        }

        fn next_event_cycle(&mut self, now: u64) -> Option<u64> {
            Some(((now / self.period) + 1) * self.period)
        }

        fn skip_cycles(&mut self, from: u64, to: u64) {
            self.skips += 1;
            self.measured += to - from;
        }
    }

    /// One test owns every toggle of the process-wide executor flag, so the
    /// other tests of this binary never race against a temporarily forced
    /// per-cycle mode (they are bitwise-identical under both anyway).
    #[test]
    fn event_driven_skips_idle_gaps_and_matches_per_cycle_bitwise() {
        let run = |net: &mut Pulsed| {
            let mut probe = LifecycleProbe::default();
            let stats = run_to_completion_with(net, &mut [&mut probe]);
            (
                stats.measured_cycles,
                probe.events,
                probe.cycle_ends,
                probe.measurement_begun_at,
                probe.first_event_cycle,
            )
        };

        assert!(event_driven_enabled(), "event mode is the default");
        let mut event_net = Pulsed::new(100, 400, 10);
        let event_obs = run(&mut event_net);
        assert_eq!(event_net.measured_from, Some(100));
        assert!(
            event_net.skips > 0,
            "period-10 pulses must open skippable gaps"
        );
        assert!(
            event_net.steps < 100,
            "only ~one step per pulse expected, got {}",
            event_net.steps
        );

        set_event_driven(false);
        let mut reference_net = Pulsed::new(100, 400, 10);
        let reference_obs = run(&mut reference_net);
        set_event_driven(true);

        assert_eq!(reference_net.steps, 500, "per-cycle mode steps every cycle");
        assert_eq!(reference_net.skips, 0);
        assert_eq!(event_obs, reference_obs);
        // Both saw the full 400 measured cycles and every in-window pulse.
        assert_eq!(event_obs.0, 400);
        assert_eq!(event_obs.2, 400);
        assert_eq!(event_obs.3, Some(100));
        assert_eq!(event_obs.4, Some(100));
    }

    #[test]
    fn fast_forward_lands_exactly_on_the_warmup_boundary() {
        // Warm-up 105 is not a pulse multiple: the jump from cycle 100's
        // pulse toward 110 must be clamped to 105 so measurement starts
        // there, not after it.
        let mut net = Pulsed::new(105, 95, 10);
        let stats = run_to_completion(&mut net);
        assert_eq!(net.measured_from, Some(105));
        assert_eq!(stats.measured_cycles, 95);
    }

    #[test]
    fn run_until_with_fast_forwards_to_the_cycle_cap() {
        // Never drains: the engine should skip straight across each idle
        // gap and still report exactly `max_cycles` measured cycles.
        let mut net = Pulsed::new(0, 0, 25);
        let stats = run_until_with(&mut net, &mut [], |_| false, 101);
        assert_eq!(stats.measured_cycles, 101);
        assert!(net.steps < 10, "expected ~5 pulse steps, got {}", net.steps);
    }

    #[test]
    fn none_from_next_event_cycle_jumps_to_the_horizon() {
        /// A network that dies after cycle 3: no event will ever fire again.
        struct Dead {
            config: SimConfig,
            steps: u64,
            measured: u64,
        }
        impl CycleNetwork for Dead {
            fn step(&mut self, _cycle: u64) {
                self.steps += 1;
                self.measured += 1;
            }
            fn begin_measurement(&mut self, _cycle: u64) {
                self.measured = 0;
            }
            fn stats(&self) -> SimStats {
                let mut s = SimStats::new("dead", "none", 0.0, Clock::paper_default());
                s.measured_cycles = self.measured;
                s
            }
            fn config(&self) -> &SimConfig {
                &self.config
            }
            fn architecture(&self) -> &str {
                "dead"
            }
            fn next_event_cycle(&mut self, now: u64) -> Option<u64> {
                if now < 3 {
                    Some(now + 1)
                } else {
                    None
                }
            }
            fn skip_cycles(&mut self, from: u64, to: u64) {
                self.measured += to - from;
            }
        }
        let mut config = SimConfig::fast(BandwidthSet::Set1);
        config.warmup_cycles = 0;
        config.sim_cycles = 1_000;
        let mut net = Dead {
            config,
            steps: 0,
            measured: 0,
        };
        let stats = run_to_completion(&mut net);
        assert_eq!(stats.measured_cycles, 1_000);
        assert_eq!(net.steps, 4, "cycles 0..=3 step, the rest is one skip");
    }
}
