//! Offered-load sweeps and saturation search.
//!
//! "Peak bandwidth" and "packet energy at saturation" are properties of the
//! saturated network: the evaluation sweeps the offered load upward until the
//! accepted bandwidth stops improving and reports the maximum. This module
//! provides the load ladder, the sweep driver and the result container used
//! by every throughput/energy experiment.

use crate::stats::SimStats;
use serde::{Deserialize, Serialize};

/// One point of an offered-load sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load in packets per core per cycle.
    pub offered_load: f64,
    /// Measured statistics at that load.
    pub stats: SimStats,
}

/// The outcome of a saturation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationResult {
    /// All swept points, in increasing offered-load order.
    pub points: Vec<SweepPoint>,
}

impl SaturationResult {
    /// Index of the point with the highest accepted bandwidth.
    #[must_use]
    pub fn peak_index(&self) -> Option<usize> {
        (0..self.points.len()).max_by(|&a, &b| {
            self.points[a]
                .stats
                .accepted_bandwidth_gbps()
                .partial_cmp(&self.points[b].stats.accepted_bandwidth_gbps())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The sweep point with the highest accepted bandwidth.
    #[must_use]
    pub fn peak(&self) -> Option<&SweepPoint> {
        self.peak_index().map(|i| &self.points[i])
    }

    /// Peak aggregate bandwidth in Gb/s (0 when the sweep is empty).
    #[must_use]
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.peak()
            .map(|p| p.stats.accepted_bandwidth_gbps())
            .unwrap_or(0.0)
    }

    /// Peak per-core bandwidth in Gb/s.
    #[must_use]
    pub fn peak_core_bandwidth_gbps(&self, num_cores: usize) -> f64 {
        self.peak()
            .map(|p| p.stats.accepted_bandwidth_per_core_gbps(num_cores))
            .unwrap_or(0.0)
    }

    /// Index of the *saturation point*: the sweep point with the highest
    /// accepted bandwidth among those the network absorbs without significant
    /// source-queue overflow (drop rate ≤ 2 %). Beyond this point injected
    /// traffic is lost rather than delivered. Falls back to the
    /// maximum-accepted point when even the lightest load already drops.
    #[must_use]
    pub fn saturation_index(&self) -> Option<usize> {
        let sustained = (0..self.points.len())
            .filter(|&i| self.points[i].stats.drop_rate() <= 0.02)
            .max_by(|&a, &b| {
                self.points[a]
                    .stats
                    .accepted_bandwidth_gbps()
                    .partial_cmp(&self.points[b].stats.accepted_bandwidth_gbps())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        sustained.or_else(|| self.peak_index())
    }

    /// The sweep point at saturation (see [`SaturationResult::saturation_index`]).
    #[must_use]
    pub fn saturation_point(&self) -> Option<&SweepPoint> {
        self.saturation_index().map(|i| &self.points[i])
    }

    /// The peak achievable (sustainable) bandwidth in Gb/s: the accepted
    /// bandwidth at the saturation point. This is the figure reported as
    /// "peak bandwidth" in the comparison experiments.
    #[must_use]
    pub fn sustainable_bandwidth_gbps(&self) -> f64 {
        self.saturation_point()
            .map(|p| p.stats.accepted_bandwidth_gbps())
            .unwrap_or(0.0)
    }

    /// Packet energy at the saturation point, pico-joules.
    #[must_use]
    pub fn packet_energy_at_saturation_pj(&self) -> f64 {
        self.saturation_point()
            .map(|p| p.stats.packet_energy_pj())
            .unwrap_or(0.0)
    }

    /// Average packet latency at the saturation point, cycles.
    #[must_use]
    pub fn latency_at_saturation(&self) -> f64 {
        self.saturation_point()
            .map(|p| p.stats.average_packet_latency())
            .unwrap_or(0.0)
    }
}

/// The default ladder of offered loads used by the experiments, expressed as
/// multiples of the analytically estimated saturation load.
pub const DEFAULT_LOAD_FRACTIONS: [f64; 8] = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0];

/// Builds the ladder of absolute offered loads from an estimated saturation
/// load.
///
/// # Panics
///
/// Panics if `estimated_saturation_load` is not positive.
#[must_use]
pub fn default_load_ladder(estimated_saturation_load: f64) -> Vec<f64> {
    assert!(
        estimated_saturation_load > 0.0,
        "saturation estimate must be positive"
    );
    DEFAULT_LOAD_FRACTIONS
        .iter()
        .map(|f| f * estimated_saturation_load)
        .collect()
}

/// Runs `run_at` for every load in `loads` and collects the results.
pub fn sweep_offered_loads<R>(loads: &[f64], mut run_at: R) -> SaturationResult
where
    R: FnMut(f64) -> SimStats,
{
    let points = loads
        .iter()
        .map(|&load| SweepPoint {
            offered_load: load,
            stats: run_at(load),
        })
        .collect();
    SaturationResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;

    fn stats_with_bandwidth(load: f64, delivered_bits: u64) -> SimStats {
        let mut s = SimStats::new("arch", "traffic", load, Clock::paper_default());
        s.measured_cycles = 1000;
        s.delivered_bits = delivered_bits;
        s.delivered_packets = delivered_bits / 2048;
        s.energy.launch_pj = delivered_bits as f64 * 0.15;
        s
    }

    #[test]
    fn peak_is_the_maximum_accepted_bandwidth() {
        // Accepted bandwidth rises then falls (post-saturation congestion).
        let loads = [0.1, 0.2, 0.3, 0.4];
        let delivered = [1_000_000u64, 2_000_000, 1_800_000, 1_500_000];
        let mut i = 0;
        let result = sweep_offered_loads(&loads, |load| {
            let s = stats_with_bandwidth(load, delivered[i]);
            i += 1;
            s
        });
        assert_eq!(result.points.len(), 4);
        assert_eq!(result.peak_index(), Some(1));
        let peak = result.peak().unwrap();
        assert!((peak.offered_load - 0.2).abs() < 1e-12);
        assert!(result.peak_bandwidth_gbps() > 0.0);
        assert!(result.packet_energy_at_saturation_pj() > 0.0);
    }

    #[test]
    fn empty_sweep_is_harmless() {
        let result = sweep_offered_loads(&[], |_| unreachable!());
        assert_eq!(result.peak_index(), None);
        assert_eq!(result.peak_bandwidth_gbps(), 0.0);
        assert_eq!(result.packet_energy_at_saturation_pj(), 0.0);
    }

    #[test]
    fn ladder_scales_with_estimate() {
        let ladder = default_load_ladder(0.01);
        assert_eq!(ladder.len(), DEFAULT_LOAD_FRACTIONS.len());
        assert!((ladder[0] - 0.0025).abs() < 1e-12);
        assert!((ladder.last().unwrap() - 0.03).abs() < 1e-12);
        // Monotone increasing.
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn per_core_bandwidth_divides_aggregate() {
        let result = sweep_offered_loads(&[0.1], |load| stats_with_bandwidth(load, 640_000));
        let agg = result.peak_bandwidth_gbps();
        let per_core = result.peak_core_bandwidth_gbps(64);
        assert!((agg / 64.0 - per_core).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ladder_rejects_zero_estimate() {
        let _ = default_load_ladder(0.0);
    }
}
