//! Offered-load sweeps and saturation search.
//!
//! "Peak bandwidth" and "packet energy at saturation" are properties of the
//! saturated network: the evaluation sweeps the offered load upward until the
//! accepted bandwidth stops improving and reports the maximum. This module
//! provides the load ladder, the **generic sweep driver** shared by every
//! architecture, and the result container used by every throughput/energy
//! experiment.
//!
//! # The generic driver
//!
//! The sweep driver takes an [`ArchitectureBuilder`] (usually resolved from
//! the [registry](crate::registry)), a traffic factory closure, a base
//! configuration and a load ladder, and simulates one independent network per
//! ladder point. With [`SweepMode::Parallel`] the points run on the
//! persistent `pnoc-exec` pool; because each point is a fully independent deterministic
//! simulation, the parallel result is **bitwise-identical** to the
//! sequential one.
//!
//! The supported entry point is the typed scenario API in
//! [`crate::scenario`]: a [`Scenario`](crate::scenario::Scenario) resolves
//! the architecture and traffic registries by name and drives this module
//! internally, and a [`ScenarioMatrix`](crate::scenario::ScenarioMatrix)
//! batches whole cross-products of scenarios into one flattened work queue.
//! (The raw closure-based `run_saturation_sweep` shim deprecated in 0.3.0
//! has been removed — build a `Scenario` instead.)
//!
//! Every point simulated by the driver carries a
//! [`MetricReport`](crate::metrics::MetricReport) collected by a
//! [`MetricsProbe`](crate::metrics::MetricsProbe) — latency quantiles,
//! per-node and per-cluster-pair breakdowns, windowed throughput — next to
//! the legacy [`SimStats`] snapshot.
//!
//! # Per-point seed derivation
//!
//! Every sweep point gets its own RNG seed derived from the base
//! configuration seed:
//!
//! ```text
//! point_seed(i) = splitmix64(config.seed XOR (i + 1) · 0x9E3779B97F4A7C15)
//! ```
//!
//! (golden-ratio increment, SplitMix64 finalizer — see [`derive_point_seed`]).
//! The derived seed is stored in the per-point [`SweepPointSpec`] and in the
//! per-point copy of the [`SimConfig`] handed to the builder, so a point's
//! result depends only on `(base seed, point index, load)` — never on which
//! thread ran it or in which order points completed. This is what makes the
//! parallel sweep reproducible and bitwise-equal to the sequential sweep.

use crate::config::SimConfig;
use crate::engine::{run_to_completion_with, CycleNetwork};
use crate::metrics::{MetricReport, MetricsProbe, Probe as _};
use crate::params::ResolvedParams;
use crate::registry::ArchitectureBuilder;
use crate::stats::SimStats;
use pnoc_faults::{FaultController, FaultPlan};
use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use serde::{Deserialize, Serialize};

/// One point of an offered-load sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Offered load in packets per core per cycle.
    pub offered_load: f64,
    /// Measured statistics at that load.
    pub stats: SimStats,
    /// Streamed metrics of the point (latency quantiles, per-node and
    /// per-cluster-pair breakdowns, windowed throughput). Empty for points
    /// assembled outside the generic driver (e.g. [`sweep_offered_loads`]).
    pub metrics: MetricReport,
}

/// The outcome of a saturation sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationResult {
    /// All swept points, in increasing offered-load order.
    pub points: Vec<SweepPoint>,
}

impl SaturationResult {
    /// Index of the point with the highest accepted bandwidth.
    #[must_use]
    pub fn peak_index(&self) -> Option<usize> {
        (0..self.points.len()).max_by(|&a, &b| {
            self.points[a]
                .stats
                .accepted_bandwidth_gbps()
                .partial_cmp(&self.points[b].stats.accepted_bandwidth_gbps())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The sweep point with the highest accepted bandwidth.
    #[must_use]
    pub fn peak(&self) -> Option<&SweepPoint> {
        self.peak_index().map(|i| &self.points[i])
    }

    /// Peak aggregate bandwidth in Gb/s (0 when the sweep is empty).
    #[must_use]
    pub fn peak_bandwidth_gbps(&self) -> f64 {
        self.peak()
            .map(|p| p.stats.accepted_bandwidth_gbps())
            .unwrap_or(0.0)
    }

    /// Peak per-core bandwidth in Gb/s.
    #[must_use]
    pub fn peak_core_bandwidth_gbps(&self, num_cores: usize) -> f64 {
        self.peak()
            .map(|p| p.stats.accepted_bandwidth_per_core_gbps(num_cores))
            .unwrap_or(0.0)
    }

    /// Index of the *saturation point*: the sweep point with the highest
    /// accepted bandwidth among those the network absorbs without significant
    /// source-queue overflow (drop rate ≤ 2 %). Beyond this point injected
    /// traffic is lost rather than delivered. Falls back to the
    /// maximum-accepted point when even the lightest load already drops.
    #[must_use]
    pub fn saturation_index(&self) -> Option<usize> {
        let sustained = (0..self.points.len())
            .filter(|&i| self.points[i].stats.drop_rate() <= 0.02)
            .max_by(|&a, &b| {
                self.points[a]
                    .stats
                    .accepted_bandwidth_gbps()
                    .partial_cmp(&self.points[b].stats.accepted_bandwidth_gbps())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
        sustained.or_else(|| self.peak_index())
    }

    /// The sweep point at saturation (see [`SaturationResult::saturation_index`]).
    #[must_use]
    pub fn saturation_point(&self) -> Option<&SweepPoint> {
        self.saturation_index().map(|i| &self.points[i])
    }

    /// The peak achievable (sustainable) bandwidth in Gb/s: the accepted
    /// bandwidth at the saturation point. This is the figure reported as
    /// "peak bandwidth" in the comparison experiments.
    #[must_use]
    pub fn sustainable_bandwidth_gbps(&self) -> f64 {
        self.saturation_point()
            .map(|p| p.stats.accepted_bandwidth_gbps())
            .unwrap_or(0.0)
    }

    /// Packet energy at the saturation point, pico-joules.
    #[must_use]
    pub fn packet_energy_at_saturation_pj(&self) -> f64 {
        self.saturation_point()
            .map(|p| p.stats.packet_energy_pj())
            .unwrap_or(0.0)
    }

    /// Average packet latency at the saturation point, cycles.
    #[must_use]
    pub fn latency_at_saturation(&self) -> f64 {
        self.saturation_point()
            .map(|p| p.stats.average_packet_latency())
            .unwrap_or(0.0)
    }
}

/// The default ladder of offered loads used by the experiments, expressed as
/// multiples of the analytically estimated saturation load.
pub const DEFAULT_LOAD_FRACTIONS: [f64; 8] = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 3.0];

/// Builds the ladder of absolute offered loads from an estimated saturation
/// load.
///
/// # Panics
///
/// Panics if `estimated_saturation_load` is not positive.
#[must_use]
pub fn default_load_ladder(estimated_saturation_load: f64) -> Vec<f64> {
    assert!(
        estimated_saturation_load > 0.0,
        "saturation estimate must be positive"
    );
    DEFAULT_LOAD_FRACTIONS
        .iter()
        .map(|f| f * estimated_saturation_load)
        .collect()
}

/// Runs `run_at` for every load in `loads` and collects the results.
pub fn sweep_offered_loads<R>(loads: &[f64], mut run_at: R) -> SaturationResult
where
    R: FnMut(f64) -> SimStats,
{
    let points = loads
        .iter()
        .map(|&load| SweepPoint {
            offered_load: load,
            stats: run_at(load),
            metrics: MetricReport::new(),
        })
        .collect();
    SaturationResult { points }
}

/// Execution strategy of the generic sweep driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepMode {
    /// Run the ladder points one after another on the calling thread.
    Sequential,
    /// Run the ladder points on the persistent executor pool. Results are
    /// bitwise-identical to [`SweepMode::Sequential`] because every point is
    /// an independent deterministic simulation with a seed derived only from
    /// the base seed and the point index.
    Parallel,
}

/// Everything that identifies one point of a sweep: its index in the ladder,
/// its offered load, its derived seed, and the per-point configuration
/// (the base configuration with `seed` replaced by the derived seed).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SweepPointSpec {
    /// Position of the point in the load ladder.
    pub index: usize,
    /// Offered load of the point.
    pub offered_load: OfferedLoad,
    /// Seed derived from the base configuration seed and `index`
    /// (see [`derive_point_seed`]).
    pub seed: u64,
    /// The base configuration with [`SimConfig::seed`] set to
    /// [`SweepPointSpec::seed`].
    pub config: SimConfig,
}

/// Derives the RNG seed of sweep point `index` from the base configuration
/// seed: a golden-ratio increment XORed into the base seed, passed through
/// the SplitMix64 finalizer. Distinct indices give statistically independent
/// seeds; the same `(base_seed, index)` pair always gives the same seed.
#[must_use]
pub fn derive_point_seed(base_seed: u64, index: usize) -> u64 {
    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut z = base_seed ^ GOLDEN.wrapping_mul(index as u64 + 1);
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub(crate) fn point_spec(config: &SimConfig, index: usize, load: f64) -> SweepPointSpec {
    let seed = derive_point_seed(config.seed, index);
    let mut point_config = *config;
    point_config.seed = seed;
    SweepPointSpec {
        index,
        offered_load: OfferedLoad::new(load),
        seed,
        config: point_config,
    }
}

/// Adds the photonic static-power gauges to a point's metric report:
/// `static_power_mw` (laser + thermal tuning, see
/// [`SimConfig::static_power_mw`]) and `total_energy_pj` (the dynamic
/// [`EnergyBreakdown`](pnoc_photonics::energy::EnergyBreakdown) total plus
/// the static power integrated over the measured window) — so
/// energy-per-bit comparisons no longer undercount the always-on laser and
/// heater budget.
pub(crate) fn attach_power_gauges(report: &mut MetricReport, config: &SimConfig, stats: &SimStats) {
    use crate::metrics::MetricValue;
    let static_mw = config.static_power_mw();
    let seconds = config.clock.cycles_to_seconds(stats.measured_cycles);
    // 1 mW·s = 1 mJ = 1e9 pJ.
    let static_pj = static_mw * seconds * 1e9;
    report.insert("static_power_mw", MetricValue::Gauge(static_mw));
    report.insert(
        "total_energy_pj",
        MetricValue::Gauge(stats.energy.total_pj() + static_pj),
    );
}

/// Installs a non-empty fault plan on a freshly built network, panicking
/// with a clear message when the network does not support fault injection —
/// silently running a faulted scenario on a fault-blind network would report
/// healthy numbers under a faulted scenario id.
pub(crate) fn install_faults(network: &mut dyn CycleNetwork, faults: &FaultPlan, arch: &str) {
    if faults.is_empty() {
        return;
    }
    assert!(
        network.install_fault_schedule(FaultController::new(faults)),
        "architecture '{arch}' does not support fault injection \
         (CycleNetwork::install_fault_schedule declined the schedule)"
    );
}

/// Adds the fault gauges to a faulted point's metric report:
/// `faults_applied` (total onset transitions executed) and `faults_active`
/// (faults still unrepaired when the run ended). Only attached when the
/// point ran with a non-empty plan, so healthy reports keep their exact
/// pre-fault shape.
pub(crate) fn attach_fault_gauges(report: &mut MetricReport, network: &dyn CycleNetwork) {
    use crate::metrics::MetricValue;
    let (applied, active) = network.fault_counts();
    report.insert("faults_applied", MetricValue::Gauge(applied as f64));
    report.insert("faults_active", MetricValue::Gauge(active as f64));
}

/// Builds and runs the network of one sweep point, collecting the standard
/// [`MetricsProbe`] instrumentation alongside the legacy snapshot.
pub(crate) fn run_point(
    architecture: &dyn ArchitectureBuilder,
    params: &ResolvedParams,
    spec: &SweepPointSpec,
    traffic: Box<dyn TrafficModel + Send>,
    faults: &FaultPlan,
) -> SweepPoint {
    let mut network = architecture.build(spec.config, params, traffic);
    install_faults(&mut *network, faults, architecture.name());
    let mut probe = MetricsProbe::for_config(&spec.config);
    let stats = run_to_completion_with(&mut *network, &mut [&mut probe]);
    let mut metrics = probe.report();
    attach_power_gauges(&mut metrics, &spec.config, &stats);
    if !faults.is_empty() {
        attach_fault_gauges(&mut metrics, &*network);
    }
    network.contribute_metrics(&mut metrics);
    SweepPoint {
        offered_load: spec.offered_load.value(),
        stats,
        metrics,
    }
}

/// The sweep driver behind the scenario engine in [`crate::scenario`]: one
/// simulation per ladder point, all points through the same architecture
/// builder.
pub(crate) fn run_sweep(
    architecture: &dyn ArchitectureBuilder,
    params: &ResolvedParams,
    make_traffic: &(dyn Fn(&SweepPointSpec) -> Box<dyn TrafficModel + Send> + Sync),
    config: &SimConfig,
    loads: &[f64],
    mode: SweepMode,
    faults: &FaultPlan,
) -> SaturationResult {
    let specs: Vec<SweepPointSpec> = loads
        .iter()
        .enumerate()
        .map(|(index, &load)| point_spec(config, index, load))
        .collect();
    let points: Vec<SweepPoint> = match mode {
        SweepMode::Sequential => specs
            .iter()
            .map(|spec| run_point(architecture, params, spec, make_traffic(spec), faults))
            .collect(),
        SweepMode::Parallel => pnoc_exec::run_batch(&specs, |_, spec| {
            run_point(architecture, params, spec, make_traffic(spec), faults)
        }),
    };
    SaturationResult { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;

    fn stats_with_bandwidth(load: f64, delivered_bits: u64) -> SimStats {
        let mut s = SimStats::new("arch", "traffic", load, Clock::paper_default());
        s.measured_cycles = 1000;
        s.delivered_bits = delivered_bits;
        s.delivered_packets = delivered_bits / 2048;
        s.energy.launch_pj = delivered_bits as f64 * 0.15;
        s
    }

    #[test]
    fn peak_is_the_maximum_accepted_bandwidth() {
        // Accepted bandwidth rises then falls (post-saturation congestion).
        let loads = [0.1, 0.2, 0.3, 0.4];
        let delivered = [1_000_000u64, 2_000_000, 1_800_000, 1_500_000];
        let mut i = 0;
        let result = sweep_offered_loads(&loads, |load| {
            let s = stats_with_bandwidth(load, delivered[i]);
            i += 1;
            s
        });
        assert_eq!(result.points.len(), 4);
        assert_eq!(result.peak_index(), Some(1));
        let peak = result.peak().unwrap();
        assert!((peak.offered_load - 0.2).abs() < 1e-12);
        assert!(result.peak_bandwidth_gbps() > 0.0);
        assert!(result.packet_energy_at_saturation_pj() > 0.0);
    }

    #[test]
    fn empty_sweep_is_harmless() {
        let result = sweep_offered_loads(&[], |_| unreachable!());
        assert_eq!(result.peak_index(), None);
        assert_eq!(result.peak_bandwidth_gbps(), 0.0);
        assert_eq!(result.packet_energy_at_saturation_pj(), 0.0);
    }

    #[test]
    fn ladder_scales_with_estimate() {
        let ladder = default_load_ladder(0.01);
        assert_eq!(ladder.len(), DEFAULT_LOAD_FRACTIONS.len());
        assert!((ladder[0] - 0.0025).abs() < 1e-12);
        assert!((ladder.last().unwrap() - 0.03).abs() < 1e-12);
        // Monotone increasing.
        assert!(ladder.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn per_core_bandwidth_divides_aggregate() {
        let result = sweep_offered_loads(&[0.1], |load| stats_with_bandwidth(load, 640_000));
        let agg = result.peak_bandwidth_gbps();
        let per_core = result.peak_core_bandwidth_gbps(64);
        assert!((agg / 64.0 - per_core).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ladder_rejects_zero_estimate() {
        let _ = default_load_ladder(0.0);
    }

    #[test]
    fn point_seeds_are_stable_and_distinct() {
        let base = 0x2014_50CC;
        // Stable: the scheme is part of the public contract.
        assert_eq!(derive_point_seed(base, 0), derive_point_seed(base, 0));
        // Distinct across indices and across base seeds.
        let seeds: Vec<u64> = (0..64).map(|i| derive_point_seed(base, i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(
            unique.len(),
            seeds.len(),
            "per-point seeds must not collide"
        );
        assert_ne!(derive_point_seed(base, 3), derive_point_seed(base + 1, 3));
    }

    use crate::config::BandwidthSet;
    use crate::registry::UniformFabricArchitecture;
    use pnoc_noc::ids::{ClusterId, CoreId};
    use pnoc_noc::packet::{BandwidthClass, PacketDescriptor};

    /// A deterministic traffic model whose stream depends on its seed, so the
    /// determinism test would notice a wrong per-point seed or a point run
    /// with another point's spec.
    struct SeededPeriodic {
        seed: u64,
        period: u64,
        load: OfferedLoad,
        shape: (u32, u32),
    }

    impl TrafficModel for SeededPeriodic {
        fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor> {
            let phase = (self.seed ^ src.0 as u64) % self.period;
            (cycle % self.period == phase).then(|| PacketDescriptor {
                src,
                dst: CoreId((src.0 + 4 + (self.seed as usize % 8)) % 64),
                num_flits: self.shape.0,
                flit_bits: self.shape.1,
                class: BandwidthClass::MediumHigh,
                created_cycle: cycle,
            })
        }

        fn offered_load(&self) -> OfferedLoad {
            self.load
        }

        fn set_offered_load(&mut self, load: OfferedLoad) {
            self.load = load;
        }

        fn demand_class(&self, _src: ClusterId, _dst: ClusterId) -> BandwidthClass {
            BandwidthClass::MediumHigh
        }

        fn volume_share(&self, _src: ClusterId, _dst: ClusterId) -> f64 {
            1.0 / 15.0
        }

        fn name(&self) -> String {
            "seeded-periodic".to_string()
        }
    }

    fn sweep_config() -> SimConfig {
        let mut config = SimConfig::fast(BandwidthSet::Set1);
        config.sim_cycles = 600;
        config.warmup_cycles = 150;
        config
    }

    fn make_seeded(spec: &SweepPointSpec) -> Box<dyn TrafficModel + Send> {
        let period = (1.0 / spec.offered_load.value().max(1e-6)).round().max(1.0) as u64;
        Box::new(SeededPeriodic {
            seed: spec.seed,
            period,
            load: spec.offered_load,
            shape: (
                spec.config.bandwidth_set.packet_flits(),
                spec.config.bandwidth_set.flit_bits(),
            ),
        })
    }

    #[test]
    fn parallel_sweep_is_bitwise_identical_to_sequential() {
        // Force real worker threads even on single-core CI hosts, so the
        // parallel code path (and not a degenerate 1-thread fallback) is
        // exercised. Uses the shim's atomic override rather than mutating
        // the environment, which would race with concurrent getenv calls.
        rayon::set_thread_count(4);
        let config = sweep_config();
        let loads = [1.0 / 400.0, 1.0 / 200.0, 1.0 / 100.0, 1.0 / 50.0];
        let architecture = UniformFabricArchitecture;
        let params = architecture.default_params();
        let healthy = FaultPlan::empty();
        let sequential = run_sweep(
            &architecture,
            &params,
            &make_seeded,
            &config,
            &loads,
            SweepMode::Sequential,
            &healthy,
        );
        let parallel = run_sweep(
            &architecture,
            &params,
            &make_seeded,
            &config,
            &loads,
            SweepMode::Parallel,
            &healthy,
        );
        assert!(sequential
            .points
            .iter()
            .any(|p| p.stats.delivered_packets > 0));
        assert_eq!(
            sequential, parallel,
            "parallel sweep must be bitwise-identical to the sequential sweep"
        );
    }

    #[test]
    fn points_carry_metric_reports() {
        let config = sweep_config();
        let loads = [1.0 / 200.0, 1.0 / 100.0];
        let architecture = UniformFabricArchitecture;
        let result = run_sweep(
            &architecture,
            &architecture.default_params(),
            &make_seeded,
            &config,
            &loads,
            SweepMode::Sequential,
            &FaultPlan::empty(),
        );
        for point in &result.points {
            assert_eq!(
                point.metrics.counter("delivered_packets"),
                Some(point.stats.delivered_packets),
                "probe counters must agree with the snapshot"
            );
            let latency = point.metrics.histogram("latency_cycles").expect("present");
            assert_eq!(latency.count(), point.stats.delivered_packets);
        }
    }
}
