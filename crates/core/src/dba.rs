//! The dynamic bandwidth allocation (DBA) controller.
//!
//! One controller instance models the distributed token-based protocol of
//! Section 3.2.1: the token circulates between the photonic routers on the
//! control waveguide; the router holding the token acquires or relinquishes
//! wavelengths so that its held pool approaches its target, then passes the
//! token on. Acquisition is incremental (a bounded number of wavelengths per
//! token visit) so that, when the chip-wide demand exceeds the wavelength
//! budget, the allocation converges to a demand-weighted max-min split
//! instead of a first-come-take-all outcome.
//!
//! The controller upholds three invariants, checked by the property tests in
//! `tests/`:
//!
//! 1. a wavelength is never allocated to two clusters at once,
//! 2. every cluster always holds at least its reserved minimum (no
//!    starvation: "This ensures that no cluster starves even if all other
//!    clusters consume all the data bandwidth"),
//! 3. no cluster ever holds more than the per-channel maximum of the
//!    bandwidth set.

use crate::tables::{CurrentTable, RequestTable};
use crate::token::{Token, TokenRing};
use pnoc_noc::ids::ClusterId;
use serde::{Deserialize, Serialize};

/// How a cluster's wavelength target is derived from the demand information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum AllocationPolicy {
    /// Wavelength pools sized in proportion to each cluster's traffic
    /// requirement (Section 3.1: "a variable number of wavelengths are
    /// allocated to the channel in proportion to the traffic requirement").
    /// This is the default.
    #[default]
    Proportional,
    /// Each cluster aims for the maximum entry of its request table
    /// (the literal acquisition goal stated in Section 3.2.1); used as an
    /// ablation of the allocation policy.
    PaperMax,
}

/// Per-cluster allocation state.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ClusterAllocation {
    request: RequestTable,
    current: CurrentTable,
    target: usize,
}

/// The chip-wide DBA state machine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DbaController {
    token: Token,
    ring: TokenRing,
    clusters: Vec<ClusterAllocation>,
    max_channel_wavelengths: usize,
    /// Maximum wavelengths acquired per token visit.
    acquisition_chunk: usize,
    /// Total token visits processed (diagnostic).
    token_visits: u64,
}

impl DbaController {
    /// Creates a controller.
    ///
    /// * `num_clusters` — photonic routers sharing the budget,
    /// * `dynamic_wavelengths` — wavelengths that can be dynamically
    ///   allocated (`N_TW` of eq. 1),
    /// * `reserved_per_cluster` — the guaranteed minimum per cluster,
    /// * `max_channel_wavelengths` — cap on one cluster's pool,
    /// * `token_hop_cycles` — cycles per token hop (eq. 2).
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or the cap is below the reserved minimum.
    #[must_use]
    pub fn new(
        num_clusters: usize,
        dynamic_wavelengths: usize,
        reserved_per_cluster: usize,
        max_channel_wavelengths: usize,
        token_hop_cycles: u64,
    ) -> Self {
        assert!(num_clusters > 0);
        assert!(
            reserved_per_cluster >= 1,
            "the minimum allocation is 1 wavelength"
        );
        assert!(max_channel_wavelengths >= reserved_per_cluster);
        let clusters = (0..num_clusters)
            .map(|_| ClusterAllocation {
                request: RequestTable::new(num_clusters),
                current: CurrentTable::new(num_clusters, reserved_per_cluster),
                target: reserved_per_cluster,
            })
            .collect();
        Self {
            token: Token::new(dynamic_wavelengths),
            ring: TokenRing::new(num_clusters, token_hop_cycles),
            clusters,
            max_channel_wavelengths,
            acquisition_chunk: 1,
            token_visits: 0,
        }
    }

    /// Number of clusters managed.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Installs the per-cluster wavelength targets (clamped to
    /// `[reserved, max_channel]`).
    pub fn set_targets(&mut self, targets: &[usize]) {
        assert_eq!(targets.len(), self.clusters.len());
        for (cluster, &target) in self.clusters.iter_mut().zip(targets) {
            cluster.target = target
                .max(cluster.current.reserved())
                .min(self.max_channel_wavelengths);
        }
    }

    /// Installs a cluster's request table (per-destination wavelength
    /// requests, the element-wise max of its cores' demand tables).
    pub fn set_request_table(&mut self, cluster: ClusterId, request: RequestTable) {
        self.clusters[cluster.0].request = request;
    }

    /// Current pool (reserved + acquired wavelengths) of a cluster.
    #[must_use]
    pub fn pool(&self, cluster: ClusterId) -> usize {
        self.clusters[cluster.0].current.total_held()
    }

    /// Target pool of a cluster.
    #[must_use]
    pub fn target(&self, cluster: ClusterId) -> usize {
        self.clusters[cluster.0].target
    }

    /// The cluster's current table (per-destination granted wavelengths).
    #[must_use]
    pub fn current_table(&self, cluster: ClusterId) -> &CurrentTable {
        &self.clusters[cluster.0].current
    }

    /// Total wavelengths currently held across all clusters (reserved +
    /// dynamic).
    #[must_use]
    pub fn total_held(&self) -> usize {
        self.clusters.iter().map(|c| c.current.total_held()).sum()
    }

    /// Free (unallocated) dynamic wavelengths.
    #[must_use]
    pub fn free_dynamic_wavelengths(&self) -> usize {
        self.token.free_count()
    }

    /// Token visits processed so far.
    #[must_use]
    pub fn token_visits(&self) -> u64 {
        self.token_visits
    }

    /// Processes a token visit at `cluster`: release excess wavelengths, or
    /// acquire up to `acquisition_chunk` missing ones.
    pub fn on_token(&mut self, cluster: ClusterId) {
        self.token_visits += 1;
        let state = &mut self.clusters[cluster.0];
        let held = state.current.total_held();
        if held > state.target {
            let released = state.current.release(held - state.target);
            self.token.release(&released);
        } else if held < state.target {
            let want = (state.target - held).min(self.acquisition_chunk);
            let acquired = self.token.allocate(want);
            state.current.acquire(&acquired);
        }
        state.current.refresh(&state.request);
    }

    /// Advances one cycle of token circulation; when the token arrives at a
    /// router, that router's allocation step runs. Returns the router that
    /// processed the token this cycle, if any.
    pub fn tick(&mut self) -> Option<ClusterId> {
        let arrived = self.ring.tick()?;
        self.on_token(arrived);
        Some(arrived)
    }

    /// The next cycle (`> now`) at which a token arrival — the only event
    /// that can change the allocation — fires, assuming `now` is the cycle
    /// of the most recent [`DbaController::tick`].
    #[must_use]
    pub fn next_token_cycle(&self, now: u64) -> u64 {
        now + self.ring.cycles_until_arrival()
    }

    /// Fast-forwards `span` cycles, equivalent to calling
    /// [`DbaController::tick`] `span` times: every token arrival inside the
    /// span is processed in order, so the allocation state (and
    /// [`DbaController::token_visits`]) ends up exactly as if the controller
    /// had been ticked cycle by cycle.
    pub fn skip_cycles(&mut self, mut span: u64) {
        while span > 0 {
            let until_arrival = self.ring.cycles_until_arrival();
            if span < until_arrival {
                self.ring.skip(span);
                return;
            }
            span -= until_arrival;
            self.ring.skip(until_arrival - 1);
            let arrived = self.ring.tick().expect("token arrival is due this cycle");
            self.on_token(arrived);
        }
    }

    /// Circulates the token for up to `max_rotations` full rotations or until
    /// the allocation stops changing, whichever comes first. Used when the
    /// task mapping changes (and at construction) so that measurements see
    /// the converged allocation.
    pub fn converge(&mut self, max_rotations: usize) {
        for _ in 0..max_rotations {
            let before: Vec<usize> = (0..self.num_clusters())
                .map(|c| self.pool(ClusterId(c)))
                .collect();
            for c in 0..self.num_clusters() {
                self.on_token(ClusterId(c));
            }
            let after: Vec<usize> = (0..self.num_clusters())
                .map(|c| self.pool(ClusterId(c)))
                .collect();
            if before == after {
                break;
            }
        }
    }

    /// Snapshot of every cluster's pool size.
    #[must_use]
    pub fn allocation_snapshot(&self) -> Vec<usize> {
        (0..self.num_clusters())
            .map(|c| self.pool(ClusterId(c)))
            .collect()
    }

    /// Verifies the allocation invariants; returns an error message when one
    /// is violated. Used by integration and property tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen = std::collections::HashSet::new();
        for (idx, cluster) in self.clusters.iter().enumerate() {
            if cluster.current.total_held() < cluster.current.reserved() {
                return Err(format!("cluster {idx} lost its reserved minimum"));
            }
            if cluster.current.total_held() > self.max_channel_wavelengths {
                return Err(format!(
                    "cluster {idx} holds {} wavelengths, above the cap {}",
                    cluster.current.total_held(),
                    self.max_channel_wavelengths
                ));
            }
            for &w in cluster.current.acquired() {
                if !self.token.is_allocated(w) {
                    return Err(format!(
                        "cluster {idx} holds wavelength {w} that the token says is free"
                    ));
                }
                if !seen.insert(w) {
                    return Err(format!("wavelength {w} allocated to two clusters"));
                }
            }
        }
        if seen.len() != self.token.allocated_count() {
            return Err(format!(
                "token says {} wavelengths are allocated but clusters hold {}",
                self.token.allocated_count(),
                seen.len()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> DbaController {
        // BW set 1 shape: 16 clusters, 48 dynamic wavelengths, cap 8.
        DbaController::new(16, 48, 1, 8, 1)
    }

    #[test]
    fn initial_state_has_only_reserved_wavelengths() {
        let c = controller();
        assert_eq!(c.total_held(), 16);
        assert_eq!(c.free_dynamic_wavelengths(), 48);
        assert!(c.check_invariants().is_ok());
    }

    #[test]
    fn uniform_targets_converge_to_uniform_allocation() {
        let mut c = controller();
        c.set_targets(&[4; 16]);
        c.converge(32);
        let alloc = c.allocation_snapshot();
        assert!(alloc.iter().all(|&p| p == 4), "allocation {alloc:?}");
        assert_eq!(c.total_held(), 64);
        assert_eq!(c.free_dynamic_wavelengths(), 0);
        assert!(c.check_invariants().is_ok());
    }

    #[test]
    fn heterogeneous_targets_allocate_more_to_demanding_clusters() {
        let mut c = controller();
        // Two clusters want the maximum, the rest want little.
        let mut targets = vec![2usize; 16];
        targets[3] = 8;
        targets[9] = 8;
        c.set_targets(&targets);
        c.converge(32);
        assert_eq!(c.pool(ClusterId(3)), 8);
        assert_eq!(c.pool(ClusterId(9)), 8);
        assert_eq!(c.pool(ClusterId(0)), 2);
        assert!(c.check_invariants().is_ok());
        // Total demand (2·8 + 14·2 = 44 dynamic above the reserve of 16... )
        // never exceeds the budget.
        assert!(c.total_held() <= 16 + 48);
    }

    #[test]
    fn oversubscription_converges_to_a_fair_split_without_starvation() {
        let mut c = controller();
        // Everyone wants the maximum: 16 × 8 = 128 > 64 available.
        c.set_targets(&[8; 16]);
        c.converge(64);
        let alloc = c.allocation_snapshot();
        assert!(c.check_invariants().is_ok());
        assert_eq!(c.free_dynamic_wavelengths(), 0, "budget fully used");
        let min = *alloc.iter().min().unwrap();
        let max = *alloc.iter().max().unwrap();
        assert!(min >= 1, "no cluster may starve");
        assert!(
            max - min <= 1,
            "incremental acquisition must give a near-even split, got {alloc:?}"
        );
    }

    #[test]
    fn reallocation_releases_wavelengths_when_targets_drop() {
        let mut c = controller();
        c.set_targets(&[8; 16]);
        c.converge(64);
        // A task-mapping change: cluster 0 no longer needs extra bandwidth.
        let mut targets = vec![8usize; 16];
        targets[0] = 1;
        c.set_targets(&targets);
        c.converge(64);
        assert_eq!(c.pool(ClusterId(0)), 1);
        assert!(c.check_invariants().is_ok());
        // The released wavelengths were picked up by the others.
        assert_eq!(c.free_dynamic_wavelengths(), 0);
    }

    #[test]
    fn targets_are_clamped_to_the_channel_cap_and_reserve() {
        let mut c = controller();
        c.set_targets(&[100; 16]);
        assert_eq!(c.target(ClusterId(0)), 8);
        c.set_targets(&[0; 16]);
        assert_eq!(c.target(ClusterId(0)), 1);
    }

    #[test]
    fn tick_advances_the_ring_and_processes_allocations() {
        let mut c = controller();
        c.set_targets(&[8; 16]);
        let mut visits = 0;
        for _ in 0..64 {
            if c.tick().is_some() {
                visits += 1;
            }
        }
        assert_eq!(visits, 64, "hop latency 1 means one visit per cycle");
        assert!(c.token_visits() >= 64);
        assert!(
            c.total_held() > 16,
            "some wavelengths must have been acquired"
        );
        assert!(c.check_invariants().is_ok());
    }

    #[test]
    fn skip_cycles_is_bitwise_identical_to_repeated_ticks() {
        // Hop latency 3 so spans start and end mid-hop, exercising the
        // partial skips on both sides of an arrival.
        for span in [1u64, 2, 3, 5, 48, 97] {
            let mut ticked = DbaController::new(16, 48, 1, 8, 3);
            ticked.set_targets(&[8; 16]);
            let mut skipped = ticked.clone();
            for _ in 0..span {
                let _ = ticked.tick();
            }
            skipped.skip_cycles(span);
            assert_eq!(ticked, skipped, "span {span}");
            assert!(skipped.check_invariants().is_ok());
        }
    }

    #[test]
    fn next_token_cycle_predicts_the_next_arrival() {
        let mut c = DbaController::new(4, 8, 1, 4, 3);
        let mut now = 0u64;
        let predicted = c.next_token_cycle(now);
        loop {
            now += 1;
            if c.tick().is_some() {
                break;
            }
        }
        assert_eq!(now, predicted);
    }
}
