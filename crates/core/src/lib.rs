//! # pnoc-dhetpnoc — the dynamic heterogeneous photonic NoC (d-HetPNoC)
//!
//! This crate implements the primary contribution of the reproduced thesis
//! (Chapter 3): a crossbar-based photonic NoC that allocates DWDM wavelengths
//! to cluster write-channels **on demand**, in proportion to the traffic
//! requirement of the applications mapped onto each cluster, instead of the
//! uniform static allocation of the Firefly baseline.
//!
//! The pieces follow the thesis structure:
//!
//! * [`tables`] — the demand / request / current tables held by every
//!   photonic router (Section 3.2.1, Figure 3-2),
//! * [`token`] — the token that circulates on a dedicated control waveguide
//!   and serialises wavelength acquisition (equations 1 and 2),
//! * [`dba`] — the dynamic bandwidth allocation controller that acquires and
//!   relinquishes wavelengths when a router holds the token,
//! * [`reservation`] — the reservation-flit timing including the piggybacked
//!   wavelength identifiers (Section 3.3.1 / 3.4.1.1),
//! * [`fabric`] — the [`pnoc_sim::system::PhotonicFabric`] implementation
//!   plugging DBA into the shared cycle-accurate cluster system,
//! * [`network`] — convenience constructors and the `"d-hetpnoc"` registry
//!   entry used by the scenario-based experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dba;
pub mod fabric;
pub mod network;
pub mod reservation;
pub mod tables;
pub mod token;

/// Convenient re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::dba::{AllocationPolicy, DbaController};
    pub use crate::fabric::DhetFabric;
    pub use crate::network::{
        build_dhetpnoc_system, register_dhetpnoc_architecture, DhetPnocArchitecture,
    };
    pub use crate::reservation::ReservationTiming;
    pub use crate::tables::{CurrentTable, DemandTable, RequestTable};
    pub use crate::token::{token_hop_cycles, token_size_bits, Token, TokenRing};
}

pub use prelude::*;
