//! The demand, request and current tables of the photonic router
//! (Section 3.2.1, Figure 3-2).
//!
//! Every photonic router holds six tables: one **demand table** per local
//! core (the number of wavelengths the core's current task needs toward every
//! other cluster), a **request table** whose entries are the element-wise
//! maximum of the demand tables, and a **current table** recording the
//! bandwidth actually allocated. The request table is *not* cleared after an
//! allocation round, so a router keeps trying to acquire additional
//! wavelengths on later token visits if its requests could not be satisfied.

use pnoc_noc::ids::ClusterId;
use serde::{Deserialize, Serialize};

/// Wavelength demand of one core toward every cluster.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DemandTable {
    entries: Vec<usize>,
}

impl DemandTable {
    /// Creates an all-zero demand table for `num_clusters` destinations.
    #[must_use]
    pub fn new(num_clusters: usize) -> Self {
        Self {
            entries: vec![0; num_clusters],
        }
    }

    /// Sets the demanded wavelengths toward `dst`.
    pub fn set(&mut self, dst: ClusterId, wavelengths: usize) {
        self.entries[dst.0] = wavelengths;
    }

    /// Demanded wavelengths toward `dst`.
    #[must_use]
    pub fn get(&self, dst: ClusterId) -> usize {
        self.entries[dst.0]
    }

    /// Number of destination clusters covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when every entry is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|&e| e == 0)
    }
}

/// The request table: element-wise maximum over the cluster's demand tables.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestTable {
    entries: Vec<usize>,
}

impl RequestTable {
    /// Creates an all-zero request table.
    #[must_use]
    pub fn new(num_clusters: usize) -> Self {
        Self {
            entries: vec![0; num_clusters],
        }
    }

    /// Rebuilds the table as the element-wise maximum of `demands`
    /// ("Each entry in the request table is the maximum of all the
    /// corresponding entries in the demand tables").
    pub fn rebuild(&mut self, demands: &[DemandTable]) {
        for dst in 0..self.entries.len() {
            self.entries[dst] = demands
                .iter()
                .map(|d| d.get(ClusterId(dst)))
                .max()
                .unwrap_or(0);
        }
    }

    /// Requested wavelengths toward `dst`.
    #[must_use]
    pub fn get(&self, dst: ClusterId) -> usize {
        self.entries[dst.0]
    }

    /// The highest requested wavelength count over all destinations — the
    /// number of wavelengths the cluster aims to acquire (Section 3.2.1).
    #[must_use]
    pub fn max_request(&self) -> usize {
        self.entries.iter().copied().max().unwrap_or(0)
    }

    /// Number of destination clusters covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when every entry is zero.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.iter().all(|&e| e == 0)
    }
}

/// The current table: wavelengths currently allocated toward each cluster,
/// plus the identifiers of the acquired wavelengths.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CurrentTable {
    entries: Vec<usize>,
    /// Identifiers (flat indices into the dynamic wavelength space) of the
    /// wavelengths this cluster has acquired.
    acquired: Vec<usize>,
    /// Wavelengths reserved for the cluster's minimum allocation.
    reserved: usize,
}

impl CurrentTable {
    /// Creates a table with `reserved` permanently-held wavelengths and no
    /// dynamic acquisitions.
    #[must_use]
    pub fn new(num_clusters: usize, reserved: usize) -> Self {
        Self {
            entries: vec![0; num_clusters],
            acquired: Vec::new(),
            reserved,
        }
    }

    /// Total wavelengths currently held (reserved + acquired).
    #[must_use]
    pub fn total_held(&self) -> usize {
        self.reserved + self.acquired.len()
    }

    /// The reserved (minimum) wavelengths.
    #[must_use]
    pub fn reserved(&self) -> usize {
        self.reserved
    }

    /// Identifiers of dynamically acquired wavelengths.
    #[must_use]
    pub fn acquired(&self) -> &[usize] {
        &self.acquired
    }

    /// Records newly acquired wavelength identifiers.
    pub fn acquire(&mut self, identifiers: &[usize]) {
        self.acquired.extend_from_slice(identifiers);
    }

    /// Releases up to `count` wavelengths, returning the identifiers released.
    pub fn release(&mut self, count: usize) -> Vec<usize> {
        let n = count.min(self.acquired.len());
        self.acquired.split_off(self.acquired.len() - n)
    }

    /// Updates the per-destination allocation given a request table: every
    /// destination is granted the minimum of its request and the total
    /// wavelengths held.
    pub fn refresh(&mut self, requests: &RequestTable) {
        let held = self.total_held();
        for dst in 0..self.entries.len() {
            self.entries[dst] = requests.get(ClusterId(dst)).min(held);
        }
    }

    /// Wavelengths available for a transmission toward `dst`.
    #[must_use]
    pub fn get(&self, dst: ClusterId) -> usize {
        self.entries[dst.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demand_table_set_get() {
        let mut d = DemandTable::new(16);
        assert!(d.is_empty());
        d.set(ClusterId(3), 8);
        d.set(ClusterId(7), 2);
        assert_eq!(d.get(ClusterId(3)), 8);
        assert_eq!(d.get(ClusterId(0)), 0);
        assert_eq!(d.len(), 16);
        assert!(!d.is_empty());
    }

    #[test]
    fn request_table_is_elementwise_max_of_demands() {
        let mut d1 = DemandTable::new(4);
        let mut d2 = DemandTable::new(4);
        d1.set(ClusterId(0), 2);
        d1.set(ClusterId(1), 8);
        d2.set(ClusterId(0), 4);
        d2.set(ClusterId(2), 1);
        let mut r = RequestTable::new(4);
        r.rebuild(&[d1, d2]);
        assert_eq!(r.get(ClusterId(0)), 4);
        assert_eq!(r.get(ClusterId(1)), 8);
        assert_eq!(r.get(ClusterId(2)), 1);
        assert_eq!(r.get(ClusterId(3)), 0);
        assert_eq!(r.max_request(), 8);
    }

    #[test]
    fn current_table_acquire_release_lifecycle() {
        let mut c = CurrentTable::new(4, 1);
        assert_eq!(c.total_held(), 1);
        c.acquire(&[10, 11, 12]);
        assert_eq!(c.total_held(), 4);
        assert_eq!(c.acquired(), &[10, 11, 12]);
        let released = c.release(2);
        assert_eq!(released, vec![11, 12]);
        assert_eq!(c.total_held(), 2);
        // Releasing more than held only releases what exists; the reserved
        // wavelength is never released.
        let released = c.release(10);
        assert_eq!(released, vec![10]);
        assert_eq!(c.total_held(), 1);
        assert_eq!(c.reserved(), 1);
    }

    #[test]
    fn current_table_refresh_caps_at_held_wavelengths() {
        let mut r = RequestTable::new(3);
        let mut d = DemandTable::new(3);
        d.set(ClusterId(0), 8);
        d.set(ClusterId(1), 2);
        r.rebuild(&[d]);
        let mut c = CurrentTable::new(3, 1);
        c.acquire(&[0, 1, 2]); // 4 held in total
        c.refresh(&r);
        assert_eq!(c.get(ClusterId(0)), 4, "request 8 capped at 4 held");
        assert_eq!(c.get(ClusterId(1)), 2, "request 2 fully granted");
        assert_eq!(c.get(ClusterId(2)), 0);
    }
}
