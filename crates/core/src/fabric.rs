//! The d-HetPNoC photonic fabric: demand-driven wavelength pools.
//!
//! The fabric translates the chip's demand information (a
//! [`pnoc_traffic::demand::DemandMatrix`] built from the running
//! applications) into per-cluster wavelength targets, lets the token-based
//! [`DbaController`] converge to an allocation, and answers the cycle-accurate
//! system's queries:
//!
//! * the *pool size* of a cluster is its currently held wavelengths,
//! * a transmission toward destination `d` uses the wavelengths demanded by
//!   the application class of the `(src, d)` pair (never more than the pool),
//! * the reservation broadcast costs 1–2 cycles depending on how many
//!   wavelength identifiers must be piggybacked (Section 3.4.1.1).

use crate::dba::{AllocationPolicy, DbaController};
use crate::reservation::ReservationTiming;
use crate::tables::{DemandTable, RequestTable};
use crate::token::{token_hop_cycles, token_size_bits};
use pnoc_faults::{FaultEvent, FaultKind, FaultSurface};
use pnoc_noc::ids::ClusterId;
use pnoc_photonics::dwdm::WavelengthGrid;
use pnoc_sim::config::SimConfig;
use pnoc_sim::system::PhotonicFabric;
use pnoc_traffic::demand::DemandMatrix;

/// The dynamic heterogeneous photonic fabric.
#[derive(Debug, Clone)]
pub struct DhetFabric {
    config: SimConfig,
    demand: DemandMatrix,
    controller: DbaController,
    reservation: ReservationTiming,
    policy: AllocationPolicy,
    max_channel_wavelengths: usize,
    faults: FaultSurface,
}

impl DhetFabric {
    /// The paper's maximum channel width for a bandwidth set (8 / 32 / 64,
    /// Table 3-3: the wavelength demand of the set's highest application
    /// class). This is what the `"d-hetpnoc"` registry entry's
    /// `max_wavelengths` parameter defaults to (via its `0 = auto` value).
    #[must_use]
    pub fn default_max_channel_wavelengths(config: &SimConfig) -> usize {
        ReservationTiming::default_max_identifiers(config.bandwidth_set)
    }

    /// Builds the fabric with the default (proportional) allocation policy
    /// and converges the initial allocation.
    #[must_use]
    pub fn new(config: &SimConfig, demand: DemandMatrix) -> Self {
        Self::with_policy(config, demand, AllocationPolicy::Proportional)
    }

    /// Builds the fabric with an explicit allocation policy at the paper's
    /// maximum channel width.
    #[must_use]
    pub fn with_policy(config: &SimConfig, demand: DemandMatrix, policy: AllocationPolicy) -> Self {
        Self::with_options(
            config,
            demand,
            policy,
            Self::default_max_channel_wavelengths(config),
        )
    }

    /// Builds the fabric with an explicit allocation policy and maximum
    /// per-cluster channel width (what the registry entry's `policy` /
    /// `max_wavelengths` parameters feed). The width caps both the DBA
    /// controller's acquisition and the reservation flit's worst-case
    /// identifier payload.
    ///
    /// # Panics
    ///
    /// Panics if `max_channel_wavelengths` is zero or the demand matrix does
    /// not match the topology.
    #[must_use]
    pub fn with_options(
        config: &SimConfig,
        demand: DemandMatrix,
        policy: AllocationPolicy,
        max_channel_wavelengths: usize,
    ) -> Self {
        let num_clusters = config.topology.num_clusters();
        assert_eq!(
            demand.num_clusters(),
            num_clusters,
            "demand matrix does not match the topology"
        );
        assert!(
            max_channel_wavelengths > 0,
            "a channel needs at least one wavelength"
        );
        let set = config.bandwidth_set;
        let grid =
            WavelengthGrid::for_total(set.total_wavelengths(), config.wavelengths_per_waveguide);
        let reserved_per_cluster = 1;
        let dynamic = token_size_bits(
            grid.num_waveguides(),
            config.wavelengths_per_waveguide,
            reserved_per_cluster * num_clusters,
        );
        let hop = token_hop_cycles(
            dynamic,
            config.wavelengths_per_waveguide,
            config.wavelength_rate_gbps,
            config.clock,
        );
        let mut controller = DbaController::new(
            num_clusters,
            dynamic,
            reserved_per_cluster,
            max_channel_wavelengths,
            hop,
        );
        // Install the request tables (element-wise max over the cores of a
        // cluster; in this traffic model every core of a cluster shares the
        // cluster's application mix, so one demand table per cluster suffices).
        for src in 0..num_clusters {
            let mut table = DemandTable::new(num_clusters);
            for dst in 0..num_clusters {
                if src == dst {
                    continue;
                }
                let class = demand.class(ClusterId(src), ClusterId(dst));
                table.set(ClusterId(dst), set.class_wavelengths(class));
            }
            let mut request = RequestTable::new(num_clusters);
            request.rebuild(std::slice::from_ref(&table));
            controller.set_request_table(ClusterId(src), request);
        }
        let targets = Self::compute_targets(config, &demand, policy, max_channel_wavelengths);
        controller.set_targets(&targets);
        // The initial task mapping is known before the simulation starts, so
        // the allocation is converged up front (the token keeps circulating
        // during the run to model the protocol's steady-state behaviour).
        controller.converge(4 * num_clusters);
        let reservation = ReservationTiming::with_max_identifiers(
            set,
            config.wavelengths_per_waveguide,
            config.wavelength_rate_gbps,
            config.clock,
            max_channel_wavelengths,
        );
        Self {
            config: *config,
            demand,
            controller,
            reservation,
            policy,
            max_channel_wavelengths,
            faults: FaultSurface::new(num_clusters),
        }
    }

    /// Re-derives the controller's request tables and targets from the
    /// current demand matrix *and* fault surface, then re-converges the
    /// allocation. Degraded wavelength classes shrink what each cluster
    /// requests for affected flows; laser dimming derates every pool target
    /// globally. Called on every degradation transition (apply and repair),
    /// so a repaired fabric converges back to exactly the healthy requests.
    fn reconverge_with_faults(&mut self) {
        let set = self.config.bandwidth_set;
        let num_clusters = self.config.topology.num_clusters();
        for src in 0..num_clusters {
            let mut table = DemandTable::new(num_clusters);
            for dst in 0..num_clusters {
                if src == dst {
                    continue;
                }
                let class = self.demand.class(ClusterId(src), ClusterId(dst));
                let healthy = set.class_wavelengths(class);
                let derated = (healthy / self.faults.class_divisor(class) as usize).max(1);
                table.set(ClusterId(dst), derated);
            }
            let mut request = RequestTable::new(num_clusters);
            request.rebuild(std::slice::from_ref(&table));
            self.controller.set_request_table(ClusterId(src), request);
        }
        let mut targets = Self::compute_targets(
            &self.config,
            &self.demand,
            self.policy,
            self.max_channel_wavelengths,
        );
        let laser = self.faults.laser_divisor() as usize;
        if laser > 1 {
            for target in &mut targets {
                *target = (*target / laser).max(1);
            }
        }
        self.controller.set_targets(&targets);
        self.controller.converge(4 * num_clusters);
    }

    /// Computes per-cluster wavelength targets from the demand matrix,
    /// capped at `cap` wavelengths per cluster.
    fn compute_targets(
        config: &SimConfig,
        demand: &DemandMatrix,
        policy: AllocationPolicy,
        cap: usize,
    ) -> Vec<usize> {
        let set = config.bandwidth_set;
        let num_clusters = config.topology.num_clusters();
        match policy {
            AllocationPolicy::PaperMax => (0..num_clusters)
                .map(|c| {
                    let max_mult = demand.max_class_multiplier(ClusterId(c));
                    (set.min_class_wavelengths() * max_mult).min(cap)
                })
                .collect(),
            AllocationPolicy::Proportional => {
                // Apportion the whole wavelength budget in proportion to each
                // cluster's traffic intensity (largest-remainder method), so
                // that the aggregate bandwidth budget is fully assigned — the
                // same budget Firefly spreads uniformly. The class mix then
                // decides how many of those wavelengths an individual
                // transfer switches on.
                let total = set.total_wavelengths();
                let weights: Vec<f64> = (0..num_clusters)
                    .map(|c| demand.intensity(ClusterId(c)).max(1e-6))
                    .collect();
                let weight_sum: f64 = weights.iter().sum();
                let quotas: Vec<f64> = weights
                    .iter()
                    .map(|w| w / weight_sum * total as f64)
                    .collect();
                let mut targets: Vec<usize> = quotas
                    .iter()
                    .map(|q| (q.floor() as usize).clamp(1, cap))
                    .collect();
                // Hand out the remaining wavelengths by largest fractional
                // remainder, respecting the per-channel cap.
                let mut remaining = total.saturating_sub(targets.iter().sum::<usize>());
                let mut order: Vec<usize> = (0..num_clusters).collect();
                order.sort_by(|&a, &b| {
                    let fa = quotas[a] - quotas[a].floor();
                    let fb = quotas[b] - quotas[b].floor();
                    fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
                });
                let mut idx = 0;
                while remaining > 0 && targets.iter().any(|&t| t < cap) {
                    let c = order[idx % num_clusters];
                    if targets[c] < cap {
                        targets[c] += 1;
                        remaining -= 1;
                    }
                    idx += 1;
                }
                targets
            }
        }
    }

    /// The allocation policy in use.
    #[must_use]
    pub fn policy(&self) -> AllocationPolicy {
        self.policy
    }

    /// The maximum wavelengths a single cluster channel may hold.
    #[must_use]
    pub fn max_channel_wavelengths(&self) -> usize {
        self.max_channel_wavelengths
    }

    /// Access to the DBA controller (allocation snapshots, invariants).
    #[must_use]
    pub fn controller(&self) -> &DbaController {
        &self.controller
    }

    /// The reservation timing used by this fabric.
    #[must_use]
    pub fn reservation_timing(&self) -> ReservationTiming {
        self.reservation
    }

    /// The demand matrix the fabric was configured with.
    #[must_use]
    pub fn demand(&self) -> &DemandMatrix {
        &self.demand
    }

    /// Re-runs target computation and allocation convergence for a new demand
    /// matrix (a task-mapping change: "this bandwidth allocation happens
    /// whenever there is a change in the task mapping on the chip").
    pub fn remap(&mut self, demand: DemandMatrix) {
        self.demand = demand;
        // Rebuilding requests and targets through the fault-aware path keeps
        // a remap under an active degradation honest; on a healthy surface it
        // reproduces the original tables and targets exactly.
        self.reconverge_with_faults();
    }
}

impl PhotonicFabric for DhetFabric {
    fn architecture_name(&self) -> &str {
        "d-hetpnoc"
    }

    fn pre_cycle(&mut self, _cycle: u64) {
        // Keep the token circulating; with a stable task mapping the
        // allocation is already converged, so visits are cheap no-ops, but
        // the protocol timing (and any remapped targets) is still modelled.
        let _ = self.controller.tick();
    }

    fn skip_cycles(&mut self, from: u64, to: u64) {
        // The controller processes every token arrival inside the span
        // through the same `on_token` path a per-cycle run would take.
        self.controller.skip_cycles(to - from);
    }

    fn pool_size(&self, src: ClusterId) -> usize {
        self.controller.pool(src)
    }

    fn wavelengths_for(&self, src: ClusterId, dst: ClusterId) -> usize {
        // A stuck/detuned MRR ring at either endpoint pins the transfer to a
        // single wavelength, regardless of pool or class.
        if self.faults.ring_stuck(src.0) || self.faults.ring_stuck(dst.0) {
            return 1;
        }
        let class = self.demand.class(src, dst);
        let demanded = self.config.bandwidth_set.class_wavelengths(class);
        // Unlike Firefly, only the degraded class's transfers shrink: the
        // DBA keeps steering healthy classes onto their full demand.
        let derated = (demanded / self.faults.class_divisor(class) as usize).max(1);
        derated.min(self.controller.pool(src)).max(1)
    }

    fn reservation_cycles(&self, _src: ClusterId, _dst: ClusterId) -> u64 {
        self.reservation.cycles
    }

    fn total_data_wavelengths(&self) -> usize {
        self.config.bandwidth_set.total_wavelengths()
    }

    fn allocation_snapshot(&self) -> Vec<usize> {
        self.controller.allocation_snapshot()
    }

    fn apply_fault(&mut self, event: &FaultEvent) {
        self.faults.apply(event);
        if matches!(
            event.kind,
            FaultKind::WavelengthDegrade | FaultKind::LaserDim
        ) {
            self.reconverge_with_faults();
        }
    }

    fn clear_fault(&mut self, event: &FaultEvent) {
        self.faults.clear(event);
        if matches!(
            event.kind,
            FaultKind::WavelengthDegrade | FaultKind::LaserDim
        ) {
            self.reconverge_with_faults();
        }
    }

    fn link_up(&self, cluster: ClusterId) -> bool {
        self.faults.link_up(cluster.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_noc::topology::ClusterTopology;
    use pnoc_noc::traffic_model::OfferedLoad;
    use pnoc_sim::config::BandwidthSet;
    use pnoc_traffic::pattern::{PacketShape, SkewLevel};
    use pnoc_traffic::skewed::SkewedTraffic;
    use pnoc_traffic::uniform::UniformRandomTraffic;

    fn config(set: BandwidthSet) -> SimConfig {
        SimConfig::fast(set)
    }

    fn uniform_demand(set: BandwidthSet) -> DemandMatrix {
        let cfg = config(set);
        let traffic = UniformRandomTraffic::new(
            ClusterTopology::paper_default(),
            PacketShape::new(set.packet_flits(), set.flit_bits()),
            OfferedLoad::new(0.01),
            cfg.seed,
        );
        DemandMatrix::from_model(&traffic, 16)
    }

    fn skewed_demand(set: BandwidthSet, skew: SkewLevel, seed: u64) -> DemandMatrix {
        let traffic = SkewedTraffic::new(
            ClusterTopology::paper_default(),
            PacketShape::new(set.packet_flits(), set.flit_bits()),
            skew,
            OfferedLoad::new(0.01),
            seed,
        );
        DemandMatrix::from_model(&traffic, 16)
    }

    #[test]
    fn uniform_demand_reproduces_the_firefly_allocation() {
        // "with uniform traffic ... both architectures provide the exact same
        // bandwidth between all pairs of clusters."
        for set in BandwidthSet::ALL {
            let cfg = config(set);
            let fabric = DhetFabric::new(&cfg, uniform_demand(set));
            let alloc = fabric.allocation_snapshot();
            let firefly_width = set.class_wavelengths(pnoc_noc::packet::BandwidthClass::MediumHigh);
            assert!(
                alloc.iter().all(|&p| p == firefly_width),
                "{set:?}: allocation {alloc:?} != uniform {firefly_width}"
            );
            assert_eq!(
                fabric.wavelengths_for(ClusterId(0), ClusterId(5)),
                firefly_width
            );
        }
    }

    #[test]
    fn skewed_demand_gives_heterogeneous_pools_within_budget() {
        let cfg = config(BandwidthSet::Set1);
        let fabric = DhetFabric::new(
            &cfg,
            skewed_demand(BandwidthSet::Set1, SkewLevel::Skewed3, 11),
        );
        let alloc = fabric.allocation_snapshot();
        let total: usize = alloc.iter().sum();
        assert!(total <= 64, "allocation {alloc:?} exceeds the budget");
        assert!(alloc.iter().all(|&p| (1..=8).contains(&p)), "{alloc:?}");
        let min = alloc.iter().min().unwrap();
        let max = alloc.iter().max().unwrap();
        assert!(
            max > min,
            "skewed demand must produce a heterogeneous allocation"
        );
        fabric.controller().check_invariants().unwrap();
    }

    #[test]
    fn pools_track_cluster_traffic_intensity() {
        let cfg = config(BandwidthSet::Set1);
        let demand = skewed_demand(BandwidthSet::Set1, SkewLevel::Skewed3, 5);
        let fabric = DhetFabric::new(&cfg, demand.clone());
        // The cluster with the highest traffic intensity must get at least
        // as many wavelengths as the one with the lowest.
        let busiest = (0..16)
            .max_by(|&a, &b| {
                demand
                    .intensity(ClusterId(a))
                    .partial_cmp(&demand.intensity(ClusterId(b)))
                    .unwrap()
            })
            .unwrap();
        let calmest = (0..16)
            .min_by(|&a, &b| {
                demand
                    .intensity(ClusterId(a))
                    .partial_cmp(&demand.intensity(ClusterId(b)))
                    .unwrap()
            })
            .unwrap();
        assert!(
            fabric.pool_size(ClusterId(busiest)) >= fabric.pool_size(ClusterId(calmest)),
            "busy cluster must not get less bandwidth than an idle one"
        );
    }

    #[test]
    fn transmissions_use_the_class_wavelengths_capped_by_the_pool() {
        let cfg = config(BandwidthSet::Set1);
        let demand = skewed_demand(BandwidthSet::Set1, SkewLevel::Skewed2, 9);
        let fabric = DhetFabric::new(&cfg, demand.clone());
        for s in 0..16 {
            for d in 0..16 {
                if s == d {
                    continue;
                }
                let (src, dst) = (ClusterId(s), ClusterId(d));
                let w = fabric.wavelengths_for(src, dst);
                assert!(w >= 1);
                assert!(w <= fabric.pool_size(src));
                assert!(w <= cfg.bandwidth_set.class_wavelengths(demand.class(src, dst)));
            }
        }
    }

    #[test]
    fn reservation_cycles_match_the_bandwidth_set() {
        let f1 = DhetFabric::new(
            &config(BandwidthSet::Set1),
            uniform_demand(BandwidthSet::Set1),
        );
        let f3 = DhetFabric::new(
            &config(BandwidthSet::Set3),
            uniform_demand(BandwidthSet::Set3),
        );
        assert_eq!(f1.reservation_cycles(ClusterId(0), ClusterId(1)), 1);
        assert_eq!(f3.reservation_cycles(ClusterId(0), ClusterId(1)), 2);
    }

    #[test]
    fn paper_max_policy_requests_the_maximum_class() {
        let cfg = config(BandwidthSet::Set1);
        let demand = skewed_demand(BandwidthSet::Set1, SkewLevel::Skewed1, 3);
        let fabric = DhetFabric::with_policy(&cfg, demand, AllocationPolicy::PaperMax);
        assert_eq!(fabric.policy(), AllocationPolicy::PaperMax);
        // With nearly every cluster having at least one high-class flow, the
        // targets are all 8 and the budget-constrained allocation stays fair.
        let alloc = fabric.allocation_snapshot();
        assert!(alloc.iter().sum::<usize>() <= 64);
        fabric.controller().check_invariants().unwrap();
    }

    #[test]
    fn explicit_max_channel_width_caps_the_allocation() {
        let cfg = config(BandwidthSet::Set1);
        let demand = skewed_demand(BandwidthSet::Set1, SkewLevel::Skewed3, 11);
        let capped =
            DhetFabric::with_options(&cfg, demand.clone(), AllocationPolicy::Proportional, 4);
        assert_eq!(capped.max_channel_wavelengths(), 4);
        assert!(
            capped.allocation_snapshot().iter().all(|&p| p <= 4),
            "{:?}",
            capped.allocation_snapshot()
        );
        // A narrower maximum channel shrinks the reservation payload too.
        let default = DhetFabric::new(&cfg, demand);
        assert_eq!(
            DhetFabric::default_max_channel_wavelengths(&cfg),
            8,
            "set 1 default"
        );
        assert!(
            capped.reservation_timing().identifier_payload_bits
                < default.reservation_timing().identifier_payload_bits
        );
        capped.controller().check_invariants().unwrap();
    }

    #[test]
    fn degradation_shrinks_only_the_damaged_class_and_repairs_restore_it() {
        let cfg = config(BandwidthSet::Set1);
        let demand = skewed_demand(BandwidthSet::Set1, SkewLevel::Skewed2, 9);
        let mut fabric = DhetFabric::new(&cfg, demand.clone());
        let healthy_alloc = fabric.allocation_snapshot();
        // Find one high-class and one low-class pair to compare.
        let mut high_pair = None;
        let mut low_pair = None;
        for s in 0..16 {
            for d in 0..16 {
                if s == d {
                    continue;
                }
                let (src, dst) = (ClusterId(s), ClusterId(d));
                match demand.class(src, dst) {
                    pnoc_noc::packet::BandwidthClass::High if high_pair.is_none() => {
                        high_pair = Some((src, dst));
                    }
                    pnoc_noc::packet::BandwidthClass::Low if low_pair.is_none() => {
                        low_pair = Some((src, dst));
                    }
                    _ => {}
                }
            }
        }
        let (hs, hd) = high_pair.expect("skewed demand has a high-class flow");
        let healthy_high = fabric.wavelengths_for(hs, hd);
        let event = pnoc_faults::FaultPlan::parse("wavelength-degrade@c10-20:class-high/2")
            .unwrap()
            .events()[0];
        fabric.apply_fault(&event);
        // The degraded class's transfers shrink; a healthy class is untouched
        // (the DBA keeps steering it onto its full demand).
        assert!(fabric.wavelengths_for(hs, hd) < healthy_high);
        if let Some((ls, ld)) = low_pair {
            let w = fabric.wavelengths_for(ls, ld);
            assert!(w >= 1);
            assert!(w <= cfg.bandwidth_set.class_wavelengths(demand.class(ls, ld)));
        }
        fabric.controller().check_invariants().unwrap();
        fabric.clear_fault(&event);
        assert_eq!(fabric.wavelengths_for(hs, hd), healthy_high);
        assert_eq!(fabric.allocation_snapshot(), healthy_alloc);

        // Laser dimming derates every pool target globally.
        let dim = pnoc_faults::FaultPlan::parse("laser-dim@c10-20:fabric/2")
            .unwrap()
            .events()[0];
        fabric.apply_fault(&dim);
        let dimmed = fabric.allocation_snapshot();
        assert!(dimmed.iter().sum::<usize>() < healthy_alloc.iter().sum::<usize>());
        fabric.clear_fault(&dim);
        assert_eq!(fabric.allocation_snapshot(), healthy_alloc);

        // A stuck ring pins transfers touching the switch to one wavelength.
        let stuck = pnoc_faults::FaultPlan::parse("ring-stuck@c10-20:sw2")
            .unwrap()
            .events()[0];
        fabric.apply_fault(&stuck);
        assert_eq!(fabric.wavelengths_for(ClusterId(2), ClusterId(9)), 1);
        assert_eq!(fabric.wavelengths_for(ClusterId(9), ClusterId(2)), 1);
        fabric.clear_fault(&stuck);

        // Link failure is reported through `link_up` for the system to gate.
        let fail = pnoc_faults::FaultPlan::parse("link-fail@c10-20:sw4")
            .unwrap()
            .events()[0];
        fabric.apply_fault(&fail);
        assert!(!fabric.link_up(ClusterId(4)));
        assert!(fabric.link_up(ClusterId(5)));
        fabric.clear_fault(&fail);
        assert!(fabric.link_up(ClusterId(4)));
    }

    #[test]
    fn remap_reconverges_the_allocation() {
        let cfg = config(BandwidthSet::Set1);
        let mut fabric = DhetFabric::new(
            &cfg,
            skewed_demand(BandwidthSet::Set1, SkewLevel::Skewed3, 1),
        );
        let before = fabric.allocation_snapshot();
        fabric.remap(uniform_demand(BandwidthSet::Set1));
        let after = fabric.allocation_snapshot();
        assert_ne!(before, after, "remapping must change a skewed allocation");
        assert!(after.iter().all(|&p| p == 4));
        assert_eq!(fabric.architecture_name(), "d-hetpnoc");
    }
}
