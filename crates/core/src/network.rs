//! Convenience constructors and the registry entry for d-HetPNoC
//! simulations.

use crate::dba::AllocationPolicy;
use crate::fabric::DhetFabric;
use pnoc_noc::traffic_model::TrafficModel;
use pnoc_sim::config::SimConfig;
use pnoc_sim::engine::CycleNetwork;
use pnoc_sim::params::{ParamSchema, ResolvedParams};
use pnoc_sim::registry::{register_architecture, ArchitectureBuilder};
use pnoc_sim::system::PhotonicSystem;
use pnoc_traffic::demand::DemandMatrix;
use std::sync::Arc;

/// Builds a ready-to-run d-HetPNoC system for the given traffic model. The
/// demand matrix (and therefore the wavelength allocation) is derived from
/// the traffic model itself, mirroring the paper's flow where the cores
/// advertise the demands of their mapped tasks.
pub fn build_dhetpnoc_system<T: TrafficModel>(
    config: SimConfig,
    traffic: T,
) -> PhotonicSystem<DhetFabric, T> {
    let demand = DemandMatrix::from_model(&traffic, config.topology.num_clusters());
    let fabric = DhetFabric::new(&config, demand);
    PhotonicSystem::new(config, fabric, traffic)
}

/// The d-HetPNoC [`ArchitectureBuilder`], registered under the name
/// `"d-hetpnoc"`.
///
/// Declared parameters:
///
/// * `max_wavelengths` (int, default 0 = auto) — maximum wavelengths a
///   single cluster channel may hold. `0` resolves to the paper's Table 3-3
///   value for the bandwidth set (8 / 32 / 64: the demand of the set's
///   highest application class). The cap also sizes the reservation flit's
///   worst-case identifier payload.
/// * `policy` (enum `proportional` | `paper-max`, default `proportional`) —
///   how per-cluster wavelength targets are derived from the demand matrix
///   (see [`AllocationPolicy`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct DhetPnocArchitecture;

impl ArchitectureBuilder for DhetPnocArchitecture {
    fn name(&self) -> &str {
        "d-hetpnoc"
    }

    fn label(&self) -> String {
        "d-HetPNoC".to_string()
    }

    fn param_schema(&self) -> ParamSchema {
        ParamSchema::new()
            .int(
                "max_wavelengths",
                0,
                0,
                512,
                "maximum wavelengths per cluster channel \
                 (0 = the bandwidth set's Table 3-3 value: 8/32/64)",
            )
            .choice(
                "policy",
                "proportional",
                &["proportional", "paper-max"],
                "how wavelength targets are derived from demand: apportion \
                 the whole budget proportionally, or aim for each cluster's \
                 maximum requested class",
            )
    }

    fn build(
        &self,
        config: SimConfig,
        params: &ResolvedParams,
        traffic: Box<dyn TrafficModel + Send>,
    ) -> Box<dyn CycleNetwork> {
        let policy = match params.choice("policy") {
            "paper-max" => AllocationPolicy::PaperMax,
            _ => AllocationPolicy::Proportional,
        };
        let max_wavelengths = match params.int("max_wavelengths") {
            0 => DhetFabric::default_max_channel_wavelengths(&config),
            n => n as usize,
        };
        let demand = DemandMatrix::from_model(&*traffic, config.topology.num_clusters());
        let fabric = DhetFabric::with_options(&config, demand, policy, max_wavelengths);
        Box::new(PhotonicSystem::new(config, fabric, traffic))
    }
}

/// Registers d-HetPNoC into the process-global architecture registry.
/// Idempotent; usually invoked through the umbrella crate's
/// `install_architectures`.
///
/// Once registered, sweeps run through `pnoc_sim::scenario` — e.g.
/// `ScenarioSpec::new("d-hetpnoc", "skewed-3").resolve()?.run()` — instead
/// of the per-architecture sweep wrapper this crate used to export.
pub fn register_dhetpnoc_architecture() {
    register_architecture(Arc::new(DhetPnocArchitecture));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_noc::topology::ClusterTopology;
    use pnoc_noc::traffic_model::OfferedLoad;
    use pnoc_sim::config::BandwidthSet;
    use pnoc_sim::engine::run_to_completion;
    use pnoc_sim::system::PhotonicFabric;
    use pnoc_traffic::pattern::{PacketShape, SkewLevel};
    use pnoc_traffic::skewed::SkewedTraffic;
    use pnoc_traffic::uniform::UniformRandomTraffic;

    fn shape(set: BandwidthSet) -> PacketShape {
        PacketShape::new(set.packet_flits(), set.flit_bits())
    }

    #[test]
    fn dhetpnoc_delivers_skewed_traffic() {
        let config = SimConfig::fast(BandwidthSet::Set1);
        let traffic = SkewedTraffic::new(
            ClusterTopology::paper_default(),
            shape(BandwidthSet::Set1),
            SkewLevel::Skewed3,
            OfferedLoad::new(config.estimated_saturation_load() * 0.5),
            config.seed,
        );
        let mut system = build_dhetpnoc_system(config, traffic);
        let stats = run_to_completion(&mut system);
        assert!(stats.delivered_packets > 0);
        assert_eq!(stats.architecture, "d-hetpnoc");
        system.fabric().controller().check_invariants().unwrap();
    }

    #[test]
    fn uniform_traffic_gives_firefly_equivalent_allocation() {
        let config = SimConfig::fast(BandwidthSet::Set2);
        let traffic = UniformRandomTraffic::new(
            ClusterTopology::paper_default(),
            shape(BandwidthSet::Set2),
            OfferedLoad::new(config.estimated_saturation_load() * 0.4),
            config.seed,
        );
        let system = build_dhetpnoc_system(config, traffic);
        let alloc = system.fabric().allocation_snapshot();
        let firefly_width =
            BandwidthSet::Set2.class_wavelengths(pnoc_noc::packet::BandwidthClass::MediumHigh);
        assert!(alloc.iter().all(|&p| p == firefly_width));
    }

    #[test]
    fn dhetpnoc_emits_probe_events_through_the_metrics_pipeline() {
        use pnoc_sim::engine::run_to_completion_with;
        use pnoc_sim::metrics::{MetricValue, MetricsProbe, Probe};
        let config = SimConfig::fast(BandwidthSet::Set1);
        let traffic = SkewedTraffic::new(
            ClusterTopology::paper_default(),
            shape(BandwidthSet::Set1),
            SkewLevel::Skewed3,
            OfferedLoad::new(config.estimated_saturation_load() * 0.6),
            config.seed,
        );
        let mut system = build_dhetpnoc_system(config, traffic);
        let mut probe = MetricsProbe::for_config(&config);
        let stats = run_to_completion_with(&mut system, &mut [&mut probe]);
        assert!(stats.delivered_packets > 0);
        let report = probe.report();
        assert_eq!(
            report.counter("delivered_photonic_bits"),
            Some(stats.delivered_photonic_bits),
            "probe event stream must agree with the legacy snapshot"
        );
        // Skewed traffic concentrates on a few cluster pairs; the streamed
        // per-pair photonic breakdown must partition the aggregate.
        let by_pair = report
            .family("photonic_bits_by_cluster_pair")
            .expect("present");
        let pair_sum: u64 = by_pair
            .values()
            .map(|v| match v {
                MetricValue::Counter(c) => *c,
                other => panic!("family member must be a counter, got {other:?}"),
            })
            .sum();
        assert_eq!(pair_sum, stats.delivered_photonic_bits);
        assert!(report
            .histogram("latency_cycles")
            .and_then(|h| h.percentile(99.0))
            .is_some());
    }

    #[test]
    fn registry_builder_matches_the_direct_constructor() {
        let mut config = SimConfig::fast(BandwidthSet::Set1);
        config.sim_cycles = 900;
        config.warmup_cycles = 200;
        let load = OfferedLoad::new(config.estimated_saturation_load() * 0.7);
        let make = || {
            SkewedTraffic::new(
                ClusterTopology::paper_default(),
                shape(BandwidthSet::Set1),
                SkewLevel::Skewed2,
                load,
                config.seed,
            )
        };
        let direct = run_to_completion(&mut build_dhetpnoc_system(config, make()));
        let mut via_registry = DhetPnocArchitecture.build(
            config,
            &DhetPnocArchitecture.default_params(),
            Box::new(make()),
        );
        let registry_stats = run_to_completion(&mut *via_registry);
        assert_eq!(
            direct, registry_stats,
            "registry path must not change results"
        );
    }

    #[test]
    fn policy_and_max_wavelengths_parameters_flow_from_specs() {
        register_dhetpnoc_architecture();
        let schema = DhetPnocArchitecture.param_schema();
        assert_eq!(schema.len(), 2);
        assert_eq!(
            schema.get("policy").unwrap().kind.bounds_label(),
            "proportional|paper-max"
        );

        // A capped channel width changes the sweep versus the default.
        let base = pnoc_sim::scenario::ScenarioSpec::new("d-hetpnoc", "skewed-3")
            .with_effort(pnoc_sim::scenario::Effort::Smoke);
        let capped = base.clone().with_arch_param("max_wavelengths", 2);
        assert_eq!(
            capped.id(),
            "d-hetpnoc{max_wavelengths=2}:skewed-3:set1:smoke"
        );
        let default_run = base.resolve().expect("registered").run();
        let capped_run = capped.resolve().expect("within bounds").run();
        assert_ne!(
            default_run.result, capped_run.result,
            "a 2-wavelength channel cap must change the sweep"
        );

        // An unknown policy label fails with the declared choices and the
        // nearest suggestion.
        let error =
            pnoc_sim::scenario::ScenarioSpec::new("d-hetpnoc{policy=proportionale}", "skewed-3")
                .resolve()
                .expect_err("unknown choice");
        let message = error.to_string();
        assert!(message.contains("[proportional, paper-max]"), "{message}");
        assert!(
            message.contains("did you mean 'proportional'?"),
            "{message}"
        );
    }

    #[test]
    fn scenario_sweep_produces_a_peak() {
        register_dhetpnoc_architecture();
        let outcome = pnoc_sim::scenario::ScenarioSpec::new("d-hetpnoc", "skewed-2")
            .with_effort(pnoc_sim::scenario::Effort::Smoke)
            .resolve()
            .expect("d-hetpnoc was just registered")
            .run();
        assert!(outcome.result.peak_bandwidth_gbps() > 0.0);
        assert!(outcome.result.packet_energy_at_saturation_pj() > 0.0);
    }
}
