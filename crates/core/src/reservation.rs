//! Reservation-flit timing with piggybacked wavelength identifiers
//! (Sections 3.3.1 and 3.4.1.1).
//!
//! d-HetPNoC reuses Firefly's reservation-assisted SWMR flow control but
//! extends the reservation flit with the identifiers of the wavelengths the
//! destination must listen on. Each identifier is the binary-encoded
//! wavelength number within a waveguide (6 bits for 64 wavelengths) plus,
//! when the fabric spans several data waveguides, the binary-encoded
//! waveguide number. The thesis works out two corner cases:
//!
//! * **BW set 1** (64 λ, one waveguide): at most 8 identifiers × 6 bits =
//!   48 bits, which crosses the 800 Gb/s reservation waveguide in 60 ps —
//!   within a single 400 ps cycle, so no extra overhead versus Firefly.
//! * **BW set 3** (512 λ, eight waveguides): at most 64 identifiers ×
//!   (6 + 3) bits = 576 bits → 720 ps → two cycles, a small extra overhead.

use pnoc_noc::packet::BandwidthClass;
use pnoc_photonics::dwdm::WavelengthGrid;
use pnoc_sim::clock::Clock;
use pnoc_sim::config::{BandwidthSet, SimConfig};
use serde::{Deserialize, Serialize};

/// Timing of the d-HetPNoC reservation broadcast.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReservationTiming {
    /// Bits per wavelength identifier (wavelength number + waveguide number).
    pub identifier_bits: u32,
    /// Maximum number of identifiers a reservation may carry (the maximum
    /// channel width of the bandwidth set).
    pub max_identifiers: usize,
    /// Worst-case payload of the identifiers, in bits.
    pub identifier_payload_bits: u32,
    /// Time to serialise the identifier payload on the reservation waveguide,
    /// in pico-seconds.
    pub payload_time_ps: f64,
    /// Reservation latency in cycles (including the base destination-id
    /// broadcast, which fits in the first cycle as in Firefly).
    pub cycles: u64,
}

impl ReservationTiming {
    /// The paper's maximum channel width for a bandwidth set (8 / 32 / 64:
    /// the wavelength demand of the set's highest application class), the
    /// default worst-case identifier count of a reservation.
    #[must_use]
    pub fn default_max_identifiers(set: BandwidthSet) -> usize {
        set.class_wavelengths(BandwidthClass::High)
    }

    /// Computes the reservation timing for a configuration at the paper's
    /// maximum channel width.
    #[must_use]
    pub fn for_config(config: &SimConfig) -> Self {
        Self::new(
            config.bandwidth_set,
            config.wavelengths_per_waveguide,
            config.wavelength_rate_gbps,
            config.clock,
        )
    }

    /// Computes the reservation timing from first principles at the paper's
    /// maximum channel width for the set.
    #[must_use]
    pub fn new(
        set: BandwidthSet,
        wavelengths_per_waveguide: usize,
        wavelength_rate_gbps: f64,
        clock: Clock,
    ) -> Self {
        Self::with_max_identifiers(
            set,
            wavelengths_per_waveguide,
            wavelength_rate_gbps,
            clock,
            Self::default_max_identifiers(set),
        )
    }

    /// Computes the reservation timing for an explicit maximum channel width
    /// (what the `"d-hetpnoc"` registry entry's `max_wavelengths` parameter
    /// feeds: a wider maximum channel piggybacks more identifiers and may
    /// need an extra reservation cycle).
    #[must_use]
    pub fn with_max_identifiers(
        set: BandwidthSet,
        wavelengths_per_waveguide: usize,
        wavelength_rate_gbps: f64,
        clock: Clock,
        max_identifiers: usize,
    ) -> Self {
        let grid = WavelengthGrid::for_total(set.total_wavelengths(), wavelengths_per_waveguide);
        let identifier_bits = grid.identifier_bits();
        let identifier_payload_bits = identifier_bits * max_identifiers as u32;
        let reservation_channel_gbps = wavelengths_per_waveguide as f64 * wavelength_rate_gbps;
        let payload_time_ps = f64::from(identifier_payload_bits) / reservation_channel_gbps * 1e3;
        let cycles =
            clock.cycles_for_transfer(u64::from(identifier_payload_bits), reservation_channel_gbps);
        Self {
            identifier_bits,
            max_identifiers,
            identifier_payload_bits,
            payload_time_ps,
            cycles,
        }
    }

    /// Extra cycles relative to Firefly's single-cycle reservation.
    #[must_use]
    pub fn extra_cycles_vs_firefly(&self) -> u64 {
        self.cycles.saturating_sub(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(set: BandwidthSet) -> ReservationTiming {
        ReservationTiming::new(set, 64, 12.5, Clock::paper_default())
    }

    #[test]
    fn bw_set_1_fits_in_one_cycle() {
        let t = timing(BandwidthSet::Set1);
        assert_eq!(
            t.identifier_bits, 6,
            "single waveguide: no waveguide number"
        );
        assert_eq!(t.max_identifiers, 8);
        assert_eq!(t.identifier_payload_bits, 48);
        assert!(
            (t.payload_time_ps - 60.0).abs() < 1e-9,
            "{}",
            t.payload_time_ps
        );
        assert_eq!(t.cycles, 1);
        assert_eq!(t.extra_cycles_vs_firefly(), 0);
    }

    #[test]
    fn bw_set_3_needs_two_cycles() {
        let t = timing(BandwidthSet::Set3);
        assert_eq!(
            t.identifier_bits, 9,
            "6-bit wavelength + 3-bit waveguide number"
        );
        assert_eq!(t.max_identifiers, 64);
        assert_eq!(t.identifier_payload_bits, 576);
        assert!(
            (t.payload_time_ps - 720.0).abs() < 1e-9,
            "{}",
            t.payload_time_ps
        );
        assert_eq!(t.cycles, 2);
        assert_eq!(t.extra_cycles_vs_firefly(), 1);
    }

    #[test]
    fn explicit_max_identifiers_scale_the_payload() {
        // Halving the maximum channel width of set 3 halves the payload and
        // brings the reservation back to a single cycle.
        let narrow = ReservationTiming::with_max_identifiers(
            BandwidthSet::Set3,
            64,
            12.5,
            Clock::paper_default(),
            32,
        );
        assert_eq!(narrow.max_identifiers, 32);
        assert_eq!(narrow.identifier_payload_bits, 288);
        assert_eq!(narrow.cycles, 1);
        // The default path equals the explicit default width.
        assert_eq!(
            ReservationTiming::default_max_identifiers(BandwidthSet::Set3),
            64
        );
        assert_eq!(
            timing(BandwidthSet::Set3),
            ReservationTiming::with_max_identifiers(
                BandwidthSet::Set3,
                64,
                12.5,
                Clock::paper_default(),
                64,
            )
        );
    }

    #[test]
    fn bw_set_2_still_fits_in_one_cycle() {
        let t = timing(BandwidthSet::Set2);
        // 256 λ → 4 waveguides → 6 + 2 = 8-bit identifiers, 32 of them.
        assert_eq!(t.identifier_bits, 8);
        assert_eq!(t.max_identifiers, 32);
        assert_eq!(t.identifier_payload_bits, 256);
        assert!(t.payload_time_ps <= 400.0);
        assert_eq!(t.cycles, 1);
    }
}
