//! The wavelength-allocation token (Section 3.2.1, equations 1 and 2).
//!
//! The right to acquire wavelengths is granted to one photonic router at a
//! time by a token circulating on a dedicated control waveguide with maximum
//! DWDM. The token carries one status bit per dynamically allocatable
//! wavelength:
//!
//! ```text
//! N_TW = N_W · λ_W − N_λR                      (eq. 1)
//! T_L  = N_TW / (λ_W · B)                      (eq. 2)
//! ```
//!
//! where `N_W` is the number of data waveguides, `λ_W` the wavelengths per
//! waveguide, `N_λR` the wavelengths reserved for per-cluster minimum
//! allocations, and `B` the per-wavelength line rate. `T_L` is the time for
//! the token to traverse the control waveguide between two photonic routers.

use pnoc_noc::ids::ClusterId;
use pnoc_sim::clock::Clock;
use serde::{Deserialize, Serialize};

/// Size of the token in bits (eq. 1).
///
/// # Panics
///
/// Panics if the reserved wavelengths exceed the total capacity.
#[must_use]
pub fn token_size_bits(
    num_waveguides: usize,
    wavelengths_per_waveguide: usize,
    reserved_wavelengths: usize,
) -> usize {
    let capacity = num_waveguides * wavelengths_per_waveguide;
    assert!(
        reserved_wavelengths <= capacity,
        "reserved wavelengths exceed the waveguide capacity"
    );
    capacity - reserved_wavelengths
}

/// Cycles for the token to traverse the control-waveguide link between two
/// photonic routers (eq. 2, rounded up to whole cycles, minimum 1).
#[must_use]
pub fn token_hop_cycles(
    token_bits: usize,
    wavelengths_per_waveguide: usize,
    wavelength_rate_gbps: f64,
    clock: Clock,
) -> u64 {
    let channel_gbps = wavelengths_per_waveguide as f64 * wavelength_rate_gbps;
    clock.cycles_for_transfer(token_bits as u64, channel_gbps)
}

/// The token: one status bit per dynamically allocatable wavelength
/// (`true` = currently allocated to some cluster).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    status: Vec<bool>,
}

impl Token {
    /// Creates a token with all wavelengths free.
    #[must_use]
    pub fn new(num_dynamic_wavelengths: usize) -> Self {
        Self {
            status: vec![false; num_dynamic_wavelengths],
        }
    }

    /// Size of the token in bits.
    #[must_use]
    pub fn size_bits(&self) -> usize {
        self.status.len()
    }

    /// Number of currently unallocated wavelengths.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.status.iter().filter(|&&b| !b).count()
    }

    /// Number of currently allocated wavelengths.
    #[must_use]
    pub fn allocated_count(&self) -> usize {
        self.status.len() - self.free_count()
    }

    /// Whether a specific wavelength is allocated.
    #[must_use]
    pub fn is_allocated(&self, index: usize) -> bool {
        self.status[index]
    }

    /// Allocates up to `count` free wavelengths and returns their indices.
    pub fn allocate(&mut self, count: usize) -> Vec<usize> {
        let mut taken = Vec::new();
        for (i, slot) in self.status.iter_mut().enumerate() {
            if taken.len() == count {
                break;
            }
            if !*slot {
                *slot = true;
                taken.push(i);
            }
        }
        taken
    }

    /// Releases previously allocated wavelengths.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or not currently allocated
    /// (double-free), which would indicate a protocol bug.
    pub fn release(&mut self, indices: &[usize]) {
        for &i in indices {
            assert!(
                self.status[i],
                "releasing wavelength {i} that is not allocated"
            );
            self.status[i] = false;
        }
    }
}

/// The circulation of the token between the photonic routers.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenRing {
    num_routers: usize,
    hop_cycles: u64,
    holder: usize,
    cycles_until_next_hop: u64,
}

impl TokenRing {
    /// Creates a ring starting at router 0; the token arrives at the next
    /// router after `hop_cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if there are no routers or the hop latency is zero.
    #[must_use]
    pub fn new(num_routers: usize, hop_cycles: u64) -> Self {
        assert!(num_routers > 0, "need at least one photonic router");
        assert!(
            hop_cycles >= 1,
            "token hop latency must be at least 1 cycle"
        );
        Self {
            num_routers,
            hop_cycles,
            holder: 0,
            cycles_until_next_hop: hop_cycles,
        }
    }

    /// The router currently holding the token.
    #[must_use]
    pub fn holder(&self) -> ClusterId {
        ClusterId(self.holder)
    }

    /// Cycles for one hop of the token.
    #[must_use]
    pub fn hop_cycles(&self) -> u64 {
        self.hop_cycles
    }

    /// Worst-case cycles for a router to repossess the token
    /// (`T_L · N_PR`, Section 3.2.1).
    #[must_use]
    pub fn worst_case_repossession_cycles(&self) -> u64 {
        self.hop_cycles * self.num_routers as u64
    }

    /// Advances one cycle. Returns `Some(cluster)` when the token arrives at
    /// a new router this cycle (that router may then allocate wavelengths).
    pub fn tick(&mut self) -> Option<ClusterId> {
        self.cycles_until_next_hop -= 1;
        if self.cycles_until_next_hop == 0 {
            self.holder = (self.holder + 1) % self.num_routers;
            self.cycles_until_next_hop = self.hop_cycles;
            Some(ClusterId(self.holder))
        } else {
            None
        }
    }

    /// Cycles until the token arrives at the next router (≥ 1): the number
    /// of [`TokenRing::tick`] calls after which the next arrival fires. This
    /// is the ring's next-deadline accessor for the event-driven engine.
    #[must_use]
    pub fn cycles_until_arrival(&self) -> u64 {
        self.cycles_until_next_hop
    }

    /// Fast-forwards `cycles` ticks **strictly within** the current hop:
    /// equivalent to calling [`TokenRing::tick`] `cycles` times, all of
    /// which would have returned `None`.
    ///
    /// # Panics
    ///
    /// Panics if the skip would reach or cross the next arrival
    /// (`cycles >= cycles_until_arrival()`); arrivals must go through
    /// [`TokenRing::tick`] so the holder rotation is observed.
    pub fn skip(&mut self, cycles: u64) {
        assert!(
            cycles < self.cycles_until_next_hop,
            "skip of {cycles} cycles would cross the token arrival due in {}",
            self.cycles_until_next_hop
        );
        self.cycles_until_next_hop -= cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_size_matches_equation_1() {
        // BW set 1: 1 waveguide × 64 λ − 16 reserved = 48 bits.
        assert_eq!(token_size_bits(1, 64, 16), 48);
        // BW set 2: 4 × 64 − 16 = 240 bits.
        assert_eq!(token_size_bits(4, 64, 16), 240);
        // BW set 3: 8 × 64 − 16 = 496 bits.
        assert_eq!(token_size_bits(8, 64, 16), 496);
    }

    #[test]
    fn token_hop_latency_matches_equation_2() {
        let clock = Clock::paper_default();
        // 48 bits over 800 Gb/s = 60 ps → 1 cycle.
        assert_eq!(token_hop_cycles(48, 64, 12.5, clock), 1);
        // 496 bits over 800 Gb/s = 620 ps → 2 cycles.
        assert_eq!(token_hop_cycles(496, 64, 12.5, clock), 2);
    }

    #[test]
    fn allocate_and_release_are_consistent() {
        let mut t = Token::new(8);
        assert_eq!(t.free_count(), 8);
        let a = t.allocate(3);
        assert_eq!(a.len(), 3);
        assert_eq!(t.allocated_count(), 3);
        let b = t.allocate(10);
        assert_eq!(b.len(), 5, "only the remaining wavelengths are granted");
        assert_eq!(t.free_count(), 0);
        t.release(&a);
        assert_eq!(t.free_count(), 3);
        assert!(a.iter().all(|&i| !t.is_allocated(i)));
    }

    #[test]
    #[should_panic(expected = "not allocated")]
    fn double_release_is_detected() {
        let mut t = Token::new(4);
        let a = t.allocate(1);
        t.release(&a);
        t.release(&a);
    }

    #[test]
    fn ring_visits_every_router_in_order() {
        let mut ring = TokenRing::new(4, 2);
        assert_eq!(ring.holder(), ClusterId(0));
        let mut arrivals = Vec::new();
        for _ in 0..16 {
            if let Some(c) = ring.tick() {
                arrivals.push(c.0);
            }
        }
        assert_eq!(arrivals, vec![1, 2, 3, 0, 1, 2, 3, 0]);
        assert_eq!(ring.worst_case_repossession_cycles(), 8);
    }

    #[test]
    fn skip_matches_repeated_idle_ticks() {
        let mut ticked = TokenRing::new(4, 5);
        let mut skipped = ticked.clone();
        assert_eq!(ticked.cycles_until_arrival(), 5);
        for _ in 0..4 {
            assert_eq!(ticked.tick(), None);
        }
        skipped.skip(4);
        assert_eq!(ticked, skipped);
        assert_eq!(skipped.cycles_until_arrival(), 1);
        assert_eq!(skipped.tick(), Some(ClusterId(1)));
    }

    #[test]
    #[should_panic(expected = "cross the token arrival")]
    fn skip_across_an_arrival_is_rejected() {
        let mut ring = TokenRing::new(4, 3);
        ring.skip(3);
    }
}
