#![doc = include_str!("store.md")]

use crate::codec;
use crate::json::Json;
use pnoc_sim::scenario::PointCache;
use pnoc_sim::sweep::SweepPoint;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Format tag of one cache entry document.
pub const ENTRY_FORMAT: &str = "d-hetpnoc-store/v1";

/// Format tag of the index document.
pub const INDEX_FORMAT: &str = "d-hetpnoc-store-index/v1";

/// The 16-hex-digit FNV-1a content address of a cache key. Entry files are
/// named by this hash; the full key text is stored *inside* each entry and
/// re-verified on load, so a (vanishingly unlikely) hash collision degrades
/// to a cache miss instead of serving the wrong point.
#[must_use]
pub fn content_hash(key: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Counters of one store's lifetime (since `open`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that decoded a valid entry.
    pub hits: u64,
    /// Lookups that found nothing usable (absent, corrupt, or key mismatch).
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
}

/// A content-addressed on-disk store of simulated sweep points.
///
/// Layout under the root directory:
///
/// * `entries/<hash>.json` — one entry per cache key, named by
///   [`content_hash`]; holds the format tag, the full key text, a
///   `sidecar` object (wall-clock timing, **excluded** from the cached
///   payload) and the losslessly encoded point,
/// * `index.json` — hash → key map for humans and CI artifacts, rewritten
///   atomically after every insert.
///
/// All writes are atomic (temp file in the same directory + rename), and all
/// reads are corruption-tolerant: a truncated, tampered or alien file is a
/// logged **miss**, never a crash. See `store.md` for the key scheme and the
/// invalidation story.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    entries_dir: PathBuf,
    index: Mutex<BTreeMap<String, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`. An existing
    /// index is loaded tolerantly: a corrupt index is treated as empty and
    /// rebuilt as entries are written (entry files remain the source of
    /// truth, so cached points stay reachable either way).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        let entries_dir = root.join("entries");
        fs::create_dir_all(&entries_dir)?;
        let index = load_index(&root.join("index.json"));
        Ok(Self {
            root,
            entries_dir,
            index: Mutex::new(index),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of entry files currently on disk.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        fs::read_dir(&self.entries_dir)
            .map(|dir| {
                dir.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|ext| ext == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// This store's lifetime hit/miss/write counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.entries_dir.join(format!("{}.json", content_hash(key)))
    }

    /// Loads the point stored under `key`, or `None` on a miss. Every
    /// failure mode — absent file, unreadable file, malformed JSON, wrong
    /// format tag, key mismatch (hash collision or tampering), codec
    /// rejection — is a miss; the non-trivial ones log a warning to stderr.
    ///
    /// A hit refreshes the entry's sidecar access time, which is what the
    /// LRU eviction of [`ResultStore::evict_to_budget`] orders by.
    #[must_use]
    pub fn load(&self, key: &str) -> Option<SweepPoint> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(error) => {
                if error.kind() != io::ErrorKind::NotFound {
                    eprintln!(
                        "[pnoc-store] warning: unreadable cache entry {}: {error}",
                        path.display()
                    );
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&text, key) {
            Ok(point) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                touch_entry(&path, &text);
                Some(point)
            }
            Err(reason) => {
                eprintln!(
                    "[pnoc-store] warning: ignoring cache entry {}: {reason}",
                    path.display()
                );
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `point` under `key`, atomically (temp file + rename), then
    /// rewrites the index. `wall_clock_seconds` goes into the entry's
    /// sidecar object only — the `point` payload stays byte-identical no
    /// matter how long the simulation took.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the entry is either fully written or absent;
    /// a failed write never leaves a partial entry under its final name).
    pub fn save(&self, key: &str, point: &SweepPoint, wall_clock_seconds: f64) -> io::Result<()> {
        let document = Json::obj(vec![
            ("format", Json::str(ENTRY_FORMAT)),
            ("key", Json::str(key)),
            (
                "sidecar",
                Json::obj(vec![
                    ("wall_clock_seconds", Json::Num(wall_clock_seconds)),
                    ("atime_epoch_seconds", Json::Num(now_epoch_seconds())),
                ]),
            ),
            ("point", codec::point_json(point)),
        ]);
        let path = self.entry_path(key);
        write_atomically(&path, &(document.render() + "\n"))?;
        {
            let mut index = self.index.lock().expect("store index lock");
            index.insert(content_hash(key), key.to_string());
            self.rewrite_index(&mut index)?;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Total size in bytes of all entry files currently on disk.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        fs::read_dir(&self.entries_dir)
            .map(|dir| {
                dir.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|ext| ext == "json"))
                    .filter_map(|e| e.metadata().ok())
                    .map(|meta| meta.len())
                    .sum()
            })
            .unwrap_or(0)
    }

    /// Evicts least-recently-used entries until the total entry bytes fit
    /// within `max_bytes`. Recency is the sidecar `atime_epoch_seconds`
    /// stamped at [`ResultStore::save`] and refreshed on every
    /// [`ResultStore::load`] hit; entries predating the sidecar access time
    /// (or unreadable ones) sort oldest. Ties break on the entry hash so the
    /// eviction order is deterministic. Runs under the advisory index lock
    /// and rewrites the index with the survivors.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures other than concurrent deletion of a
    /// candidate (a racing evictor did our work for us).
    pub fn evict_to_budget(&self, max_bytes: u64) -> io::Result<EvictionReport> {
        let mut index = self.index.lock().expect("store index lock");
        let _lock = IndexLock::acquire(&self.root);
        // Oldest-first candidate list: (sidecar atime, entry hash, bytes).
        let mut candidates = Vec::new();
        let mut bytes_before = 0u64;
        for entry in fs::read_dir(&self.entries_dir)?.filter_map(Result::ok) {
            let path = entry.path();
            if path.extension().is_none_or(|ext| ext != "json") {
                continue;
            }
            let Ok(meta) = entry.metadata() else { continue };
            bytes_before += meta.len();
            let atime = fs::read_to_string(&path)
                .ok()
                .and_then(|text| Json::parse(&text).ok())
                .map(|document| entry_atime(&document))
                .unwrap_or(0.0);
            let hash = path
                .file_stem()
                .and_then(|stem| stem.to_str())
                .unwrap_or_default()
                .to_string();
            candidates.push((atime, hash, meta.len(), path));
        }
        candidates.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        let scanned = candidates.len();
        let index_path = self.root.join("index.json");
        for (hash, key) in load_index(&index_path) {
            index.entry(hash).or_insert(key);
        }
        let mut bytes_after = bytes_before;
        let mut evicted = 0usize;
        for (_, hash, len, path) in &candidates {
            if bytes_after <= max_bytes {
                break;
            }
            match fs::remove_file(path) {
                Ok(()) => {}
                Err(error) if error.kind() == io::ErrorKind::NotFound => {}
                Err(error) => return Err(error),
            }
            index.remove(hash);
            bytes_after -= len;
            evicted += 1;
        }
        write_atomically(&index_path, &render_index(&index))?;
        Ok(EvictionReport {
            scanned,
            evicted,
            bytes_before,
            bytes_after,
        })
    }

    /// Compacts the store: rebuilds the index from the entry files that
    /// actually exist and verify (dangling index entries are dropped),
    /// removes leftover temp files from interrupted atomic writes, and
    /// removes alien or corrupt entry files whose stored key does not hash
    /// to their file name. Runs under the advisory index lock; the rewritten
    /// index survives a reopen because entry files are the source of truth.
    ///
    /// # Errors
    ///
    /// Propagates directory-scan and deletion failures.
    pub fn compact(&self) -> io::Result<CompactionReport> {
        let mut index = self.index.lock().expect("store index lock");
        let _lock = IndexLock::acquire(&self.root);
        let index_path = self.root.join("index.json");
        for (hash, key) in load_index(&index_path) {
            index.entry(hash).or_insert(key);
        }
        let mut fresh = BTreeMap::new();
        let mut removed_files = 0usize;
        for entry in fs::read_dir(&self.entries_dir)?.filter_map(Result::ok) {
            let path = entry.path();
            let name = path
                .file_name()
                .and_then(|name| name.to_str())
                .unwrap_or_default()
                .to_string();
            if !name.ends_with(".json") {
                // Leftover temp file from an interrupted atomic write.
                fs::remove_file(&path)?;
                removed_files += 1;
                continue;
            }
            let hash = name.trim_end_matches(".json").to_string();
            let key = fs::read_to_string(&path)
                .ok()
                .and_then(|text| Json::parse(&text).ok())
                .and_then(|document| {
                    document
                        .get("key")
                        .and_then(Json::as_str)
                        .map(str::to_string)
                })
                .filter(|key| content_hash(key) == hash);
            match key {
                Some(key) => {
                    fresh.insert(hash, key);
                }
                None => {
                    fs::remove_file(&path)?;
                    removed_files += 1;
                }
            }
        }
        let dropped_index_entries = index
            .keys()
            .filter(|hash| !fresh.contains_key(*hash))
            .count();
        *index = fresh;
        write_atomically(&index_path, &render_index(&index))?;
        Ok(CompactionReport {
            live_entries: index.len(),
            dropped_index_entries,
            removed_files,
        })
    }

    /// Rewrites `index.json` under the advisory file lock, after merging any
    /// entries another store instance (thread *or* process) published since
    /// we last read the file. The in-process mutex alone cannot see writers
    /// in other processes — or other `ResultStore` instances opened on the
    /// same `--cache-dir` by concurrent server requests — and a wholesale
    /// rewrite without the read-merge step would silently drop their
    /// entries.
    fn rewrite_index(&self, index: &mut BTreeMap<String, String>) -> io::Result<()> {
        let index_path = self.root.join("index.json");
        let lock = IndexLock::acquire(&self.root);
        for (hash, key) in load_index(&index_path) {
            index.entry(hash).or_insert(key);
        }
        let rendered = render_index(index);
        let outcome = write_atomically(&index_path, &rendered);
        drop(lock);
        outcome
    }
}

/// Outcome of one [`ResultStore::evict_to_budget`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EvictionReport {
    /// Entry files considered.
    pub scanned: usize,
    /// Entry files deleted (oldest sidecar access time first).
    pub evicted: usize,
    /// Total entry bytes before eviction.
    pub bytes_before: u64,
    /// Total entry bytes after eviction (≤ the budget unless the store was
    /// already empty of candidates).
    pub bytes_after: u64,
}

/// Outcome of one [`ResultStore::compact`] pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Verified entries the rebuilt index references.
    pub live_entries: usize,
    /// Index entries dropped because no verifying entry file backs them.
    pub dropped_index_entries: usize,
    /// Temp, alien or corrupt files removed from the entries directory.
    pub removed_files: usize,
}

/// Advisory cross-process lock on the store index: a `create_new` lock file
/// next to `index.json`. Acquisition retries briefly, takes over stale locks
/// (a holder that died mid-rewrite), and on timeout degrades to proceeding
/// *without* the lock with a warning — entry files are the source of truth,
/// so a racy index rewrite costs index completeness, never cached data.
struct IndexLock {
    path: PathBuf,
    held: bool,
}

/// How long acquisition retries before proceeding unlocked.
const INDEX_LOCK_TIMEOUT: Duration = Duration::from_secs(2);

/// Age beyond which a lock file is presumed abandoned and removed. Index
/// rewrites are milliseconds, so ten seconds is orders of magnitude past any
/// live holder.
const INDEX_LOCK_STALE: Duration = Duration::from_secs(10);

impl IndexLock {
    fn acquire(root: &Path) -> Self {
        let path = root.join("index.lock");
        let deadline = Instant::now() + INDEX_LOCK_TIMEOUT;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    let _ = write!(file, "{}", std::process::id());
                    return Self { path, held: true };
                }
                Err(error) if error.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&path)
                        .and_then(|meta| meta.modified())
                        .ok()
                        .and_then(|modified| modified.elapsed().ok())
                        .is_some_and(|age| age > INDEX_LOCK_STALE);
                    if stale {
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    if Instant::now() >= deadline {
                        eprintln!(
                            "[pnoc-store] warning: index lock {} busy for {:?}, \
                             rewriting index without it",
                            path.display(),
                            INDEX_LOCK_TIMEOUT
                        );
                        return Self { path, held: false };
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(error) => {
                    eprintln!(
                        "[pnoc-store] warning: cannot create index lock {}: {error}; \
                         rewriting index without it",
                        path.display()
                    );
                    return Self { path, held: false };
                }
            }
        }
    }
}

impl Drop for IndexLock {
    fn drop(&mut self) {
        if self.held {
            let _ = fs::remove_file(&self.path);
        }
    }
}

impl PointCache for ResultStore {
    fn lookup(&self, key: &str) -> Option<SweepPoint> {
        self.load(key)
    }

    fn store(&self, key: &str, point: &SweepPoint, wall_clock_seconds: f64) {
        // The cache is an accelerator: a failed write costs a future
        // re-simulation, so warn and carry on instead of failing the run.
        if let Err(error) = self.save(key, point, wall_clock_seconds) {
            eprintln!("[pnoc-store] warning: failed to store cache entry for '{key}': {error}");
        }
    }
}

/// Writes `text` to `path` atomically: a temp file next to the target (same
/// filesystem, so the rename cannot cross devices) is written fully, then
/// renamed over the target.
fn write_atomically(path: &Path, text: &str) -> io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|name| name.to_str())
        .unwrap_or("entry");
    let tmp = path.with_file_name(format!(".{file_name}.tmp{}", std::process::id()));
    fs::write(&tmp, text)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(error) => {
            let _ = fs::remove_file(&tmp);
            Err(error)
        }
    }
}

/// Current time as fractional seconds since the Unix epoch (`0.0` if the
/// clock reads before the epoch).
fn now_epoch_seconds() -> f64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|elapsed| elapsed.as_secs_f64())
        .unwrap_or(0.0)
}

/// Best-effort refresh of an entry's sidecar `atime_epoch_seconds` — the
/// LRU signal [`ResultStore::evict_to_budget`] orders by. Failures are
/// swallowed: a stale access time costs eviction accuracy, never
/// correctness.
fn touch_entry(path: &Path, text: &str) {
    let _ = rewrite_entry_atime(path, text, now_epoch_seconds());
}

fn rewrite_entry_atime(path: &Path, text: &str, atime: f64) -> io::Result<()> {
    let Ok(mut document) = Json::parse(text) else {
        return Ok(());
    };
    set_sidecar_atime(&mut document, atime);
    write_atomically(path, &(document.render() + "\n"))
}

fn set_sidecar_atime(document: &mut Json, atime: f64) {
    let Json::Obj(fields) = document else { return };
    let sidecar = match fields.iter_mut().position(|(k, _)| k == "sidecar") {
        Some(at) => &mut fields[at].1,
        None => {
            fields.push(("sidecar".to_string(), Json::Obj(Vec::new())));
            &mut fields.last_mut().expect("just pushed").1
        }
    };
    let Json::Obj(sidecar_fields) = sidecar else {
        return;
    };
    match sidecar_fields
        .iter_mut()
        .find(|(k, _)| k == "atime_epoch_seconds")
    {
        Some((_, value)) => *value = Json::Num(atime),
        None => sidecar_fields.push(("atime_epoch_seconds".to_string(), Json::Num(atime))),
    }
}

/// The sidecar access time of a parsed entry document; entries predating
/// the sidecar atime (or with a malformed one) read as `0.0`, i.e. oldest.
fn entry_atime(document: &Json) -> f64 {
    document
        .get("sidecar")
        .and_then(|sidecar| sidecar.get("atime_epoch_seconds"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

fn decode_entry(text: &str, expected_key: &str) -> Result<SweepPoint, String> {
    let document = Json::parse(text).map_err(|error| error.to_string())?;
    match document.get("format").and_then(Json::as_str) {
        Some(ENTRY_FORMAT) => {}
        Some(other) => return Err(format!("unsupported entry format '{other}'")),
        None => return Err("entry has no 'format' tag".to_string()),
    }
    match document.get("key").and_then(Json::as_str) {
        Some(stored) if stored == expected_key => {}
        Some(stored) => {
            return Err(format!(
                "key mismatch (hash collision or tampering): stored '{stored}', \
                 requested '{expected_key}'"
            ));
        }
        None => return Err("entry has no 'key' field".to_string()),
    }
    let point = document
        .get("point")
        .ok_or_else(|| "entry has no 'point' payload".to_string())?;
    codec::point_from_json(point).map_err(|error| error.to_string())
}

fn render_index(index: &BTreeMap<String, String>) -> String {
    Json::obj(vec![
        ("format", Json::str(INDEX_FORMAT)),
        ("entry_count", Json::Num(index.len() as f64)),
        (
            "entries",
            Json::Obj(
                index
                    .iter()
                    .map(|(hash, key)| (hash.clone(), Json::str(key)))
                    .collect(),
            ),
        ),
    ])
    .render()
        + "\n"
}

fn load_index(path: &Path) -> BTreeMap<String, String> {
    let Ok(text) = fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let Ok(document) = Json::parse(&text) else {
        eprintln!(
            "[pnoc-store] warning: corrupt index {}, rebuilding as entries are written",
            path.display()
        );
        return BTreeMap::new();
    };
    let mut index = BTreeMap::new();
    if let Some(Json::Obj(fields)) = document.get("entries") {
        for (hash, key) in fields {
            if let Some(key) = key.as_str() {
                index.insert(hash.clone(), key.to_string());
            }
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_sim::clock::Clock;
    use pnoc_sim::stats::SimStats;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("pnoc-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn sample_point() -> SweepPoint {
        let mut stats = SimStats::new("firefly", "tornado", 0.25, Clock::paper_default());
        stats.measured_cycles = 600;
        stats.record_packet_delivery(42);
        SweepPoint {
            offered_load: 0.25,
            stats,
            metrics: pnoc_sim::metrics::MetricReport::new(),
        }
    }

    #[test]
    fn save_load_round_trip_and_counters() {
        let root = temp_root("roundtrip");
        let store = ResultStore::open(&root).unwrap();
        let point = sample_point();
        assert!(store.load("key-a").is_none(), "empty store misses");
        store.save("key-a", &point, 1.5).unwrap();
        assert_eq!(store.load("key-a"), Some(point));
        assert_eq!(store.entry_count(), 1);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
        // The index survives a reopen.
        let reopened = ResultStore::open(&root).unwrap();
        assert_eq!(reopened.entry_count(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn wall_clock_lives_in_the_sidecar_not_the_payload() {
        let root = temp_root("sidecar");
        let store = ResultStore::open(&root).unwrap();
        let point = sample_point();
        store.save("key-a", &point, 1.25).unwrap();
        let fast = fs::read_to_string(store.entry_path("key-a")).unwrap();
        store.save("key-a", &point, 99.75).unwrap();
        let slow = fs::read_to_string(store.entry_path("key-a")).unwrap();
        assert_ne!(fast, slow, "sidecar timing differs");
        let payload = |text: &str| Json::parse(text).unwrap().get("point").unwrap().render();
        assert_eq!(
            payload(&fast),
            payload(&slow),
            "the cached point payload must not depend on timing"
        );
        let _ = fs::remove_dir_all(&root);
    }

    /// Independent store instances sharing one root (the shape of parallel
    /// server requests populating one `--cache-dir`, or of several
    /// processes) must not lose each other's index entries: every rewrite
    /// merges the on-disk index under the advisory file lock before
    /// publishing.
    #[test]
    fn concurrent_instances_do_not_lose_index_entries() {
        let root = temp_root("concurrent-index");
        fs::create_dir_all(&root).unwrap();
        let point = sample_point();
        let lanes = 8usize;
        let keys_per_lane = 6usize;
        std::thread::scope(|scope| {
            for lane in 0..lanes {
                let root = &root;
                let point = &point;
                scope.spawn(move || {
                    // A *separate* instance per thread: the in-process mutex
                    // offers no protection here, only the file lock does.
                    let store = ResultStore::open(root).unwrap();
                    for item in 0..keys_per_lane {
                        store
                            .save(&format!("lane-{lane}-key-{item}"), point, 0.01)
                            .unwrap();
                    }
                });
            }
        });
        let reopened = ResultStore::open(&root).unwrap();
        let index = reopened.index.lock().unwrap();
        assert_eq!(
            index.len(),
            lanes * keys_per_lane,
            "index lost entries written by concurrent instances"
        );
        for lane in 0..lanes {
            for item in 0..keys_per_lane {
                let key = format!("lane-{lane}-key-{item}");
                assert_eq!(index.get(&content_hash(&key)), Some(&key));
            }
        }
        drop(index);
        assert!(
            !root.join("index.lock").exists(),
            "lock file must be released after the last rewrite"
        );
        let _ = fs::remove_dir_all(&root);
    }

    /// Pins an entry's sidecar access time to a fixed value so eviction
    /// order is under test control instead of wall-clock resolution.
    fn pin_atime(store: &ResultStore, key: &str, atime: f64) {
        let path = store.entry_path(key);
        let text = fs::read_to_string(&path).unwrap();
        rewrite_entry_atime(&path, &text, atime).unwrap();
    }

    fn stored_atime(store: &ResultStore, key: &str) -> f64 {
        let text = fs::read_to_string(store.entry_path(key)).unwrap();
        entry_atime(&Json::parse(&text).unwrap())
    }

    #[test]
    fn load_refreshes_the_sidecar_access_time() {
        let root = temp_root("touch");
        let store = ResultStore::open(&root).unwrap();
        store.save("key-a", &sample_point(), 0.1).unwrap();
        pin_atime(&store, "key-a", 5.0);
        assert!(store.load("key-a").is_some());
        assert!(
            stored_atime(&store, "key-a") > 5.0,
            "a cache hit must refresh the LRU access time"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn eviction_is_lru_by_sidecar_atime_and_survives_reload() {
        let root = temp_root("evict");
        let store = ResultStore::open(&root).unwrap();
        let point = sample_point();
        for key in ["key-a", "key-b", "key-c"] {
            store.save(key, &point, 0.1).unwrap();
        }
        // key-b is the coldest, key-c the hottest.
        pin_atime(&store, "key-a", 20.0);
        pin_atime(&store, "key-b", 10.0);
        pin_atime(&store, "key-c", 30.0);
        let entry_bytes = fs::metadata(store.entry_path("key-c")).unwrap().len();
        // Budget for exactly one entry: the two coldest must go.
        let report = store.evict_to_budget(entry_bytes).unwrap();
        assert_eq!((report.scanned, report.evicted), (3, 2));
        assert!(report.bytes_after <= entry_bytes);
        assert!(report.bytes_before > report.bytes_after);
        assert!(store.load("key-b").is_none(), "coldest entry evicted");
        assert!(store.load("key-a").is_none(), "second-coldest evicted");
        assert_eq!(store.load("key-c"), Some(point), "hottest entry survives");
        assert_eq!(store.entry_count(), 1);
        // The shrunken index survives a reopen and only lists the survivor.
        let reopened = ResultStore::open(&root).unwrap();
        let index = reopened.index.lock().unwrap();
        assert_eq!(index.len(), 1);
        assert_eq!(
            index.get(&content_hash("key-c")).map(String::as_str),
            Some("key-c")
        );
        drop(index);
        assert!(!root.join("index.lock").exists(), "lock released");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn eviction_to_zero_budget_clears_the_store() {
        let root = temp_root("evict-all");
        let store = ResultStore::open(&root).unwrap();
        store.save("key-a", &sample_point(), 0.1).unwrap();
        let report = store.evict_to_budget(0).unwrap();
        assert_eq!(report.evicted, 1);
        assert_eq!(report.bytes_after, 0);
        assert_eq!(store.entry_count(), 0);
        assert_eq!(store.total_bytes(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn compaction_prunes_dangling_index_entries_and_stray_files() {
        let root = temp_root("compact");
        let store = ResultStore::open(&root).unwrap();
        let point = sample_point();
        store.save("key-a", &point, 0.1).unwrap();
        store.save("key-b", &point, 0.1).unwrap();
        // Delete one entry behind the store's back: its index entry dangles.
        fs::remove_file(store.entry_path("key-b")).unwrap();
        // And litter the entries dir with an interrupted-write temp file.
        fs::write(root.join("entries").join(".stray.json.tmp123"), "junk").unwrap();
        let report = store.compact().unwrap();
        assert_eq!(report.live_entries, 1);
        assert_eq!(report.dropped_index_entries, 1);
        assert_eq!(report.removed_files, 1);
        // The compacted index shrinks and survives a reopen.
        let reopened = ResultStore::open(&root).unwrap();
        let index = reopened.index.lock().unwrap();
        assert_eq!(index.len(), 1);
        assert_eq!(
            index.get(&content_hash("key-a")).map(String::as_str),
            Some("key-a")
        );
        drop(index);
        assert_eq!(reopened.load("key-a"), Some(point));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn compaction_removes_corrupt_and_alien_entry_files() {
        let root = temp_root("compact-corrupt");
        let store = ResultStore::open(&root).unwrap();
        store.save("key-a", &sample_point(), 0.1).unwrap();
        // A corrupt entry and a forged one (key text hashes elsewhere).
        fs::write(store.entry_path("key-corrupt"), "{ not json").unwrap();
        let forged = fs::read_to_string(store.entry_path("key-a")).unwrap();
        fs::write(store.entry_path("key-forged"), forged).unwrap();
        let report = store.compact().unwrap();
        assert_eq!(report.live_entries, 1);
        assert_eq!(report.removed_files, 2);
        assert_eq!(store.entry_count(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let root = temp_root("mismatch");
        let store = ResultStore::open(&root).unwrap();
        let point = sample_point();
        store.save("key-a", &point, 0.1).unwrap();
        // Forge a colliding file: copy key-a's entry under key-b's hash.
        let text = fs::read_to_string(store.entry_path("key-a")).unwrap();
        fs::write(store.entry_path("key-b"), text).unwrap();
        assert!(store.load("key-b").is_none(), "stored key text must match");
        let _ = fs::remove_dir_all(&root);
    }
}
