#![doc = include_str!("store.md")]

use crate::codec;
use crate::json::Json;
use pnoc_sim::scenario::PointCache;
use pnoc_sim::sweep::SweepPoint;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Format tag of one cache entry document.
pub const ENTRY_FORMAT: &str = "d-hetpnoc-store/v1";

/// Format tag of the index document.
pub const INDEX_FORMAT: &str = "d-hetpnoc-store-index/v1";

/// The 16-hex-digit FNV-1a content address of a cache key. Entry files are
/// named by this hash; the full key text is stored *inside* each entry and
/// re-verified on load, so a (vanishingly unlikely) hash collision degrades
/// to a cache miss instead of serving the wrong point.
#[must_use]
pub fn content_hash(key: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in key.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Counters of one store's lifetime (since `open`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups that decoded a valid entry.
    pub hits: u64,
    /// Lookups that found nothing usable (absent, corrupt, or key mismatch).
    pub misses: u64,
    /// Entries written.
    pub writes: u64,
}

/// A content-addressed on-disk store of simulated sweep points.
///
/// Layout under the root directory:
///
/// * `entries/<hash>.json` — one entry per cache key, named by
///   [`content_hash`]; holds the format tag, the full key text, a
///   `sidecar` object (wall-clock timing, **excluded** from the cached
///   payload) and the losslessly encoded point,
/// * `index.json` — hash → key map for humans and CI artifacts, rewritten
///   atomically after every insert.
///
/// All writes are atomic (temp file in the same directory + rename), and all
/// reads are corruption-tolerant: a truncated, tampered or alien file is a
/// logged **miss**, never a crash. See `store.md` for the key scheme and the
/// invalidation story.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    entries_dir: PathBuf,
    index: Mutex<BTreeMap<String, String>>,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`. An existing
    /// index is loaded tolerantly: a corrupt index is treated as empty and
    /// rebuilt as entries are written (entry files remain the source of
    /// truth, so cached points stay reachable either way).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<Self> {
        let root = root.into();
        let entries_dir = root.join("entries");
        fs::create_dir_all(&entries_dir)?;
        let index = load_index(&root.join("index.json"));
        Ok(Self {
            root,
            entries_dir,
            index: Mutex::new(index),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of entry files currently on disk.
    #[must_use]
    pub fn entry_count(&self) -> usize {
        fs::read_dir(&self.entries_dir)
            .map(|dir| {
                dir.filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|ext| ext == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// This store's lifetime hit/miss/write counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    fn entry_path(&self, key: &str) -> PathBuf {
        self.entries_dir.join(format!("{}.json", content_hash(key)))
    }

    /// Loads the point stored under `key`, or `None` on a miss. Every
    /// failure mode — absent file, unreadable file, malformed JSON, wrong
    /// format tag, key mismatch (hash collision or tampering), codec
    /// rejection — is a miss; the non-trivial ones log a warning to stderr.
    #[must_use]
    pub fn load(&self, key: &str) -> Option<SweepPoint> {
        let path = self.entry_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(error) => {
                if error.kind() != io::ErrorKind::NotFound {
                    eprintln!(
                        "[pnoc-store] warning: unreadable cache entry {}: {error}",
                        path.display()
                    );
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match decode_entry(&text, key) {
            Ok(point) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(point)
            }
            Err(reason) => {
                eprintln!(
                    "[pnoc-store] warning: ignoring cache entry {}: {reason}",
                    path.display()
                );
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `point` under `key`, atomically (temp file + rename), then
    /// rewrites the index. `wall_clock_seconds` goes into the entry's
    /// sidecar object only — the `point` payload stays byte-identical no
    /// matter how long the simulation took.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (the entry is either fully written or absent;
    /// a failed write never leaves a partial entry under its final name).
    pub fn save(&self, key: &str, point: &SweepPoint, wall_clock_seconds: f64) -> io::Result<()> {
        let document = Json::obj(vec![
            ("format", Json::str(ENTRY_FORMAT)),
            ("key", Json::str(key)),
            (
                "sidecar",
                Json::obj(vec![("wall_clock_seconds", Json::Num(wall_clock_seconds))]),
            ),
            ("point", codec::point_json(point)),
        ]);
        let path = self.entry_path(key);
        write_atomically(&path, &(document.render() + "\n"))?;
        {
            let mut index = self.index.lock().expect("store index lock");
            index.insert(content_hash(key), key.to_string());
            self.rewrite_index(&mut index)?;
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Rewrites `index.json` under the advisory file lock, after merging any
    /// entries another store instance (thread *or* process) published since
    /// we last read the file. The in-process mutex alone cannot see writers
    /// in other processes — or other `ResultStore` instances opened on the
    /// same `--cache-dir` by concurrent server requests — and a wholesale
    /// rewrite without the read-merge step would silently drop their
    /// entries.
    fn rewrite_index(&self, index: &mut BTreeMap<String, String>) -> io::Result<()> {
        let index_path = self.root.join("index.json");
        let lock = IndexLock::acquire(&self.root);
        for (hash, key) in load_index(&index_path) {
            index.entry(hash).or_insert(key);
        }
        let rendered = render_index(index);
        let outcome = write_atomically(&index_path, &rendered);
        drop(lock);
        outcome
    }
}

/// Advisory cross-process lock on the store index: a `create_new` lock file
/// next to `index.json`. Acquisition retries briefly, takes over stale locks
/// (a holder that died mid-rewrite), and on timeout degrades to proceeding
/// *without* the lock with a warning — entry files are the source of truth,
/// so a racy index rewrite costs index completeness, never cached data.
struct IndexLock {
    path: PathBuf,
    held: bool,
}

/// How long acquisition retries before proceeding unlocked.
const INDEX_LOCK_TIMEOUT: Duration = Duration::from_secs(2);

/// Age beyond which a lock file is presumed abandoned and removed. Index
/// rewrites are milliseconds, so ten seconds is orders of magnitude past any
/// live holder.
const INDEX_LOCK_STALE: Duration = Duration::from_secs(10);

impl IndexLock {
    fn acquire(root: &Path) -> Self {
        let path = root.join("index.lock");
        let deadline = Instant::now() + INDEX_LOCK_TIMEOUT;
        loop {
            match fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut file) => {
                    let _ = write!(file, "{}", std::process::id());
                    return Self { path, held: true };
                }
                Err(error) if error.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&path)
                        .and_then(|meta| meta.modified())
                        .ok()
                        .and_then(|modified| modified.elapsed().ok())
                        .is_some_and(|age| age > INDEX_LOCK_STALE);
                    if stale {
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    if Instant::now() >= deadline {
                        eprintln!(
                            "[pnoc-store] warning: index lock {} busy for {:?}, \
                             rewriting index without it",
                            path.display(),
                            INDEX_LOCK_TIMEOUT
                        );
                        return Self { path, held: false };
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(error) => {
                    eprintln!(
                        "[pnoc-store] warning: cannot create index lock {}: {error}; \
                         rewriting index without it",
                        path.display()
                    );
                    return Self { path, held: false };
                }
            }
        }
    }
}

impl Drop for IndexLock {
    fn drop(&mut self) {
        if self.held {
            let _ = fs::remove_file(&self.path);
        }
    }
}

impl PointCache for ResultStore {
    fn lookup(&self, key: &str) -> Option<SweepPoint> {
        self.load(key)
    }

    fn store(&self, key: &str, point: &SweepPoint, wall_clock_seconds: f64) {
        // The cache is an accelerator: a failed write costs a future
        // re-simulation, so warn and carry on instead of failing the run.
        if let Err(error) = self.save(key, point, wall_clock_seconds) {
            eprintln!("[pnoc-store] warning: failed to store cache entry for '{key}': {error}");
        }
    }
}

/// Writes `text` to `path` atomically: a temp file next to the target (same
/// filesystem, so the rename cannot cross devices) is written fully, then
/// renamed over the target.
fn write_atomically(path: &Path, text: &str) -> io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|name| name.to_str())
        .unwrap_or("entry");
    let tmp = path.with_file_name(format!(".{file_name}.tmp{}", std::process::id()));
    fs::write(&tmp, text)?;
    match fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(error) => {
            let _ = fs::remove_file(&tmp);
            Err(error)
        }
    }
}

fn decode_entry(text: &str, expected_key: &str) -> Result<SweepPoint, String> {
    let document = Json::parse(text).map_err(|error| error.to_string())?;
    match document.get("format").and_then(Json::as_str) {
        Some(ENTRY_FORMAT) => {}
        Some(other) => return Err(format!("unsupported entry format '{other}'")),
        None => return Err("entry has no 'format' tag".to_string()),
    }
    match document.get("key").and_then(Json::as_str) {
        Some(stored) if stored == expected_key => {}
        Some(stored) => {
            return Err(format!(
                "key mismatch (hash collision or tampering): stored '{stored}', \
                 requested '{expected_key}'"
            ));
        }
        None => return Err("entry has no 'key' field".to_string()),
    }
    let point = document
        .get("point")
        .ok_or_else(|| "entry has no 'point' payload".to_string())?;
    codec::point_from_json(point).map_err(|error| error.to_string())
}

fn render_index(index: &BTreeMap<String, String>) -> String {
    Json::obj(vec![
        ("format", Json::str(INDEX_FORMAT)),
        ("entry_count", Json::Num(index.len() as f64)),
        (
            "entries",
            Json::Obj(
                index
                    .iter()
                    .map(|(hash, key)| (hash.clone(), Json::str(key)))
                    .collect(),
            ),
        ),
    ])
    .render()
        + "\n"
}

fn load_index(path: &Path) -> BTreeMap<String, String> {
    let Ok(text) = fs::read_to_string(path) else {
        return BTreeMap::new();
    };
    let Ok(document) = Json::parse(&text) else {
        eprintln!(
            "[pnoc-store] warning: corrupt index {}, rebuilding as entries are written",
            path.display()
        );
        return BTreeMap::new();
    };
    let mut index = BTreeMap::new();
    if let Some(Json::Obj(fields)) = document.get("entries") {
        for (hash, key) in fields {
            if let Some(key) = key.as_str() {
                index.insert(hash.clone(), key.to_string());
            }
        }
    }
    index
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_sim::clock::Clock;
    use pnoc_sim::stats::SimStats;

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("pnoc-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    fn sample_point() -> SweepPoint {
        let mut stats = SimStats::new("firefly", "tornado", 0.25, Clock::paper_default());
        stats.measured_cycles = 600;
        stats.record_packet_delivery(42);
        SweepPoint {
            offered_load: 0.25,
            stats,
            metrics: pnoc_sim::metrics::MetricReport::new(),
        }
    }

    #[test]
    fn save_load_round_trip_and_counters() {
        let root = temp_root("roundtrip");
        let store = ResultStore::open(&root).unwrap();
        let point = sample_point();
        assert!(store.load("key-a").is_none(), "empty store misses");
        store.save("key-a", &point, 1.5).unwrap();
        assert_eq!(store.load("key-a"), Some(point));
        assert_eq!(store.entry_count(), 1);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
        // The index survives a reopen.
        let reopened = ResultStore::open(&root).unwrap();
        assert_eq!(reopened.entry_count(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn wall_clock_lives_in_the_sidecar_not_the_payload() {
        let root = temp_root("sidecar");
        let store = ResultStore::open(&root).unwrap();
        let point = sample_point();
        store.save("key-a", &point, 1.25).unwrap();
        let fast = fs::read_to_string(store.entry_path("key-a")).unwrap();
        store.save("key-a", &point, 99.75).unwrap();
        let slow = fs::read_to_string(store.entry_path("key-a")).unwrap();
        assert_ne!(fast, slow, "sidecar timing differs");
        let payload = |text: &str| Json::parse(text).unwrap().get("point").unwrap().render();
        assert_eq!(
            payload(&fast),
            payload(&slow),
            "the cached point payload must not depend on timing"
        );
        let _ = fs::remove_dir_all(&root);
    }

    /// Independent store instances sharing one root (the shape of parallel
    /// server requests populating one `--cache-dir`, or of several
    /// processes) must not lose each other's index entries: every rewrite
    /// merges the on-disk index under the advisory file lock before
    /// publishing.
    #[test]
    fn concurrent_instances_do_not_lose_index_entries() {
        let root = temp_root("concurrent-index");
        fs::create_dir_all(&root).unwrap();
        let point = sample_point();
        let lanes = 8usize;
        let keys_per_lane = 6usize;
        std::thread::scope(|scope| {
            for lane in 0..lanes {
                let root = &root;
                let point = &point;
                scope.spawn(move || {
                    // A *separate* instance per thread: the in-process mutex
                    // offers no protection here, only the file lock does.
                    let store = ResultStore::open(root).unwrap();
                    for item in 0..keys_per_lane {
                        store
                            .save(&format!("lane-{lane}-key-{item}"), point, 0.01)
                            .unwrap();
                    }
                });
            }
        });
        let reopened = ResultStore::open(&root).unwrap();
        let index = reopened.index.lock().unwrap();
        assert_eq!(
            index.len(),
            lanes * keys_per_lane,
            "index lost entries written by concurrent instances"
        );
        for lane in 0..lanes {
            for item in 0..keys_per_lane {
                let key = format!("lane-{lane}-key-{item}");
                assert_eq!(index.get(&content_hash(&key)), Some(&key));
            }
        }
        drop(index);
        assert!(
            !root.join("index.lock").exists(),
            "lock file must be released after the last rewrite"
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let root = temp_root("mismatch");
        let store = ResultStore::open(&root).unwrap();
        let point = sample_point();
        store.save("key-a", &point, 0.1).unwrap();
        // Forge a colliding file: copy key-a's entry under key-b's hash.
        let text = fs::read_to_string(store.entry_path("key-a")).unwrap();
        fs::write(store.entry_path("key-b"), text).unwrap();
        assert!(store.load("key-b").is_none(), "stored key text must match");
        let _ = fs::remove_dir_all(&root);
    }
}
