//! # pnoc-store — content-addressed scenario result store
//!
//! The persistence layer of the simulation-as-a-service stack:
//!
//! * [`json`] — the workspace's hand-rolled JSON value model (render +
//!   parse), moved here from `pnoc-bench` so the store does not depend on
//!   the experiment harness (the harness re-exports it),
//! * [`codec`] — a **lossless** codec between
//!   [`SweepPoint`](pnoc_sim::sweep::SweepPoint) (stats + metric report)
//!   and JSON: `f64`s as exact bit patterns, `u64`s as decimal strings,
//!   sketches re-validated on decode,
//! * [`store`] — [`ResultStore`]: content-addressed on-disk cache entries
//!   with atomic writes, an index file, corruption-tolerant loads and a
//!   wall-clock sidecar kept out of the cached payload. Implements
//!   [`pnoc_sim::scenario::PointCache`], so
//!   `pnoc_sim::scenario::run_specs_with_cache` (and therefore
//!   `repro --cache-dir` and `repro --serve`) can serve previously
//!   simulated points without simulating.
//!
//! See `src/store.md` for the key scheme, the engine-fingerprint
//! invalidation story and the atomicity guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod json;
pub mod store;

pub use codec::{point_from_json, point_json, CodecError};
pub use json::{Json, JsonParseError};
pub use store::{content_hash, CompactionReport, EvictionReport, ResultStore, StoreStats};
