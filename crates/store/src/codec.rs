//! Lossless codec between [`SweepPoint`] and the JSON value model.
//!
//! The cache must hand back **bit-identical** simulation output, so this
//! codec never routes a number through decimal floating-point text:
//!
//! * `f64` fields serialize as the 16-hex-digit IEEE-754 bit pattern
//!   (`f64::to_bits`), decoded with `f64::from_bits` — exact for every
//!   value including negative zero and subnormals,
//! * `u64` fields serialize as decimal **strings** (a JSON number is an
//!   `f64` in the value model and cannot represent every `u64`),
//! * quantile sketches serialize as their `(bucket index, count)` wire
//!   pairs plus the tracked aggregates, rebuilt through
//!   [`QuantileSketch::from_parts`] which re-validates the structural
//!   invariants.
//!
//! Decoding is total over arbitrary input: every malformed shape returns a
//! [`CodecError`] naming the offending field, so the store can treat any
//! tampered or truncated entry as a cache miss.

use crate::json::Json;
use pnoc_photonics::energy::EnergyBreakdown;
use pnoc_sim::clock::Clock;
use pnoc_sim::metrics::{MetricReport, MetricValue, QuantileSketch};
use pnoc_sim::stats::{LatencyHistogram, SimStats};
use pnoc_sim::sweep::SweepPoint;
use std::collections::BTreeMap;

/// Why a serialized point failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// What was wrong, naming the offending field.
    pub message: String,
}

impl CodecError {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for CodecError {}

fn bits(value: f64) -> Json {
    Json::Str(format!("{:016x}", value.to_bits()))
}

fn uint(value: u64) -> Json {
    Json::Str(value.to_string())
}

fn field<'a>(value: &'a Json, key: &str) -> Result<&'a Json, CodecError> {
    value
        .get(key)
        .ok_or_else(|| CodecError::new(format!("missing field '{key}'")))
}

fn bits_field(value: &Json, key: &str) -> Result<f64, CodecError> {
    let text = field(value, key)?
        .as_str()
        .ok_or_else(|| CodecError::new(format!("field '{key}' must be a hex-bits string")))?;
    if text.len() != 16 {
        return Err(CodecError::new(format!(
            "field '{key}' must be 16 hex digits, got '{text}'"
        )));
    }
    u64::from_str_radix(text, 16)
        .map(f64::from_bits)
        .map_err(|_| CodecError::new(format!("field '{key}' is not hex: '{text}'")))
}

fn uint_field(value: &Json, key: &str) -> Result<u64, CodecError> {
    parse_uint(field(value, key)?, key)
}

fn parse_uint(value: &Json, context: &str) -> Result<u64, CodecError> {
    let text = value
        .as_str()
        .ok_or_else(|| CodecError::new(format!("'{context}' must be a decimal u64 string")))?;
    text.parse::<u64>()
        .map_err(|_| CodecError::new(format!("'{context}' is not a u64: '{text}'")))
}

fn string_field(value: &Json, key: &str) -> Result<String, CodecError> {
    field(value, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| CodecError::new(format!("field '{key}' must be a string")))
}

/// Serializes one sweep point (stats + metric report) losslessly.
#[must_use]
pub fn point_json(point: &SweepPoint) -> Json {
    Json::obj(vec![
        ("offered_load", bits(point.offered_load)),
        ("stats", stats_json(&point.stats)),
        ("metrics", report_json(&point.metrics)),
    ])
}

/// Decodes a sweep point serialized by [`point_json`].
///
/// # Errors
///
/// Returns a [`CodecError`] naming the offending field on any malformed
/// shape; the decode is total over arbitrary JSON input.
pub fn point_from_json(value: &Json) -> Result<SweepPoint, CodecError> {
    Ok(SweepPoint {
        offered_load: bits_field(value, "offered_load")?,
        stats: stats_from_json(field(value, "stats")?)?,
        metrics: report_from_json(field(value, "metrics")?)?,
    })
}

fn stats_json(stats: &SimStats) -> Json {
    Json::obj(vec![
        ("architecture", Json::str(&stats.architecture)),
        ("traffic", Json::str(&stats.traffic)),
        ("offered_load", bits(stats.offered_load)),
        ("measured_cycles", uint(stats.measured_cycles)),
        ("generated_packets", uint(stats.generated_packets)),
        ("dropped_packets", uint(stats.dropped_packets)),
        ("injected_packets", uint(stats.injected_packets)),
        ("injected_flits", uint(stats.injected_flits)),
        ("delivered_packets", uint(stats.delivered_packets)),
        ("delivered_flits", uint(stats.delivered_flits)),
        ("delivered_bits", uint(stats.delivered_bits)),
        (
            "delivered_photonic_bits",
            uint(stats.delivered_photonic_bits),
        ),
        ("total_packet_latency", uint(stats.total_packet_latency)),
        ("max_packet_latency", uint(stats.max_packet_latency)),
        (
            "latency_histogram",
            latency_histogram_json(&stats.latency_histogram),
        ),
        ("energy", energy_json(&stats.energy)),
        (
            "clock",
            Json::obj(vec![("frequency_ghz", bits(stats.clock.frequency_ghz))]),
        ),
    ])
}

fn stats_from_json(value: &Json) -> Result<SimStats, CodecError> {
    let clock = field(value, "clock")?;
    Ok(SimStats {
        architecture: string_field(value, "architecture")?,
        traffic: string_field(value, "traffic")?,
        offered_load: bits_field(value, "offered_load")?,
        measured_cycles: uint_field(value, "measured_cycles")?,
        generated_packets: uint_field(value, "generated_packets")?,
        dropped_packets: uint_field(value, "dropped_packets")?,
        injected_packets: uint_field(value, "injected_packets")?,
        injected_flits: uint_field(value, "injected_flits")?,
        delivered_packets: uint_field(value, "delivered_packets")?,
        delivered_flits: uint_field(value, "delivered_flits")?,
        delivered_bits: uint_field(value, "delivered_bits")?,
        delivered_photonic_bits: uint_field(value, "delivered_photonic_bits")?,
        total_packet_latency: uint_field(value, "total_packet_latency")?,
        max_packet_latency: uint_field(value, "max_packet_latency")?,
        latency_histogram: latency_histogram_from_json(field(value, "latency_histogram")?)?,
        energy: energy_from_json(field(value, "energy")?)?,
        clock: Clock::new(bits_field(clock, "frequency_ghz")?),
    })
}

fn latency_histogram_json(histogram: &LatencyHistogram) -> Json {
    Json::obj(vec![
        ("bin_width", uint(histogram.bin_width())),
        (
            "bins",
            Json::Arr(histogram.bins().iter().map(|&bin| uint(bin)).collect()),
        ),
        ("overflow", uint(histogram.overflow())),
    ])
}

fn latency_histogram_from_json(value: &Json) -> Result<LatencyHistogram, CodecError> {
    let bins = field(value, "bins")?
        .as_array()
        .ok_or_else(|| CodecError::new("field 'bins' must be an array"))?
        .iter()
        .map(|bin| parse_uint(bin, "bins entry"))
        .collect::<Result<Vec<u64>, CodecError>>()?;
    LatencyHistogram::from_parts(
        uint_field(value, "bin_width")?,
        bins,
        uint_field(value, "overflow")?,
    )
    .ok_or_else(|| CodecError::new("latency histogram parts violate constructor invariants"))
}

fn energy_json(energy: &EnergyBreakdown) -> Json {
    Json::obj(vec![
        ("launch_pj", bits(energy.launch_pj)),
        ("modulation_pj", bits(energy.modulation_pj)),
        ("tuning_pj", bits(energy.tuning_pj)),
        ("buffer_pj", bits(energy.buffer_pj)),
        ("electrical_pj", bits(energy.electrical_pj)),
    ])
}

fn energy_from_json(value: &Json) -> Result<EnergyBreakdown, CodecError> {
    Ok(EnergyBreakdown {
        launch_pj: bits_field(value, "launch_pj")?,
        modulation_pj: bits_field(value, "modulation_pj")?,
        tuning_pj: bits_field(value, "tuning_pj")?,
        buffer_pj: bits_field(value, "buffer_pj")?,
        electrical_pj: bits_field(value, "electrical_pj")?,
    })
}

/// Serializes a metric report losslessly (names in report order, which is
/// already deterministic name order).
#[must_use]
pub fn report_json(report: &MetricReport) -> Json {
    Json::Obj(
        report
            .iter()
            .map(|(name, value)| (name.to_string(), metric_value_json(value)))
            .collect(),
    )
}

/// Decodes a metric report serialized by [`report_json`].
///
/// # Errors
///
/// Returns a [`CodecError`] naming the offending metric on any malformed
/// shape.
pub fn report_from_json(value: &Json) -> Result<MetricReport, CodecError> {
    let Json::Obj(fields) = value else {
        return Err(CodecError::new("metric report must be an object"));
    };
    let mut report = MetricReport::new();
    for (name, entry) in fields {
        report.insert(name.clone(), metric_value_from_json(entry, name)?);
    }
    Ok(report)
}

fn metric_value_json(value: &MetricValue) -> Json {
    match value {
        MetricValue::Counter(count) => Json::obj(vec![("counter", uint(*count))]),
        MetricValue::Gauge(level) => Json::obj(vec![("gauge", bits(*level))]),
        MetricValue::Histogram(sketch) => Json::obj(vec![("histogram", sketch_json(sketch))]),
        MetricValue::Family(members) => Json::obj(vec![(
            "family",
            Json::Obj(
                members
                    .iter()
                    .map(|(label, member)| (label.clone(), metric_value_json(member)))
                    .collect(),
            ),
        )]),
    }
}

fn metric_value_from_json(value: &Json, context: &str) -> Result<MetricValue, CodecError> {
    if let Some(count) = value.get("counter") {
        return Ok(MetricValue::Counter(parse_uint(count, context)?));
    }
    if let Some(level) = value.get("gauge") {
        let text = level
            .as_str()
            .ok_or_else(|| CodecError::new(format!("gauge '{context}' must be hex bits")))?;
        let raw = u64::from_str_radix(text, 16)
            .map_err(|_| CodecError::new(format!("gauge '{context}' is not hex: '{text}'")))?;
        return Ok(MetricValue::Gauge(f64::from_bits(raw)));
    }
    if let Some(sketch) = value.get("histogram") {
        return Ok(MetricValue::Histogram(sketch_from_json(sketch, context)?));
    }
    if let Some(members) = value.get("family") {
        let Json::Obj(fields) = members else {
            return Err(CodecError::new(format!(
                "family '{context}' must be an object"
            )));
        };
        let mut decoded: BTreeMap<String, MetricValue> = BTreeMap::new();
        for (label, member) in fields {
            decoded.insert(
                label.clone(),
                metric_value_from_json(member, &format!("{context}/{label}"))?,
            );
        }
        return Ok(MetricValue::Family(decoded));
    }
    Err(CodecError::new(format!(
        "metric '{context}' has no counter/gauge/histogram/family payload"
    )))
}

fn sketch_json(sketch: &QuantileSketch) -> Json {
    Json::obj(vec![
        ("count", uint(sketch.count())),
        ("sum", uint(sketch.sum())),
        ("min", sketch.min().map_or(Json::Null, uint)),
        ("max", sketch.max().map_or(Json::Null, uint)),
        (
            "bins",
            Json::Arr(
                sketch
                    .nonzero_bins()
                    .into_iter()
                    .map(|(index, count)| Json::Arr(vec![Json::Num(index as f64), uint(count)]))
                    .collect(),
            ),
        ),
    ])
}

fn sketch_from_json(value: &Json, context: &str) -> Result<QuantileSketch, CodecError> {
    let optional_uint = |key: &str| -> Result<Option<u64>, CodecError> {
        match field(value, key)? {
            Json::Null => Ok(None),
            other => parse_uint(other, key).map(Some),
        }
    };
    let bins = field(value, "bins")?
        .as_array()
        .ok_or_else(|| CodecError::new(format!("sketch '{context}' bins must be an array")))?
        .iter()
        .map(|pair| {
            let items = pair
                .as_array()
                .filter(|items| items.len() == 2)
                .ok_or_else(|| {
                    CodecError::new(format!(
                        "sketch '{context}' bins must be [index, count] pairs"
                    ))
                })?;
            let index = items[0]
                .as_f64()
                .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                .ok_or_else(|| {
                    CodecError::new(format!("sketch '{context}' bin index must be an integer"))
                })? as usize;
            Ok((index, parse_uint(&items[1], "bin count")?))
        })
        .collect::<Result<Vec<(usize, u64)>, CodecError>>()?;
    QuantileSketch::from_parts(
        &bins,
        uint_field(value, "count")?,
        uint_field(value, "sum")?,
        optional_uint("min")?,
        optional_uint("max")?,
    )
    .ok_or_else(|| {
        CodecError::new(format!(
            "sketch '{context}' parts violate structural invariants"
        ))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnoc_sim::clock::Clock;

    fn sample_point() -> SweepPoint {
        let mut stats = SimStats::new("firefly", "uniform-random", 0.1, Clock::paper_default());
        stats.measured_cycles = 1_200;
        stats.generated_packets = u64::MAX - 3;
        stats.delivered_bits = 123_456_789_012_345;
        stats.record_packet_delivery(7);
        stats.record_packet_delivery(5_000);
        stats.energy.launch_pj = 0.1 + 0.2; // deliberately not representable
        stats.energy.electrical_pj = -0.0;
        let mut sketch = QuantileSketch::new();
        for sample in [0, 1, 63, 64, 12_345] {
            sketch.record(sample);
        }
        let mut family = BTreeMap::new();
        family.insert("n000".to_string(), MetricValue::Counter(9));
        family.insert(
            "n001".to_string(),
            MetricValue::Family(BTreeMap::from([(
                "inner".to_string(),
                MetricValue::Gauge(f64::MIN_POSITIVE / 2.0), // subnormal
            )])),
        );
        let mut metrics = MetricReport::new();
        metrics.insert("latency_cycles", MetricValue::Histogram(sketch));
        metrics.insert("delivered_packets", MetricValue::Counter(2));
        metrics.insert("power_w", MetricValue::Gauge(1.0 / 3.0));
        metrics.insert("per_node", MetricValue::Family(family));
        SweepPoint {
            offered_load: 0.001 * 3.0,
            stats,
            metrics,
        }
    }

    #[test]
    fn point_round_trips_bit_exactly() {
        let point = sample_point();
        let decoded = point_from_json(&point_json(&point)).expect("round trip");
        assert_eq!(decoded, point);
        assert_eq!(
            decoded.stats.energy.electrical_pj.to_bits(),
            (-0.0f64).to_bits(),
            "negative zero must survive"
        );
    }

    #[test]
    fn point_survives_a_render_parse_cycle() {
        let point = sample_point();
        let text = point_json(&point).render();
        let reparsed = Json::parse(&text).expect("own output parses");
        assert_eq!(point_from_json(&reparsed).expect("decodes"), point);
    }

    #[test]
    fn malformed_documents_fail_with_field_context() {
        let point = sample_point();
        let mut doc = point_json(&point);
        if let Json::Obj(fields) = &mut doc {
            fields.retain(|(k, _)| k != "stats");
        }
        let error = point_from_json(&doc).expect_err("missing stats");
        assert!(error.to_string().contains("stats"), "{error}");

        let error = point_from_json(&Json::Null).expect_err("not an object");
        assert!(error.to_string().contains("offered_load"), "{error}");
    }

    #[test]
    fn tampered_sketch_parts_are_rejected() {
        let value = Json::obj(vec![
            ("count", uint(5)),
            ("sum", uint(10)),
            ("min", uint(1)),
            ("max", uint(4)),
            // Counts sum to 4, not the claimed 5.
            (
                "bins",
                Json::Arr(vec![Json::Arr(vec![Json::Num(1.0), uint(4)])]),
            ),
        ]);
        assert!(sketch_from_json(&value, "latency").is_err());
    }
}
