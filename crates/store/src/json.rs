//! Hand-rolled JSON value model: rendering **and parsing**.
//!
//! The workspace builds offline against a no-op `serde` shim (see
//! `vendor/README.md`), so every JSON document the workspace reads or writes
//! — cache entries, serialized scenario specs, `repro --json` reports, the
//! `BENCH_sweep.json` performance log — goes through this small,
//! dependency-free value model instead. It lives in `pnoc-store` because the
//! result store is the lowest layer that needs both directions; `pnoc-bench`
//! re-exports it unchanged.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for strings.
    #[must_use]
    pub fn str(s: impl Into<String>) -> Self {
        Json::Str(s.into())
    }

    /// Convenience constructor for objects.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Self {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Renders the value as pretty-printed JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        let pad_inner = "  ".repeat(indent + 1);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if n.is_finite() {
                    let _ = write!(out, "{n}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    out.push_str(&pad_inner);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in fields.iter().enumerate() {
                    out.push_str(&pad_inner);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

impl Json {
    /// Parses a JSON document (the inverse of [`Json::render`]).
    ///
    /// Accepts standard JSON: `null`, booleans, finite numbers, strings with
    /// the usual escapes (including `\uXXXX`), arrays and objects. Duplicate
    /// object keys are kept in order (the value model stores objects as
    /// insertion-ordered pairs).
    ///
    /// # Errors
    ///
    /// Returns a byte offset + message on malformed input or trailing
    /// garbage.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_whitespace(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonParseError {
                offset: pos,
                message: "trailing characters after the JSON value".to_string(),
            });
        }
        Ok(value)
    }

    /// The value of a field when this is an object, by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload when this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The element list when this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// A JSON parse failure: where it happened and what was wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

fn error(offset: usize, message: impl Into<String>) -> JsonParseError {
    JsonParseError {
        offset,
        message: message.into(),
    }
}

fn skip_whitespace(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonParseError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(error(*pos, format!("expected '{literal}'")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    skip_whitespace(bytes, pos);
    match bytes.get(*pos) {
        None => Err(error(*pos, "unexpected end of input")),
        Some(b'n') => expect_literal(bytes, pos, "null", Json::Null),
        Some(b't') => expect_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => expect_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(error(*pos, format!("unexpected character '{}'", c as char))),
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are ASCII");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| error(start, format!("invalid number '{text}'")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonParseError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(error(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| error(*pos, "truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|_| error(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| error(*pos, "bad \\u escape"))?;
                        // Surrogates never appear in our own output (we only
                        // escape control characters); map them to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(error(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| error(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(error(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonParseError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut fields = Vec::new();
    skip_whitespace(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_whitespace(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(error(*pos, "expected a string key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_whitespace(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(error(*pos, "expected ':' after object key"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_whitespace(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(error(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_escapes_and_nests() {
        let value = Json::obj(vec![
            ("name", Json::str("say \"hi\"\n")),
            ("count", Json::Num(3.0)),
            ("nan", Json::Num(f64::NAN)),
            ("flag", Json::Bool(true)),
            ("nothing", Json::Null),
            ("items", Json::Arr(vec![Json::Num(1.0), Json::Num(2.5)])),
            ("empty", Json::Arr(Vec::new())),
        ]);
        let text = value.render();
        assert!(text.contains("\"say \\\"hi\\\"\\n\""));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"nan\": null"));
        assert!(text.contains("\"items\": [\n"));
        assert!(text.contains("\"empty\": []"));
    }

    #[test]
    fn parse_inverts_render() {
        let value = Json::obj(vec![
            ("name", Json::str("say \"hi\"\n\t\\ done")),
            ("count", Json::Num(3.25)),
            ("negative", Json::Num(-0.5e-3)),
            ("flag", Json::Bool(true)),
            ("off", Json::Bool(false)),
            ("nothing", Json::Null),
            (
                "items",
                Json::Arr(vec![Json::Num(1.0), Json::str("two"), Json::Null]),
            ),
            ("empty_arr", Json::Arr(Vec::new())),
            ("empty_obj", Json::Obj(Vec::new())),
            (
                "nested",
                Json::obj(vec![("k", Json::Arr(vec![Json::Bool(false)]))]),
            ),
            ("unicode", Json::str("héllo \u{1} wörld")),
        ]);
        let parsed = Json::parse(&value.render()).expect("own output must parse");
        assert_eq!(parsed, value);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "nul",
            "12 34",
            "\"unterminated",
            "{\"a\":1} trailing",
        ] {
            assert!(Json::parse(bad).is_err(), "'{bad}' should fail to parse");
        }
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc = Json::parse("{\"a\": [1, 2.5], \"b\": \"x\"}").unwrap();
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x"));
        let items = doc.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(items[1].as_f64(), Some(2.5));
        assert_eq!(doc.get("missing"), None);
    }
}
