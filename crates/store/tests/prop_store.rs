//! Property tests of the result store: the `SweepPoint` ↔ JSON codec is
//! lossless (bit-exact through a full render → parse cycle, for arbitrary
//! stats, sketches and nested metric families), and any truncated, garbled
//! or structurally tampered entry file degrades to a cache miss — never a
//! crash, never wrong data — while leaving the store usable.

use pnoc_sim::clock::Clock;
use pnoc_sim::metrics::{MetricReport, MetricValue, QuantileSketch};
use pnoc_sim::stats::SimStats;
use pnoc_sim::sweep::SweepPoint;
use pnoc_store::{content_hash, point_from_json, point_json, Json, ResultStore};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

/// Builds a sweep point exercising every codec branch from sampled raw
/// values: u64 counters at arbitrary magnitudes, delivered-packet
/// latencies feeding both the stats histogram and a quantile sketch, f64
/// gauges (finite — `MetricValue` equality is the test oracle, so NaN is
/// out of scope) and a nested metric family.
fn build_point(
    offered_load: f64,
    counters: &[u64],
    latencies: &[u64],
    energies: (f64, f64, f64),
    gauges: &[f64],
) -> SweepPoint {
    let mut stats = SimStats::new(
        "prop-arch",
        "prop-traffic",
        offered_load,
        Clock::paper_default(),
    );
    stats.measured_cycles = counters[0];
    stats.generated_packets = *counters.last().expect("at least one counter");
    stats.delivered_bits = counters[counters.len() / 2];
    for &latency in latencies {
        stats.record_packet_delivery(latency);
    }
    stats.energy.launch_pj = energies.0;
    stats.energy.tuning_pj = energies.1;
    stats.energy.electrical_pj = energies.2;

    let mut sketch = QuantileSketch::new();
    for &latency in latencies {
        sketch.record(latency);
    }
    let mut family: BTreeMap<String, MetricValue> = BTreeMap::new();
    for (index, &gauge) in gauges.iter().enumerate() {
        family.insert(format!("member_{index}"), MetricValue::Gauge(gauge));
    }
    family.insert(
        "nested".to_string(),
        MetricValue::Family(BTreeMap::from([(
            "counter".to_string(),
            MetricValue::Counter(counters[0]),
        )])),
    );
    let mut metrics = MetricReport::new();
    metrics.insert("latency_cycles", MetricValue::Histogram(sketch));
    metrics.insert("delivered_packets", MetricValue::Counter(counters[0]));
    metrics.insert("per_node", MetricValue::Family(family));
    for (index, &gauge) in gauges.iter().enumerate() {
        metrics.insert(format!("gauge_{index}"), MetricValue::Gauge(gauge));
    }
    SweepPoint {
        offered_load,
        stats,
        metrics,
    }
}

/// A unique per-case scratch directory (the shim's case streams are
/// deterministic, so the tag keeps parallel test binaries apart).
fn scratch_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pnoc-store-prop-{}-{tag}", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sweep_points_round_trip_bit_exactly(
        counters in prop::collection::vec(0u64..=u64::MAX, 1..5),
        latencies in prop::collection::vec(0u64..50_000, 0..40),
        offered_load in 1e-12f64..10.0,
        energies in (0f64..1e9, 0f64..1e9, -1e9f64..1e9),
        gauges in prop::collection::vec(-1e12f64..1e12, 1..5),
    ) {
        let point = build_point(offered_load, &counters, &latencies, energies, &gauges);
        let text = point_json(&point).render();
        let parsed = Json::parse(&text).map_err(|e| format!("own output failed to parse: {e}"))?;
        let decoded = point_from_json(&parsed).map_err(|e| format!("decode failed: {e}"))?;
        prop_assert_eq!(&decoded, &point);
        // Bit-exactness beyond PartialEq: re-encoding the decoded point
        // reproduces the original document byte for byte.
        prop_assert_eq!(point_json(&decoded).render(), text);
    }

    #[test]
    fn corrupted_entries_degrade_to_misses(
        case in (0usize..3, 1usize..4096, 0u64..=u64::MAX),
        latencies in prop::collection::vec(0u64..5_000, 1..10),
    ) {
        let (kind, position, seed) = case;
        let dir = scratch_dir(&format!("corrupt-{kind}-{position}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ResultStore::open(&dir).map_err(|e| format!("open failed: {e}"))?;
        let key = format!("prop-arch:prop-traffic:set1:quick|seed={seed}|load=3f50624dd2f1a9fc|v0.8.0+event");
        let point = build_point(0.001, &[seed, 7], &latencies, (1.0, 2.0, 3.0), &[0.5]);
        store.save(&key, &point, 0.25).map_err(|e| format!("save failed: {e}"))?;
        prop_assert!(store.load(&key).is_some(), "fresh entry must load");

        let entry = dir.join("entries").join(format!("{}.json", content_hash(&key)));
        let bytes = std::fs::read(&entry).map_err(|e| format!("read failed: {e}"))?;
        let mutated: Vec<u8> = match kind {
            // Truncation: cut at least two bytes so the closing brace of the
            // document is gone and the text cannot parse.
            0 => bytes[..position % bytes.len().saturating_sub(2)].to_vec(),
            // Garbage: not JSON at all.
            1 => format!("garbage {position} {seed}").into_bytes(),
            // Structural tampering: valid JSON, but the point payload is
            // missing, so entry decoding (not parsing) must reject it.
            _ => {
                let mut doc = Json::parse(std::str::from_utf8(&bytes).expect("entries are UTF-8"))
                    .expect("fresh entries parse");
                if let Json::Obj(fields) = &mut doc {
                    fields.retain(|(name, _)| name != "point");
                }
                doc.render().into_bytes()
            }
        };
        std::fs::write(&entry, &mutated).map_err(|e| format!("write failed: {e}"))?;

        // Reopen so nothing is served from in-process state.
        let reopened = ResultStore::open(&dir).map_err(|e| format!("reopen failed: {e}"))?;
        prop_assert!(
            reopened.load(&key).is_none(),
            "corrupted entry (kind {kind}) must be a miss"
        );
        prop_assert_eq!(reopened.stats().misses, 1);

        // The store stays usable: the bad entry can be overwritten and
        // served again.
        store.save(&key, &point, 0.25).map_err(|e| format!("re-save failed: {e}"))?;
        prop_assert!(reopened.load(&key).is_some(), "overwritten entry must load");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
