//! Property-based tests of the fault-plan grammar: `parse` ↔ `render` are
//! inverses on every well-formed plan, schedule validation accepts exactly
//! the consistent windows and in-bounds targets, and rejection messages
//! carry the kind catalogue plus a nearest-name suggestion.

use pnoc_faults::{FaultError, FaultEvent, FaultKind, FaultPlan, FaultTarget};
use pnoc_noc::packet::BandwidthClass;
use proptest::prelude::*;

/// Builds one well-formed event from sampled raw values, keeping the
/// kind/target/severity pairing the grammar demands. The first value packs
/// kind and target (the vendored proptest shim caps tuple strategies at 4
/// elements).
fn event_from(raw: (u64, u64, u64, u64)) -> FaultEvent {
    let (kind_target, onset, repair_delta, severity_raw) = raw;
    let (kind_raw, target_raw) = (kind_target % 4, kind_target / 4);
    let kind = FaultKind::ALL[kind_raw as usize % FaultKind::ALL.len()];
    let target = match kind {
        FaultKind::LinkFail | FaultKind::RingStuck => FaultTarget::Switch(target_raw as usize % 16),
        FaultKind::WavelengthDegrade => {
            FaultTarget::Class(BandwidthClass::ALL[target_raw as usize % 4])
        }
        FaultKind::LaserDim => FaultTarget::Fabric,
    };
    FaultEvent {
        kind,
        target,
        onset,
        // repair_delta 0 = permanent; otherwise strictly after onset.
        repair: (repair_delta > 0).then(|| onset + repair_delta),
        severity: if kind.has_severity() {
            2 + (severity_raw % 30) as u32
        } else {
            1
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// render → parse is the identity on every well-formed plan, and the
    /// canonical text is a fixed point of parse ∘ render.
    #[test]
    fn plans_render_parse_round_trip(
        raw in prop::collection::vec(
            (0u64..64, 0u64..100_000, 0u64..5_000, 0u64..64),
            0..8,
        ),
    ) {
        let plan = FaultPlan::from_events(raw.into_iter().map(event_from).collect());
        let rendered = plan.render();
        let parsed = FaultPlan::parse(&rendered).expect("rendered plans are canonical");
        prop_assert_eq!(&parsed, &plan);
        prop_assert_eq!(parsed.render(), rendered);
    }

    /// A window is accepted exactly when repair > onset, and switch targets
    /// validate exactly when inside the topology.
    #[test]
    fn schedule_validation_accepts_exactly_the_consistent_windows(
        onset in 0u64..10_000,
        repair in 0u64..10_000,
        switch in 0u64..32,
        num_switches in 1usize..16,
    ) {
        let text = format!("link-fail@c{onset}-{repair}:sw{switch}");
        match FaultPlan::parse(&text) {
            Ok(plan) => {
                prop_assert!(repair > onset);
                let valid = plan.validate(num_switches);
                if (switch as usize) < num_switches {
                    prop_assert!(valid.is_ok());
                } else {
                    let error = valid.expect_err("out-of-bounds switch");
                    prop_assert!(matches!(error, FaultError::TargetOutOfBounds { .. }));
                    prop_assert!(error.to_string().contains(&format!("switch {switch}")));
                }
            }
            Err(error) => {
                prop_assert!(repair <= onset, "only bad windows may fail: {error}");
                prop_assert!(matches!(error, FaultError::BadSchedule { .. }));
            }
        }
    }

    /// Every unknown kind is rejected with the sorted catalogue, and a
    /// one-character corruption of a real kind still suggests the original.
    #[test]
    fn unknown_kinds_list_the_catalogue_with_suggestions(
        kind_raw in 0u64..4,
        corrupt in 0u64..26,
    ) {
        let kind = FaultKind::ALL[kind_raw as usize % FaultKind::ALL.len()];
        // Corrupt the last character to a (possibly identical) letter.
        let mut name: Vec<char> = kind.name().chars().collect();
        *name.last_mut().expect("kind names are non-empty") =
            char::from(b'a' + (corrupt % 26) as u8);
        let name: String = name.into_iter().collect();
        let result = FaultPlan::parse(&format!("{name}@c10:sw0"));
        if FaultKind::parse(&name).is_some() {
            // The corruption landed back on a real kind (or one whose
            // target grammar differs — either way, not an UnknownKind).
            return Ok(());
        }
        let error = result.expect_err("corrupted kinds cannot parse");
        prop_assert!(matches!(error, FaultError::UnknownKind { .. }), "{error}");
        let message = error.to_string();
        prop_assert!(
            message.contains("[laser-dim, link-fail, ring-stuck, wavelength-degrade]"),
            "{}", message
        );
        prop_assert_eq!(error.suggestion(), Some(kind.name()));
    }
}
