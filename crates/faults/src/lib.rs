#![doc = include_str!("faults.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod plan;
pub mod presets;
pub mod schedule;
pub mod surface;

pub use plan::{FaultError, FaultEvent, FaultKind, FaultPlan, FaultTarget};
pub use presets::{preset_catalogue, preset_plan, PRESET_PLANS};
pub use schedule::{FaultAction, FaultController};
pub use surface::FaultSurface;
