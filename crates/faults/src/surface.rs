//! Shared data-plane fault bookkeeping for fabric implementations.
//!
//! Every photonic fabric that honours faults tracks the same small state:
//! which cluster links are down, which MRR rings are stuck, and by how much
//! each bandwidth class (and the shared laser) is derated. [`FaultSurface`]
//! centralises that state so each fabric only decides *how* the derating
//! maps onto its wavelength arithmetic, not how to book-keep overlapping
//! transient windows.

use crate::plan::{FaultEvent, FaultKind, FaultTarget};
use pnoc_noc::packet::BandwidthClass;

/// Data-plane fault state shared by fabric implementations.
///
/// Overlapping faults compose multiplicatively: two concurrent
/// `wavelength-degrade …/2` windows on the same class derate it by 4 until
/// the first repair divides the factor back out. Link and ring faults are
/// idempotent flags (the grammar forbids overlapping windows on the same
/// target only through plan authorship; a repeated apply is harmless).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSurface {
    failed_links: Vec<bool>,
    stuck_rings: Vec<bool>,
    class_divisors: [u32; BandwidthClass::ALL.len()],
    laser_divisor: u32,
}

impl FaultSurface {
    /// A healthy surface for a fabric with `num_switches` cluster switches.
    #[must_use]
    pub fn new(num_switches: usize) -> Self {
        Self {
            failed_links: vec![false; num_switches],
            stuck_rings: vec![false; num_switches],
            class_divisors: [1; BandwidthClass::ALL.len()],
            laser_divisor: 1,
        }
    }

    /// Records the onset of `event`.
    pub fn apply(&mut self, event: &FaultEvent) {
        match (event.kind, event.target) {
            (FaultKind::LinkFail, FaultTarget::Switch(n)) => {
                if let Some(link) = self.failed_links.get_mut(n) {
                    *link = true;
                }
            }
            (FaultKind::RingStuck, FaultTarget::Switch(n)) => {
                if let Some(ring) = self.stuck_rings.get_mut(n) {
                    *ring = true;
                }
            }
            (FaultKind::WavelengthDegrade, FaultTarget::Class(class)) => {
                let d = &mut self.class_divisors[class.index()];
                *d = d.saturating_mul(event.severity.max(1));
            }
            (FaultKind::LaserDim, _) => {
                self.laser_divisor = self.laser_divisor.saturating_mul(event.severity.max(1));
            }
            // Kind/target pairings the grammar does not produce.
            _ => {}
        }
    }

    /// Records the repair of `event`, restoring exactly the state
    /// [`FaultSurface::apply`] disturbed.
    pub fn clear(&mut self, event: &FaultEvent) {
        match (event.kind, event.target) {
            (FaultKind::LinkFail, FaultTarget::Switch(n)) => {
                if let Some(link) = self.failed_links.get_mut(n) {
                    *link = false;
                }
            }
            (FaultKind::RingStuck, FaultTarget::Switch(n)) => {
                if let Some(ring) = self.stuck_rings.get_mut(n) {
                    *ring = false;
                }
            }
            (FaultKind::WavelengthDegrade, FaultTarget::Class(class)) => {
                let d = &mut self.class_divisors[class.index()];
                *d = (*d / event.severity.max(1)).max(1);
            }
            (FaultKind::LaserDim, _) => {
                self.laser_divisor = (self.laser_divisor / event.severity.max(1)).max(1);
            }
            _ => {}
        }
    }

    /// Whether the photonic link of switch `n` is operational.
    #[must_use]
    pub fn link_up(&self, n: usize) -> bool {
        !self.failed_links.get(n).copied().unwrap_or(false)
    }

    /// Whether switch `n` has a stuck/detuned MRR ring (its transmissions
    /// are pinned to a single wavelength).
    #[must_use]
    pub fn ring_stuck(&self, n: usize) -> bool {
        self.stuck_rings.get(n).copied().unwrap_or(false)
    }

    /// The combined derating divisor for transfers of `class`: the class's
    /// own degradation times the global laser dimming.
    #[must_use]
    pub fn class_divisor(&self, class: BandwidthClass) -> u32 {
        self.class_divisors[class.index()].saturating_mul(self.laser_divisor)
    }

    /// The global laser-dimming divisor alone (applies to every pool,
    /// independent of class).
    #[must_use]
    pub fn laser_divisor(&self) -> u32 {
        self.laser_divisor
    }

    /// The worst derating divisor across all classes (what a class-blind
    /// fabric like Firefly, which switches every modulator for every
    /// transfer, must assume for its whole channel).
    #[must_use]
    pub fn max_divisor(&self) -> u32 {
        self.class_divisors
            .iter()
            .copied()
            .max()
            .unwrap_or(1)
            .saturating_mul(self.laser_divisor)
    }

    /// Whether no fault is currently active (the healthy fast path).
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.laser_divisor == 1
            && self.class_divisors.iter().all(|&d| d == 1)
            && self.failed_links.iter().all(|&f| !f)
            && self.stuck_rings.iter().all(|&s| !s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    fn event(text: &str) -> FaultEvent {
        FaultPlan::parse(text).expect("valid event").events()[0]
    }

    #[test]
    fn apply_then_clear_restores_the_healthy_surface() {
        let healthy = FaultSurface::new(8);
        let mut surface = healthy.clone();
        let events = [
            event("link-fail@c10-20:sw3"),
            event("ring-stuck@c10-20:sw5"),
            event("wavelength-degrade@c10-20:class-high/4"),
            event("laser-dim@c10-20:fabric/2"),
        ];
        for e in &events {
            surface.apply(e);
        }
        assert!(!surface.is_healthy());
        assert!(!surface.link_up(3));
        assert!(surface.link_up(4));
        assert!(surface.ring_stuck(5));
        assert_eq!(surface.class_divisor(BandwidthClass::High), 8);
        assert_eq!(surface.class_divisor(BandwidthClass::Low), 2);
        assert_eq!(surface.max_divisor(), 8);
        for e in &events {
            surface.clear(e);
        }
        assert_eq!(surface, healthy);
        assert!(surface.is_healthy());
    }

    #[test]
    fn overlapping_degradations_compose_multiplicatively() {
        let mut surface = FaultSurface::new(4);
        let first = event("wavelength-degrade@c10-30:class-low/2");
        let second = event("wavelength-degrade@c20-40:class-low/3");
        surface.apply(&first);
        surface.apply(&second);
        assert_eq!(surface.class_divisor(BandwidthClass::Low), 6);
        surface.clear(&first);
        assert_eq!(surface.class_divisor(BandwidthClass::Low), 3);
        surface.clear(&second);
        assert!(surface.is_healthy());
    }

    #[test]
    fn out_of_range_switches_are_ignored() {
        // `validate` rejects these before a run; direct applies stay safe.
        let mut surface = FaultSurface::new(2);
        surface.apply(&event("link-fail@c10:sw9"));
        assert!(surface.is_healthy());
        assert!(surface.link_up(9), "unknown switches read as healthy");
    }
}
