//! Typed fault plans and their canonical text grammar.
//!
//! A [`FaultPlan`] is an ordered schedule of [`FaultEvent`]s, each a fault
//! kind × target × onset cycle × optional repair cycle. Plans have a
//! canonical text form (see `faults.md`) with `parse`/`render` inverses,
//! mirroring the architecture-parameter spec grammar: parsing the rendered
//! text reproduces the plan exactly, and rendering is a fixed point.

use pnoc_noc::packet::BandwidthClass;
use pnoc_noc::suggest::nearest_name;
use std::fmt;

/// The kinds of faults the subsystem can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// A photonic link fails: no new transmissions may start to or from the
    /// targeted switch until repair (in-flight transfers complete).
    LinkFail,
    /// Wavelength degradation on one bandwidth class: every channel
    /// provisioned for that class loses a factor of `severity` wavelengths.
    WavelengthDegrade,
    /// A stuck/detuned MRR ring at one switch: channels touching that switch
    /// collapse to a single usable wavelength.
    RingStuck,
    /// Laser dimming: the whole fabric loses a factor of `severity`
    /// wavelengths on every channel.
    LaserDim,
}

impl FaultKind {
    /// Every fault kind, in declaration order.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::LinkFail,
        FaultKind::WavelengthDegrade,
        FaultKind::RingStuck,
        FaultKind::LaserDim,
    ];

    /// The canonical grammar name of the kind.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::LinkFail => "link-fail",
            FaultKind::WavelengthDegrade => "wavelength-degrade",
            FaultKind::RingStuck => "ring-stuck",
            FaultKind::LaserDim => "laser-dim",
        }
    }

    /// Parses a canonical kind name.
    #[must_use]
    pub fn parse(text: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|kind| kind.name() == text)
    }

    /// Whether this kind carries a `/severity` divisor in the grammar.
    #[must_use]
    pub fn has_severity(self) -> bool {
        matches!(self, FaultKind::WavelengthDegrade | FaultKind::LaserDim)
    }

    /// The sorted kind catalogue rendered for error messages.
    #[must_use]
    pub fn catalogue() -> String {
        let mut names: Vec<&str> = FaultKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        format!("[{}]", names.join(", "))
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a fault event acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// One photonic switch (= one cluster's fabric port), `sw<N>`.
    Switch(usize),
    /// One bandwidth class of channels, `class-<label>`.
    Class(BandwidthClass),
    /// The whole fabric, `fabric`.
    Fabric,
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::Switch(index) => write!(f, "sw{index}"),
            FaultTarget::Class(class) => write!(f, "class-{class}"),
            FaultTarget::Fabric => f.write_str("fabric"),
        }
    }
}

/// One scheduled fault: kind × target × onset cycle × optional repair cycle
/// (`None` = permanent) × severity (a wavelength divisor, only meaningful
/// for kinds where [`FaultKind::has_severity`] holds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// What goes wrong.
    pub kind: FaultKind,
    /// What it happens to.
    pub target: FaultTarget,
    /// Absolute cycle at which the fault is applied.
    pub onset: u64,
    /// Absolute cycle at which the fault is repaired (`None` = permanent).
    pub repair: Option<u64>,
    /// Wavelength divisor for degradation kinds (≥ 2); `1` otherwise.
    pub severity: u32,
}

impl FaultEvent {
    /// Renders the event in canonical grammar form
    /// (`kind@cONSET[-REPAIR]:TARGET[/SEVERITY]`).
    #[must_use]
    pub fn render(&self) -> String {
        let mut text = format!("{}@c{}", self.kind, self.onset);
        if let Some(repair) = self.repair {
            text.push_str(&format!("-{repair}"));
        }
        text.push_str(&format!(":{}", self.target));
        if self.kind.has_severity() {
            text.push_str(&format!("/{}", self.severity));
        }
        text
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Errors from parsing, resolving or validating fault plans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultError {
    /// An event did not match the grammar.
    Malformed {
        /// The offending event text.
        event: String,
        /// What was wrong with it.
        reason: String,
    },
    /// An unrecognised fault kind.
    UnknownKind {
        /// The unrecognised name.
        name: String,
        /// A close known kind, if the name looks like a typo.
        suggestion: Option<String>,
    },
    /// An unrecognised preset plan name.
    UnknownPlan {
        /// The unrecognised name.
        name: String,
        /// A close preset name, if it looks like a typo.
        suggestion: Option<String>,
    },
    /// An unrecognised bandwidth-class label.
    UnknownClass {
        /// The unrecognised label.
        name: String,
    },
    /// The schedule is inconsistent (e.g. repair ≤ onset).
    BadSchedule {
        /// The offending event text.
        event: String,
        /// What was wrong with it.
        reason: String,
    },
    /// A switch target outside the topology.
    TargetOutOfBounds {
        /// The offending event (canonical rendering).
        event: String,
        /// The targeted switch index.
        switch: usize,
        /// How many switches the topology has.
        num_switches: usize,
    },
}

impl FaultError {
    /// The "did you mean" candidate, when the error carries one.
    #[must_use]
    pub fn suggestion(&self) -> Option<&str> {
        match self {
            FaultError::UnknownKind { suggestion, .. }
            | FaultError::UnknownPlan { suggestion, .. } => suggestion.as_deref(),
            _ => None,
        }
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::Malformed { event, reason } => {
                write!(f, "malformed fault event '{event}': {reason}")
            }
            FaultError::UnknownKind { name, suggestion } => {
                write!(
                    f,
                    "unknown fault kind '{name}'; known kinds: {}",
                    FaultKind::catalogue()
                )?;
                if let Some(candidate) = suggestion {
                    write!(f, " — did you mean '{candidate}'?")?;
                }
                Ok(())
            }
            FaultError::UnknownPlan { name, suggestion } => {
                write!(
                    f,
                    "unknown fault plan '{name}'; presets: {} \
                     (or a literal plan like 'link-fail@c150-450:sw1')",
                    crate::presets::preset_catalogue()
                )?;
                if let Some(candidate) = suggestion {
                    write!(f, " — did you mean '{candidate}'?")?;
                }
                Ok(())
            }
            FaultError::UnknownClass { name } => {
                write!(
                    f,
                    "unknown bandwidth class '{name}'; use one of \
                     [class-low, class-medium-low, class-medium-high, class-high]"
                )
            }
            FaultError::BadSchedule { event, reason } => {
                write!(f, "invalid fault schedule in '{event}': {reason}")
            }
            FaultError::TargetOutOfBounds {
                event,
                switch,
                num_switches,
            } => {
                write!(
                    f,
                    "fault event '{event}' targets switch {switch}, but the topology \
                     has {num_switches} switches (sw0..sw{})",
                    num_switches.saturating_sub(1)
                )
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Suggests a known fault kind for a mistyped name.
fn unknown_kind(name: &str) -> FaultError {
    let suggestion =
        nearest_name(name, FaultKind::ALL.iter().map(|k| k.name())).map(str::to_string);
    FaultError::UnknownKind {
        name: name.to_string(),
        suggestion,
    }
}

fn malformed(event: &str, reason: impl Into<String>) -> FaultError {
    FaultError::Malformed {
        event: event.to_string(),
        reason: reason.into(),
    }
}

/// Parses a bandwidth-class target label (`class-high`, `classHigh` and bare
/// `high` are all accepted; the canonical rendering is `class-high`).
fn parse_class(label: &str) -> Result<BandwidthClass, FaultError> {
    let lower = label.to_ascii_lowercase();
    let body = lower
        .strip_prefix("class-")
        .or_else(|| lower.strip_prefix("class"))
        .unwrap_or(&lower);
    match body {
        "low" => Ok(BandwidthClass::Low),
        "medium-low" | "mediumlow" => Ok(BandwidthClass::MediumLow),
        "medium-high" | "mediumhigh" => Ok(BandwidthClass::MediumHigh),
        "high" => Ok(BandwidthClass::High),
        _ => Err(FaultError::UnknownClass {
            name: label.to_string(),
        }),
    }
}

/// Parses one event in canonical grammar form.
fn parse_event(text: &str) -> Result<FaultEvent, FaultError> {
    let (kind_text, rest) = text
        .split_once('@')
        .ok_or_else(|| malformed(text, "expected 'kind@cONSET[-REPAIR]:TARGET'"))?;
    let kind = FaultKind::parse(kind_text.trim()).ok_or_else(|| unknown_kind(kind_text.trim()))?;
    let (window, target_text) = rest
        .split_once(':')
        .ok_or_else(|| malformed(text, "expected ':TARGET' after the cycle window"))?;

    let window = window.trim();
    let window = window.strip_prefix('c').unwrap_or(window);
    let (onset_text, repair_text) = match window.split_once('-') {
        Some((onset, repair)) => (onset, Some(repair)),
        None => (window, None),
    };
    let onset: u64 = onset_text
        .parse()
        .map_err(|_| malformed(text, format!("onset cycle '{onset_text}' is not a u64")))?;
    let repair = match repair_text {
        None => None,
        Some(repair_text) => {
            let repair: u64 = repair_text.parse().map_err(|_| {
                malformed(text, format!("repair cycle '{repair_text}' is not a u64"))
            })?;
            if repair <= onset {
                return Err(FaultError::BadSchedule {
                    event: text.to_string(),
                    reason: format!("repair cycle {repair} must be after onset cycle {onset}"),
                });
            }
            Some(repair)
        }
    };

    let target_text = target_text.trim();
    let (target_body, severity_text) = match target_text.split_once('/') {
        Some((body, severity)) => (body, Some(severity)),
        None => (target_text, None),
    };
    let severity = match severity_text {
        None => {
            if kind.has_severity() {
                2 // default wavelength divisor
            } else {
                1
            }
        }
        Some(severity_text) => {
            if !kind.has_severity() {
                return Err(malformed(
                    text,
                    format!("'{kind}' does not take a /severity divisor"),
                ));
            }
            let severity: u32 = severity_text
                .parse()
                .map_err(|_| malformed(text, format!("severity '{severity_text}' is not a u32")))?;
            if severity < 2 {
                return Err(malformed(text, "severity must be a divisor >= 2"));
            }
            severity
        }
    };

    let target = match kind {
        FaultKind::LinkFail | FaultKind::RingStuck => {
            let index_text = target_body
                .strip_prefix("sw")
                .ok_or_else(|| malformed(text, format!("'{kind}' targets a switch, e.g. 'sw3'")))?;
            let index: usize = index_text.parse().map_err(|_| {
                malformed(text, format!("switch index '{index_text}' is not a number"))
            })?;
            FaultTarget::Switch(index)
        }
        FaultKind::WavelengthDegrade => FaultTarget::Class(parse_class(target_body)?),
        FaultKind::LaserDim => {
            if target_body != "fabric" {
                return Err(malformed(text, "'laser-dim' targets the whole 'fabric'"));
            }
            FaultTarget::Fabric
        }
    };

    Ok(FaultEvent {
        kind,
        target,
        onset,
        repair,
        severity,
    })
}

/// An ordered, validated schedule of fault events.
///
/// The empty plan is the healthy fabric: it injects nothing and is what
/// `none` (or an absent `faults` field) resolves to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty (healthy) plan.
    #[must_use]
    pub fn empty() -> FaultPlan {
        FaultPlan { events: Vec::new() }
    }

    /// Builds a plan from explicit events (kept in the given order).
    #[must_use]
    pub fn from_events(events: Vec<FaultEvent>) -> FaultPlan {
        FaultPlan { events }
    }

    /// Whether the plan schedules no faults.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled events, in plan order.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Parses a comma-separated literal plan
    /// (`link-fail@c150-450:sw1,laser-dim@c200:fabric/2`). The empty string
    /// parses to the empty plan.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultError`] describing the first offending event.
    pub fn parse(text: &str) -> Result<FaultPlan, FaultError> {
        let text = text.trim();
        if text.is_empty() {
            return Ok(FaultPlan::empty());
        }
        let events = text
            .split(',')
            .map(|event| parse_event(event.trim()))
            .collect::<Result<Vec<FaultEvent>, FaultError>>()?;
        Ok(FaultPlan { events })
    }

    /// Renders the plan in canonical grammar form: every event in canonical
    /// form, comma-joined, plan order preserved. `parse(render(p)) == p`,
    /// and rendering is a fixed point of `parse ∘ render`.
    #[must_use]
    pub fn render(&self) -> String {
        self.events
            .iter()
            .map(FaultEvent::render)
            .collect::<Vec<String>>()
            .join(",")
    }

    /// Resolves user-facing plan text: empty or `none` → the empty plan, a
    /// preset name → that preset, anything containing `@` → a literal plan,
    /// any other bare word → [`FaultError::UnknownPlan`] with a nearest-name
    /// suggestion.
    ///
    /// # Errors
    ///
    /// Returns a [`FaultError`] for unknown presets or malformed literals.
    pub fn resolve(text: &str) -> Result<FaultPlan, FaultError> {
        let text = text.trim();
        if text.is_empty() || text == "none" {
            return Ok(FaultPlan::empty());
        }
        if let Some(plan) = crate::presets::preset_plan(text) {
            return Ok(plan);
        }
        if text.contains('@') {
            return FaultPlan::parse(text);
        }
        let suggestion =
            nearest_name(text, crate::presets::PRESET_PLANS.iter().copied()).map(str::to_string);
        Err(FaultError::UnknownPlan {
            name: text.to_string(),
            suggestion,
        })
    }

    /// Validates switch targets against the topology size.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::TargetOutOfBounds`] for the first event whose
    /// switch index is outside `0..num_switches`.
    pub fn validate(&self, num_switches: usize) -> Result<(), FaultError> {
        for event in &self.events {
            if let FaultTarget::Switch(index) = event.target {
                if index >= num_switches {
                    return Err(FaultError::TargetOutOfBounds {
                        event: event.render(),
                        switch: index,
                        num_switches,
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_parse_and_render_canonically() {
        let cases = [
            "link-fail@c150:sw3",
            "link-fail@c150-450:sw1",
            "wavelength-degrade@c100:class-high/2",
            "wavelength-degrade@c100-900:class-medium-low/4",
            "ring-stuck@c150:sw2",
            "laser-dim@c200:fabric/2",
        ];
        for text in cases {
            let plan = FaultPlan::parse(text).expect("canonical text parses");
            assert_eq!(plan.render(), text, "canonical text is a fixed point");
        }
    }

    #[test]
    fn variant_spellings_canonicalise() {
        // Bare cycle number (no 'c'), camel-case class label, default severity.
        let plan = FaultPlan::parse("wavelength-degrade@1000:classHigh").expect("variants parse");
        assert_eq!(plan.render(), "wavelength-degrade@c1000:class-high/2");
        assert_eq!(plan.events()[0].severity, 2);
    }

    #[test]
    fn multi_event_plans_round_trip_in_order() {
        let text = "link-fail@c120-240:sw0,link-fail@c240-360:sw1,laser-dim@c10:fabric/3";
        let plan = FaultPlan::parse(text).expect("parses");
        assert_eq!(plan.events().len(), 3);
        assert_eq!(plan.render(), text);
        assert_eq!(FaultPlan::parse(&plan.render()).unwrap(), plan);
    }

    #[test]
    fn unknown_kind_lists_the_catalogue_with_a_suggestion() {
        let error = FaultPlan::parse("link-fial@c10:sw0").unwrap_err();
        assert_eq!(error.suggestion(), Some("link-fail"));
        let message = error.to_string();
        assert!(
            message.contains("[laser-dim, link-fail, ring-stuck, wavelength-degrade]"),
            "{message}"
        );
        assert!(message.contains("did you mean 'link-fail'?"), "{message}");
    }

    #[test]
    fn schedule_and_grammar_violations_are_rejected() {
        // Repair must come after onset.
        let error = FaultPlan::parse("link-fail@c450-150:sw1").unwrap_err();
        assert!(matches!(error, FaultError::BadSchedule { .. }), "{error}");
        let error = FaultPlan::parse("link-fail@c150-150:sw1").unwrap_err();
        assert!(matches!(error, FaultError::BadSchedule { .. }), "{error}");
        // Severity only on degradation kinds.
        let error = FaultPlan::parse("link-fail@c10:sw1/2").unwrap_err();
        assert!(error.to_string().contains("does not take"), "{error}");
        let error = FaultPlan::parse("laser-dim@c10:fabric/1").unwrap_err();
        assert!(error.to_string().contains(">= 2"), "{error}");
        // Kind-appropriate targets.
        assert!(FaultPlan::parse("link-fail@c10:fabric").is_err());
        assert!(FaultPlan::parse("laser-dim@c10:sw1").is_err());
        let error = FaultPlan::parse("wavelength-degrade@c10:class-ultra").unwrap_err();
        assert!(matches!(error, FaultError::UnknownClass { .. }), "{error}");
    }

    #[test]
    fn resolve_handles_presets_literals_and_typos() {
        assert!(FaultPlan::resolve("").unwrap().is_empty());
        assert!(FaultPlan::resolve("none").unwrap().is_empty());
        assert!(!FaultPlan::resolve("single-link").unwrap().is_empty());
        assert_eq!(
            FaultPlan::resolve("link-fail@c150-450:sw1")
                .unwrap()
                .render(),
            "link-fail@c150-450:sw1"
        );
        let error = FaultPlan::resolve("single-lnik").unwrap_err();
        assert_eq!(error.suggestion(), Some("single-link"));
        assert!(error.to_string().contains("presets:"), "{error}");
    }

    #[test]
    fn validation_bounds_switch_targets() {
        let plan = FaultPlan::parse("link-fail@c10:sw7").unwrap();
        assert!(plan.validate(8).is_ok());
        let error = plan.validate(4).unwrap_err();
        assert!(
            matches!(error, FaultError::TargetOutOfBounds { switch: 7, .. }),
            "{error}"
        );
        assert!(error.to_string().contains("sw0..sw3"), "{error}");
        // Non-switch targets are never out of bounds.
        let plan = FaultPlan::parse("laser-dim@c10:fabric/2").unwrap();
        assert!(plan.validate(1).is_ok());
    }
}
