//! The cycle-exact fault controller consulted by the simulation engine.
//!
//! [`FaultController`] turns a [`FaultPlan`] into a sorted transition tape
//! (one `Apply` per event, one `Repair` per transient event) and hands the
//! engine two things: `pop_due` — O(1), allocation-free — drains every
//! transition whose cycle has arrived at the top of a stepped cycle, and
//! `next_transition_cycle` bounds the event-driven executor's idle-gap skip
//! so a scheduled fault cycle is always stepped, never jumped over.

use crate::plan::{FaultEvent, FaultPlan};

/// Whether a transition applies or repairs its fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The fault takes effect.
    Apply,
    /// The fault is repaired.
    Repair,
}

/// One scheduled transition: at `cycle`, `action` event number `index`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Transition {
    cycle: u64,
    action: FaultAction,
    index: usize,
}

/// Deterministic cursor over a plan's transitions, with running
/// applied/active counts for the degradation gauges.
#[derive(Debug, Clone)]
pub struct FaultController {
    events: Vec<FaultEvent>,
    transitions: Vec<Transition>,
    cursor: usize,
    applied: u64,
    active: u64,
}

impl FaultController {
    /// Builds the controller for a plan. Transitions are sorted by cycle;
    /// within one cycle repairs run before applies (a back-to-back repair +
    /// re-apply on the same cycle leaves the fault applied), ties broken by
    /// plan order, so the tape is fully deterministic.
    #[must_use]
    pub fn new(plan: &FaultPlan) -> FaultController {
        let events: Vec<FaultEvent> = plan.events().to_vec();
        let mut transitions = Vec::with_capacity(events.len() * 2);
        for (index, event) in events.iter().enumerate() {
            transitions.push(Transition {
                cycle: event.onset,
                action: FaultAction::Apply,
                index,
            });
            if let Some(repair) = event.repair {
                transitions.push(Transition {
                    cycle: repair,
                    action: FaultAction::Repair,
                    index,
                });
            }
        }
        transitions.sort_by_key(|t| (t.cycle, t.action == FaultAction::Apply, t.index));
        FaultController {
            events,
            transitions,
            cursor: 0,
            applied: 0,
            active: 0,
        }
    }

    /// Pops the next transition due at or before `cycle`, updating the
    /// applied/active counters. Call in a loop at the top of each stepped
    /// cycle until it returns `None`.
    pub fn pop_due(&mut self, cycle: u64) -> Option<(FaultAction, usize)> {
        let transition = *self.transitions.get(self.cursor)?;
        if transition.cycle > cycle {
            return None;
        }
        self.cursor += 1;
        match transition.action {
            FaultAction::Apply => {
                self.applied += 1;
                self.active += 1;
            }
            FaultAction::Repair => self.active = self.active.saturating_sub(1),
        }
        Some((transition.action, transition.index))
    }

    /// The earliest cycle `> now` at which a transition is due, or `None`
    /// when the tape is exhausted. The event-driven executor takes the
    /// minimum of this and the network's own horizon, so idle-gap skips
    /// never jump over a scheduled fault.
    #[must_use]
    pub fn next_transition_cycle(&self, now: u64) -> Option<u64> {
        self.transitions
            .get(self.cursor)
            .map(|t| t.cycle.max(now + 1))
    }

    /// The event behind a transition index from [`FaultController::pop_due`].
    #[must_use]
    pub fn event(&self, index: usize) -> FaultEvent {
        self.events[index]
    }

    /// How many fault applications have fired so far.
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// How many faults are currently active (applied and not yet repaired).
    #[must_use]
    pub fn active(&self) -> u64 {
        self.active
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller(text: &str) -> FaultController {
        FaultController::new(&FaultPlan::parse(text).expect("test plans parse"))
    }

    #[test]
    fn transitions_fire_in_cycle_order_with_counts() {
        let mut ctrl = controller("link-fail@c120-240:sw0,link-fail@c240-360:sw1");
        assert_eq!(ctrl.pop_due(100), None);
        assert_eq!(ctrl.next_transition_cycle(100), Some(120));

        assert_eq!(ctrl.pop_due(120), Some((FaultAction::Apply, 0)));
        assert_eq!(ctrl.pop_due(120), None);
        assert_eq!((ctrl.applied(), ctrl.active()), (1, 1));

        // Cycle 240: sw0 repairs before sw1 applies.
        assert_eq!(ctrl.pop_due(240), Some((FaultAction::Repair, 0)));
        assert_eq!(ctrl.pop_due(240), Some((FaultAction::Apply, 1)));
        assert_eq!(ctrl.pop_due(240), None);
        assert_eq!((ctrl.applied(), ctrl.active()), (2, 1));

        assert_eq!(ctrl.pop_due(360), Some((FaultAction::Repair, 1)));
        assert_eq!((ctrl.applied(), ctrl.active()), (2, 0));
        assert_eq!(ctrl.next_transition_cycle(360), None);
    }

    #[test]
    fn overdue_transitions_still_fire_and_bound_the_skip() {
        let mut ctrl = controller("laser-dim@c50:fabric/2");
        // A caller already past the onset gets the transition immediately,
        // and the bound clamps to now+1 (never a cycle in the past).
        assert_eq!(ctrl.next_transition_cycle(70), Some(71));
        assert_eq!(ctrl.pop_due(70), Some((FaultAction::Apply, 0)));
        assert_eq!(ctrl.event(0).severity, 2);
        // Permanent fault: no repair transition, stays active.
        assert_eq!(ctrl.pop_due(u64::MAX), None);
        assert_eq!((ctrl.applied(), ctrl.active()), (1, 1));
    }

    #[test]
    fn the_empty_plan_never_bounds_anything() {
        let mut ctrl = FaultController::new(&FaultPlan::empty());
        assert_eq!(ctrl.next_transition_cycle(0), None);
        assert_eq!(ctrl.pop_due(u64::MAX), None);
        assert_eq!((ctrl.applied(), ctrl.active()), (0, 0));
    }
}
