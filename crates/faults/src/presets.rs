//! Named preset fault plans.
//!
//! Presets give sweeps memorable names for common degradation shapes; each
//! resolves to an ordinary literal plan (and shares cache entries with the
//! equivalent literal, because scenario ids embed the *rendered* plan, not
//! the preset name). Onset/repair cycles are chosen to land inside even the
//! shortest (smoke, 600-cycle) measurement window, and every preset either
//! repairs or only degrades bandwidth — none can wedge a closed-loop
//! workload short of draining.

use crate::plan::FaultPlan;

/// The preset plan names, sorted (the catalogue shown in error messages).
pub const PRESET_PLANS: [&str; 4] = ["none", "ring-drift", "rolling-links", "single-link"];

/// Looks up a preset plan by name.
#[must_use]
pub fn preset_plan(name: &str) -> Option<FaultPlan> {
    let literal = match name {
        "none" => "",
        "single-link" => "link-fail@c150-450:sw1",
        "rolling-links" => "link-fail@c120-240:sw0,link-fail@c240-360:sw1,link-fail@c360-480:sw2",
        "ring-drift" => "ring-stuck@c100-500:sw0,wavelength-degrade@c200:class-high/2",
        _ => return None,
    };
    Some(FaultPlan::parse(literal).expect("preset literals are canonical"))
}

/// The sorted preset catalogue rendered for error messages.
#[must_use]
pub fn preset_catalogue() -> String {
    format!("[{}]", PRESET_PLANS.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_parses_validates_and_round_trips() {
        for name in PRESET_PLANS {
            let plan = preset_plan(name).expect("catalogue names resolve");
            plan.validate(8).expect("presets fit the paper topology");
            assert_eq!(
                FaultPlan::parse(&plan.render()).expect("rendered presets re-parse"),
                plan
            );
            assert_eq!(plan.is_empty(), name == "none");
        }
        assert!(preset_plan("unknown").is_none());
    }

    #[test]
    fn presets_schedule_inside_the_smoke_window() {
        for name in PRESET_PLANS {
            for event in preset_plan(name).unwrap().events().iter() {
                assert!(event.onset < 600, "{name}: onset {} too late", event.onset);
            }
        }
    }
}
