//! Uniform-random traffic.
//!
//! "We also evaluate the DBA enabled d-HetPNoC with a uniform-random traffic
//! pattern where all communication requires the same uniform bandwidth and
//! all cores communicate with all other cores with equal data rate"
//! (Section 3.4.1). Every cluster pair is served by the same medium-high
//! bandwidth class (whose wavelength requirement equals the Firefly channel
//! width), so the Firefly baseline and d-HetPNoC converge to the same
//! configuration — the sanity anchor of Figure 3-3.

use crate::pattern::PacketShape;
use pnoc_noc::ids::{ClusterId, CoreId};
use pnoc_noc::packet::{BandwidthClass, PacketDescriptor};
use pnoc_noc::topology::ClusterTopology;
use pnoc_noc::traffic_model::{OfferedLoad, TrafficModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform-random traffic over all cores.
#[derive(Debug, Clone)]
pub struct UniformRandomTraffic {
    topology: ClusterTopology,
    shape: PacketShape,
    load: OfferedLoad,
    rng: StdRng,
}

impl UniformRandomTraffic {
    /// Creates the generator.
    #[must_use]
    pub fn new(
        topology: ClusterTopology,
        shape: PacketShape,
        load: OfferedLoad,
        seed: u64,
    ) -> Self {
        Self {
            topology,
            shape,
            load,
            rng: StdRng::seed_from_u64(seed ^ 0x556e_6946),
        }
    }

    /// The bandwidth class every flow uses (medium-high: the class whose
    /// wavelength requirement equals the uniform Firefly channel width).
    #[must_use]
    pub fn uniform_class() -> BandwidthClass {
        BandwidthClass::MediumHigh
    }
}

impl TrafficModel for UniformRandomTraffic {
    fn next_packet(&mut self, cycle: u64, src: CoreId) -> Option<PacketDescriptor> {
        if !self.rng.gen_bool(self.load.value()) {
            return None;
        }
        let num_cores = self.topology.num_cores();
        let mut dst = CoreId(self.rng.gen_range(0..num_cores));
        while dst == src {
            dst = CoreId(self.rng.gen_range(0..num_cores));
        }
        Some(PacketDescriptor {
            src,
            dst,
            num_flits: self.shape.num_flits,
            flit_bits: self.shape.flit_bits,
            class: Self::uniform_class(),
            created_cycle: cycle,
        })
    }

    fn offered_load(&self) -> OfferedLoad {
        self.load
    }

    fn set_offered_load(&mut self, load: OfferedLoad) {
        self.load = load;
    }

    fn demand_class(&self, _src: ClusterId, _dst: ClusterId) -> BandwidthClass {
        Self::uniform_class()
    }

    fn volume_share(&self, src: ClusterId, dst: ClusterId) -> f64 {
        if src == dst {
            0.0
        } else {
            1.0 / (self.topology.num_clusters() - 1) as f64
        }
    }

    fn name(&self) -> String {
        "uniform-random".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(load: f64) -> UniformRandomTraffic {
        UniformRandomTraffic::new(
            ClusterTopology::paper_default(),
            PacketShape::new(64, 32),
            OfferedLoad::new(load),
            7,
        )
    }

    #[test]
    fn injection_rate_tracks_offered_load() {
        let mut m = model(0.1);
        let mut generated = 0;
        let cycles = 20_000;
        for cycle in 0..cycles {
            if m.next_packet(cycle, CoreId(3)).is_some() {
                generated += 1;
            }
        }
        let rate = generated as f64 / cycles as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn destinations_cover_the_chip_and_never_self() {
        let mut m = model(1.0);
        let mut seen = [false; 64];
        for cycle in 0..5_000 {
            let p = m.next_packet(cycle, CoreId(10)).unwrap();
            assert_ne!(p.dst, CoreId(10));
            seen[p.dst.0] = true;
            assert_eq!(p.num_flits, 64);
            assert_eq!(p.class, BandwidthClass::MediumHigh);
        }
        let covered = seen.iter().filter(|&&b| b).count();
        assert!(covered >= 60, "only {covered} destinations seen");
    }

    #[test]
    fn volume_shares_are_equal_across_destinations() {
        let m = model(0.5);
        let share = m.volume_share(ClusterId(0), ClusterId(9));
        assert!((share - 1.0 / 15.0).abs() < 1e-12);
        assert_eq!(m.volume_share(ClusterId(4), ClusterId(4)), 0.0);
        let total: f64 = (0..16)
            .map(|d| m.volume_share(ClusterId(2), ClusterId(d)))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn load_can_be_reconfigured() {
        let mut m = model(0.0);
        assert!(m.next_packet(0, CoreId(0)).is_none());
        m.set_offered_load(OfferedLoad::new(1.0));
        assert!(m.next_packet(1, CoreId(0)).is_some());
        assert_eq!(m.name(), "uniform-random");
    }
}
