//! Demand matrices: the interface between traffic and bandwidth allocation.
//!
//! d-HetPNoC cores advertise their bandwidth needs through demand tables
//! (Section 3.2.1). A [`DemandMatrix`] is the chip-wide view of those tables:
//! for every (source cluster, destination cluster) pair it records the
//! bandwidth class of the application serving the pair and the fraction of
//! the source's traffic volume that goes to that destination. The d-HetPNoC
//! fabric converts this into per-cluster wavelength requests.

use pnoc_noc::ids::ClusterId;
use pnoc_noc::packet::BandwidthClass;
use pnoc_noc::traffic_model::TrafficModel;
use serde::{Deserialize, Serialize};

/// Chip-wide bandwidth demand description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandMatrix {
    num_clusters: usize,
    classes: Vec<BandwidthClass>,
    shares: Vec<f64>,
    intensity: Vec<f64>,
}

impl DemandMatrix {
    /// Builds the matrix by querying a traffic model for every cluster pair.
    #[must_use]
    pub fn from_model<T: TrafficModel + ?Sized>(model: &T, num_clusters: usize) -> Self {
        let mut classes = Vec::with_capacity(num_clusters * num_clusters);
        let mut shares = Vec::with_capacity(num_clusters * num_clusters);
        for s in 0..num_clusters {
            for d in 0..num_clusters {
                classes.push(model.demand_class(ClusterId(s), ClusterId(d)));
                shares.push(model.volume_share(ClusterId(s), ClusterId(d)));
            }
        }
        let intensity = (0..num_clusters)
            .map(|s| model.source_intensity(ClusterId(s)))
            .collect();
        Self {
            num_clusters,
            classes,
            shares,
            intensity,
        }
    }

    /// Builds a uniform matrix (every pair the same class, equal shares).
    #[must_use]
    pub fn uniform(num_clusters: usize, class: BandwidthClass) -> Self {
        let share = if num_clusters > 1 {
            1.0 / (num_clusters - 1) as f64
        } else {
            0.0
        };
        let mut classes = vec![class; num_clusters * num_clusters];
        let mut shares = vec![share; num_clusters * num_clusters];
        for i in 0..num_clusters {
            classes[i * num_clusters + i] = class;
            shares[i * num_clusters + i] = 0.0;
        }
        Self {
            num_clusters,
            classes,
            shares,
            intensity: vec![1.0; num_clusters],
        }
    }

    /// Number of clusters covered.
    #[must_use]
    pub fn num_clusters(&self) -> usize {
        self.num_clusters
    }

    /// Bandwidth class of the `src → dst` application flow.
    #[must_use]
    pub fn class(&self, src: ClusterId, dst: ClusterId) -> BandwidthClass {
        self.classes[src.0 * self.num_clusters + dst.0]
    }

    /// Fraction of `src`'s traffic volume sent to `dst`.
    #[must_use]
    pub fn share(&self, src: ClusterId, dst: ClusterId) -> f64 {
        self.shares[src.0 * self.num_clusters + dst.0]
    }

    /// Relative traffic intensity of cluster `src` (mean ≈ 1 across clusters).
    #[must_use]
    pub fn intensity(&self, src: ClusterId) -> f64 {
        self.intensity[src.0]
    }

    /// The bandwidth requirement of cluster `src` relative to the chip
    /// average: its traffic intensity times its volume-weighted class
    /// multiplier, normalised by the chip-wide mean of the same product.
    /// d-HetPNoC sizes its wavelength pools in proportion to this quantity.
    #[must_use]
    pub fn relative_bandwidth_requirement(&self, src: ClusterId) -> f64 {
        let product = |c: ClusterId| self.intensity(c) * self.weighted_class_multiplier(c);
        let mean: f64 = (0..self.num_clusters)
            .map(|c| product(ClusterId(c)))
            .sum::<f64>()
            / self.num_clusters as f64;
        if mean > 0.0 {
            product(src) / mean
        } else {
            1.0
        }
    }

    /// The highest class multiplier demanded by `src` toward any destination
    /// (the "maximum bandwidth that the cluster will need" of Section 3.2.1).
    #[must_use]
    pub fn max_class_multiplier(&self, src: ClusterId) -> usize {
        (0..self.num_clusters)
            .filter(|&d| d != src.0)
            .map(|d| self.class(src, ClusterId(d)).multiplier())
            .max()
            .unwrap_or(1)
    }

    /// Volume-weighted average class multiplier of `src`
    /// (the "bandwidth ... in proportion to the traffic requirement" of
    /// Section 3.1). Between 1 and 8.
    #[must_use]
    pub fn weighted_class_multiplier(&self, src: ClusterId) -> f64 {
        let mut weighted = 0.0;
        let mut total_share = 0.0;
        for d in 0..self.num_clusters {
            if d == src.0 {
                continue;
            }
            let dst = ClusterId(d);
            weighted += self.share(src, dst) * self.class(src, dst).multiplier() as f64;
            total_share += self.share(src, dst);
        }
        if total_share <= 0.0 {
            1.0
        } else {
            weighted / total_share
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PacketShape, SkewLevel};
    use crate::skewed::SkewedTraffic;
    use crate::uniform::UniformRandomTraffic;
    use pnoc_noc::topology::ClusterTopology;
    use pnoc_noc::traffic_model::OfferedLoad;

    #[test]
    fn uniform_matrix_has_equal_shares_and_single_class() {
        let m = DemandMatrix::uniform(16, BandwidthClass::MediumHigh);
        assert_eq!(
            m.class(ClusterId(0), ClusterId(5)),
            BandwidthClass::MediumHigh
        );
        assert!((m.share(ClusterId(0), ClusterId(5)) - 1.0 / 15.0).abs() < 1e-12);
        assert_eq!(m.share(ClusterId(3), ClusterId(3)), 0.0);
        assert_eq!(m.max_class_multiplier(ClusterId(0)), 4);
        assert!((m.weighted_class_multiplier(ClusterId(0)) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn from_model_matches_the_model() {
        let traffic = SkewedTraffic::new(
            ClusterTopology::paper_default(),
            PacketShape::new(64, 32),
            SkewLevel::Skewed3,
            OfferedLoad::new(0.1),
            5,
        );
        let m = DemandMatrix::from_model(&traffic, 16);
        for s in 0..16 {
            for d in 0..16 {
                assert_eq!(
                    m.class(ClusterId(s), ClusterId(d)),
                    traffic.demand_class(ClusterId(s), ClusterId(d))
                );
                assert!(
                    (m.share(ClusterId(s), ClusterId(d))
                        - traffic.volume_share(ClusterId(s), ClusterId(d)))
                    .abs()
                        < 1e-12
                );
            }
        }
    }

    #[test]
    fn skewed_traffic_has_higher_weighted_demand_than_uniform() {
        let topo = ClusterTopology::paper_default();
        let uniform =
            UniformRandomTraffic::new(topo, PacketShape::new(64, 32), OfferedLoad::new(0.1), 5);
        let skewed = SkewedTraffic::new(
            topo,
            PacketShape::new(64, 32),
            SkewLevel::Skewed3,
            OfferedLoad::new(0.1),
            5,
        );
        let mu = DemandMatrix::from_model(&uniform, 16);
        let ms = DemandMatrix::from_model(&skewed, 16);
        let avg_uniform: f64 = (0..16)
            .map(|s| mu.weighted_class_multiplier(ClusterId(s)))
            .sum::<f64>()
            / 16.0;
        let avg_skewed: f64 = (0..16)
            .map(|s| ms.weighted_class_multiplier(ClusterId(s)))
            .sum::<f64>()
            / 16.0;
        assert!(
            avg_skewed > avg_uniform,
            "skewed demand ({avg_skewed}) must exceed uniform demand ({avg_uniform})"
        );
    }

    #[test]
    fn weighted_multiplier_is_bounded_by_max() {
        let traffic = SkewedTraffic::new(
            ClusterTopology::paper_default(),
            PacketShape::new(64, 32),
            SkewLevel::Skewed1,
            OfferedLoad::new(0.1),
            23,
        );
        let m = DemandMatrix::from_model(&traffic, 16);
        for s in 0..16 {
            let src = ClusterId(s);
            assert!(m.weighted_class_multiplier(src) <= m.max_class_multiplier(src) as f64 + 1e-9);
            assert!(m.weighted_class_multiplier(src) >= 1.0);
        }
    }
}
